//! Integration: the Level-2 outreach pipeline across all experiments.

use daspos::prelude::*;
use daspos_outreach::convert::{convert_aod, convert_aod_for_d0_class};
use daspos_outreach::display::render_svg;
use daspos_outreach::experiments::{render_table1, table1};
use daspos_outreach::formats::{OutreachFormat, SimpleKind};
use daspos_outreach::geometry::GeometryDescription;
use daspos_outreach::masterclass::{D0LifetimeExercise, Masterclass, V0Finder, WzCounting};

#[test]
fn common_converter_serves_all_four_experiments() {
    // O1: one thin converter, one display, four detectors.
    for experiment in Experiment::all() {
        let wf = PreservedWorkflow::standard_z(experiment, 60, 30);
        let out = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");
        let geometry = GeometryDescription::from_detector(&experiment.detector());
        for aod in out.aod_events.iter().take(5) {
            let simple = convert_aod(aod, experiment.name(), 0);
            // Every carrier round-trips the converted event.
            for fmt in [
                OutreachFormat::IgJson,
                OutreachFormat::EventXml,
                OutreachFormat::Compact,
            ] {
                let text = fmt.write(&simple);
                let back = fmt.read(&text).unwrap_or_else(|e| {
                    panic!("{} via {}: {e}", experiment.name(), fmt.name())
                });
                assert_eq!(back, simple);
            }
            // And the common display renders it.
            let svg = render_svg(&simple, &geometry, 400);
            assert!(svg.contains("</svg>"));
        }
    }
}

#[test]
fn wz_masterclass_on_real_production() {
    // The ATLAS/CMS masterclass run on actual simulated+reconstructed Z
    // events: the Z count dominates.
    let wf = PreservedWorkflow::standard_z(Experiment::Atlas, 404, 250);
    let out = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");
    let events: Vec<_> = out
        .aod_events
        .iter()
        .map(|a| convert_aod(a, "atlas", 0))
        .collect();
    let result = WzCounting.run(&events);
    let z = result.count("Z-candidates").unwrap();
    let w = result.count("W-candidates").unwrap();
    assert!(z > 50, "only {z} Z candidates from 250 Z events");
    assert!(z > w, "Z sample must be Z-dominated: z {z}, w {w}");
}

#[test]
fn d0_masterclass_measures_the_lifetime_from_the_chain() {
    let wf = PreservedWorkflow::standard_charm(2024, 12000);
    let out = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");
    let events: Vec<_> = out
        .aod_events
        .iter()
        .map(|a| convert_aod_for_d0_class(a, "lhcb"))
        .filter(|e| !e.objects.is_empty())
        .collect();
    let result = D0LifetimeExercise.run(&events);
    let tau = result.measurement("lifetime-ps").expect("measured");
    // The slope method carries sizeable statistical error at classroom
    // sample sizes; require the right scale, not a precision match.
    assert!(
        (tau - 0.410).abs() < 0.20,
        "classroom lifetime {tau} ps vs PDG 0.410"
    );
}

#[test]
fn v0_masterclass_finds_k0s_from_the_chain() {
    let wf = {
        let mut wf = PreservedWorkflow::standard_z(Experiment::Alice, 555, 800);
        wf.process = daspos_hep::event::ProcessKind::Strange;
        wf.skim = daspos_tiers::Selection::All;
        wf.slim = daspos_tiers::SlimSpec::keep_all();
        wf
    };
    let out = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");
    let events: Vec<_> = out
        .aod_events
        .iter()
        .map(|a| convert_aod(a, "alice", 0))
        .collect();
    let n_v0 = events
        .iter()
        .flat_map(|e| e.of_kind(SimpleKind::V0))
        .count();
    assert!(n_v0 > 20, "only {n_v0} V0 objects");
    let result = V0Finder.run(&events);
    let peak = result.measurement("k0s-mass-gev").expect("peak");
    assert!((peak - 0.4976).abs() < 0.03, "K0s peak at {peak}");
}

#[test]
fn table1_matrix_is_renderable_and_complete() {
    let text = render_table1();
    for name in ["alice", "atlas", "cms", "lhcb"] {
        assert!(text.contains(name), "missing column {name}");
    }
    // All three implemented formats appear somewhere in the matrix.
    for fmt in ["ig", "event-xml", "compact"] {
        assert!(text.contains(fmt), "missing format {fmt}");
    }
    // The matrix's self-documentation row is consistent with the format
    // implementations (checked per stack).
    for stack in table1() {
        if let Some(claim) = stack.self_documenting {
            let any = stack
                .data_formats
                .iter()
                .any(OutreachFormat::self_documenting);
            assert_eq!(claim, any, "{} claim mismatch", stack.experiment.name());
        }
    }
}

#[test]
fn geometry_descriptions_differ_per_experiment_but_one_display_reads_all() {
    let geometries: Vec<_> = Experiment::all()
        .into_iter()
        .map(|e| GeometryDescription::from_detector(&e.detector()))
        .collect();
    for i in 0..geometries.len() {
        for j in (i + 1)..geometries.len() {
            assert_ne!(geometries[i], geometries[j]);
        }
    }
    // JSON form parses back through the generic JSON module for each.
    for geo in &geometries {
        let parsed = daspos_outreach::json::parse(&geo.to_json()).expect("valid json");
        assert!(parsed.get("volumes").is_some());
    }
}
