//! Trace determinism: the observability layer's *stable* rendering must
//! be byte-identical for a fixed seed regardless of engine choice or
//! thread count, and must keep matching the committed golden trace.
//!
//! Span paths are structural (derived from the chain topology and the
//! event count, never from scheduling), counters count work (which is
//! deterministic), and the stable rendering strips everything that
//! isn't — timestamps, durations, and gauges. So two runs of the same
//! workflow may interleave however they like and still produce the same
//! trace bytes.
//!
//! After an *intended* change to the span taxonomy or counter catalogue,
//! refresh the golden trace with
//!
//! ```text
//! DASPOS_GOLDEN_REFRESH=1 cargo test --test trace_determinism
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use daspos::obs::render_trace;
use daspos::prelude::*;
use daspos::workflow::chain_trace_coverage;

const GOLDEN_SEED: u64 = 20130908;
const GOLDEN_EVENTS: u64 = 32;

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/cms-z.trace.jsonl")
}

/// Run the fixed chain with observability on and return the stable trace.
fn trace_for(seed: u64, events: u64, threads: usize) -> String {
    let workflow = PreservedWorkflow::standard_z(Experiment::Cms, seed, events);
    let ctx = ExecutionContext::fresh(&workflow);
    let collector = Arc::new(MemoryCollector::new());
    let registry = Arc::new(MetricsRegistry::new());
    let opts = ExecOptions::new()
        .threads(threads)
        .with_obs(Obs::collecting(collector.clone(), registry.clone()));
    workflow.execute(&ctx, &opts).expect("chain executes");
    render_trace(&collector.sorted_records(), Some(&registry.snapshot()), true)
}

#[test]
fn stable_trace_is_identical_across_engines_and_thread_counts() {
    let sequential = trace_for(42, 200, 1);
    let pooled = trace_for(42, 200, 4);
    assert_eq!(
        sequential, pooled,
        "stable trace must not depend on the thread count"
    );
    // And across repeated runs of the same engine.
    assert_eq!(sequential, trace_for(42, 200, 1));

    // The trace covers every chain stage and carries the chunk spans the
    // runner emits (200 events = 4 chunks of 64/64/64/8).
    for needle in [
        "\"path\":\"execute/produce/chunk-00000\"",
        "\"path\":\"execute/produce/chunk-00003\"",
        "\"type\":\"counter\",\"name\":\"events.generated\",\"value\":200",
    ] {
        assert!(sequential.contains(needle), "missing {needle} in:\n{sequential}");
    }
}

#[test]
fn trace_covers_every_chain_stage_and_round_trips() {
    let workflow = PreservedWorkflow::standard_z(Experiment::Cms, 9, 96);
    let ctx = ExecutionContext::fresh(&workflow);
    let collector = Arc::new(MemoryCollector::new());
    let registry = Arc::new(MetricsRegistry::new());
    let opts =
        ExecOptions::sequential().with_obs(Obs::collecting(collector.clone(), registry.clone()));
    workflow.execute(&ctx, &opts).expect("chain executes");

    let records = collector.sorted_records();
    let missing = chain_trace_coverage(&records);
    assert!(missing.is_empty(), "stages missing from trace: {missing:?}");

    // The JSONL parses back, and parsed spans agree with the records.
    let jsonl = render_trace(&records, Some(&registry.snapshot()), true);
    let values = daspos::obs::parse_jsonl(&jsonl).expect("trace parses");
    let span_count = values
        .iter()
        .filter(|v| v.get("type").and_then(|t| t.as_str()) == Some("span"))
        .count();
    assert_eq!(span_count, records.len());

    // The summary table lists the top-level stages with their wall times.
    let summary = TraceSummary::from_records(&records).to_text();
    for stage in ["execute/produce", "execute/skim", "execute/ntuple"] {
        assert!(summary.contains(stage), "summary missing {stage}:\n{summary}");
    }
}

#[test]
fn observability_off_is_observable_nowhere() {
    // A disabled bundle must not alter outputs: run with and without.
    let workflow = PreservedWorkflow::standard_z(Experiment::Cms, 5, 64);
    let plain = workflow
        .execute(&ExecutionContext::fresh(&workflow), &ExecOptions::sequential())
        .expect("runs");
    let collector = Arc::new(MemoryCollector::new());
    let registry = Arc::new(MetricsRegistry::new());
    let opts =
        ExecOptions::sequential().with_obs(Obs::collecting(collector, registry));
    let observed = workflow
        .execute(&ExecutionContext::fresh(&workflow), &opts)
        .expect("runs");
    assert_eq!(plain.tier_bytes, observed.tier_bytes);
    assert_eq!(plain.ntuple, observed.ntuple);
    assert_eq!(plain.analysis_results, observed.analysis_results);
}

#[test]
fn golden_trace_is_reproduced_byte_for_byte() {
    let path = golden_path();
    let trace = trace_for(GOLDEN_SEED, GOLDEN_EVENTS, 1);

    if std::env::var_os("DASPOS_GOLDEN_REFRESH").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, &trace).expect("write golden trace");
        eprintln!("golden trace refreshed at {}", path.display());
        return;
    }

    assert!(
        path.exists(),
        "golden trace missing — generate it once with \
         DASPOS_GOLDEN_REFRESH=1 cargo test --test trace_determinism"
    );
    let stored = std::fs::read_to_string(&path).expect("read golden trace");
    assert_eq!(
        stored, trace,
        "golden trace drifted — if the span taxonomy or counter catalogue \
         changed intentionally, refresh with DASPOS_GOLDEN_REFRESH=1"
    );
}
