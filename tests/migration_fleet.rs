//! Integration test: a mixed fleet (declarative + opaque archives) held
//! by the `Migrator` through TWO successive platform transitions. The
//! declarative survivor set must be preserved across both hops and every
//! survivor must still validate bit-exactly; the opaque archives must be
//! reported unmigratable at each hop, never silently revived.

use daspos::migrate::{make_opaque, Migrator};
use daspos::prelude::*;

fn archive(experiment: Experiment, seed: u64) -> PreservationArchive {
    let workflow = PreservedWorkflow::standard_z(experiment, seed, 20);
    let ctx = ExecutionContext::fresh(&workflow);
    let output = workflow.execute(&ctx, &ExecOptions::default()).expect("chain executes");
    PreservationArchive::builder(format!("{}-{seed}", experiment.name()))
        .production(&workflow, &ctx, &output)
        .expect("packages")
        .build()
}

#[test]
fn mixed_fleet_survives_two_successive_transitions() {
    let mut fleet = Migrator::new();
    fleet.add(archive(Experiment::Cms, 11));
    fleet.add(archive(Experiment::Atlas, 12));
    fleet.add(archive(Experiment::Lhcb, 13));
    fleet.add(make_opaque(archive(Experiment::Alice, 14)));
    fleet.add(make_opaque(archive(Experiment::Cms, 15)));
    assert_eq!(fleet.len(), 5);

    let declarative = ["cms-11", "atlas-12", "lhcb-13"];
    let opaque = ["alice-14-opaque", "cms-15-opaque"];

    // Baseline: the whole fleet was packaged on the current platform, so
    // the declarative members validate and the opaque ones fail to
    // re-execute even before any transition.
    let baseline = fleet.validate_all(&Platform::current());
    assert_eq!(baseline.iter().filter(|r| r.passed()).count(), 3);

    // Hop 1: the scheduled successor platform.
    let hop1 = fleet.migrate_to(&Platform::successor());
    let mut unmigratable1 = hop1.unmigratable.clone();
    unmigratable1.sort();
    assert_eq!(unmigratable1, opaque, "both opaque archives die at hop 1");
    let survivors1: Vec<&str> = hop1
        .outcomes
        .iter()
        .filter(|r| r.passed())
        .map(|r| r.archive.as_str())
        .collect();
    assert_eq!(survivors1, declarative, "declarative set survives hop 1");
    for outcome in &hop1.outcomes {
        assert!(
            outcome.integrity_ok && outcome.platform_ok && outcome.executed && outcome.reproduced,
            "{}: {}",
            outcome.archive,
            outcome.detail
        );
    }
    assert!((hop1.survival_rate() - 3.0 / 5.0).abs() < 1e-12);

    // Between hops, the migrated fleet must no longer validate on the
    // now-stale original platform — migration really rebuilt the stacks.
    let stale = fleet.validate_all(&Platform::current());
    assert!(
        stale.iter().all(|r| !r.passed()),
        "a migrated archive still validates on the abandoned platform"
    );

    // Hop 2: a second, farther transition.
    let hop2 = fleet.migrate_to(&Platform("el10-riscv64".to_string()));
    let mut unmigratable2 = hop2.unmigratable.clone();
    unmigratable2.sort();
    assert_eq!(unmigratable2, opaque, "opaque archives stay dead at hop 2");
    let survivors2: Vec<&str> = hop2
        .outcomes
        .iter()
        .filter(|r| r.passed())
        .map(|r| r.archive.as_str())
        .collect();
    assert_eq!(
        survivors2, declarative,
        "the survivor set is preserved across successive transitions"
    );
    assert!((hop2.survival_rate() - 3.0 / 5.0).abs() < 1e-12);

    // Survivors reproduce their reference bit-for-bit after two
    // migrations, not merely "ran without error".
    for outcome in &hop2.outcomes {
        assert!(outcome.reproduced, "{}: {}", outcome.archive, outcome.detail);
    }
}
