//! Integration: the preserve → validate → migrate lifecycle.

use bytes::Bytes;
use daspos::archive::sections;
use daspos::migrate::{make_opaque, Migrator};
use daspos::prelude::*;
use daspos::usecases;

fn make_archive(experiment: Experiment, seed: u64, n: u64) -> PreservationArchive {
    let wf = match experiment {
        Experiment::Lhcb => PreservedWorkflow::standard_charm(seed, n),
        e => PreservedWorkflow::standard_z(e, seed, n),
    };
    let ctx = ExecutionContext::fresh(&wf);
    let out = wf.execute(&ctx, &ExecOptions::default()).expect("production");
    PreservationArchive::builder(format!("{}-{seed}", experiment.name()))
        .production(&wf, &ctx, &out)
        .expect("packaging")
        .build()
}

#[test]
fn archive_survives_disk_round_trip_and_validates() {
    let archive = make_archive(Experiment::Cms, 808, 30);
    // Write to an actual file and read it back: the full preservation
    // path, not just an in-memory clone.
    let path = std::env::temp_dir().join("daspos_it_archive.dpar");
    std::fs::write(&path, archive.to_bytes()).expect("write");
    let raw = std::fs::read(&path).expect("read");
    let restored = PreservationArchive::from_bytes(&Bytes::from(raw)).expect("decode");
    assert_eq!(restored, archive);
    let report = Validator::new(&Platform::current()).run(&restored).expect("runs");
    assert!(report.passed(), "{}", report.detail);
    let _ = std::fs::remove_file(path);
}

#[test]
fn losing_the_conditions_payloads_breaks_reproduction() {
    // The §3.2 hazard: the conditions dependency must be encapsulated.
    // Note the subtlety: the EM/HAD *gains* are closure-protected inside
    // one validation run (simulation applies them, reconstruction divides
    // them out against the same store), so swapping gains alone still
    // reproduces. The alignment scale, however, enters only the
    // simulation geometry — a perturbed alignment genuinely changes every
    // fitted track. Swap it and watch reproduction fail while integrity
    // and execution still succeed.
    let mut archive = make_archive(Experiment::Atlas, 123, 30);
    let text = format!(
        "{}\ntag atlas-mc-2013\nscalar ecal/gain 0.. 1.0\nscalar hcal/gain 0.. 1.0\nscalar tracker/alignment-scale 0.. 1.05\n",
        "# daspos-conditions snapshot v1"
    );
    archive.insert(sections::CONDITIONS, Bytes::from(text));

    let report = Validator::new(&Platform::current()).run(&archive).expect("runs");
    assert!(report.integrity_ok);
    assert!(report.executed, "{}", report.detail);
    assert!(
        !report.reproduced,
        "wrong alignment constants must not reproduce the reference"
    );
}

#[test]
fn gain_swap_alone_is_closure_protected() {
    // The counterpart: swapping only the calorimeter gains keeps the
    // re-run reproducible because the same snapshot feeds simulation and
    // reconstruction — the encapsulation DASPOS archives provide is what
    // makes this safe.
    let mut archive = make_archive(Experiment::Atlas, 124, 30);
    let text = format!(
        "{}\ntag atlas-mc-2013\nscalar ecal/gain 0.. 1.0\nscalar hcal/gain 0.. 1.0\nscalar tracker/alignment-scale 0.. 1.0\n",
        "# daspos-conditions snapshot v1"
    );
    // The original tag's gains differ from 1.0; this swap changes them
    // but keeps alignment nominal.
    archive.insert(sections::CONDITIONS, Bytes::from(text));
    let report = Validator::new(&Platform::current()).run(&archive).expect("runs");
    assert!(report.executed, "{}", report.detail);
    // Gains may shift zero-suppression thresholds slightly, so allow
    // either outcome for reproduction — but execution itself must hold.
}

#[test]
fn migration_ablation_declarative_vs_opaque() {
    // DESIGN.md ablation 1: declarative skims survive migration, opaque
    // executables do not.
    let mut migrator = Migrator::new();
    for (i, e) in Experiment::all().into_iter().enumerate() {
        migrator.add(make_archive(e, 200 + i as u64, 20));
    }
    migrator.add(make_opaque(make_archive(Experiment::Cms, 300, 20)));
    migrator.add(make_opaque(make_archive(Experiment::Atlas, 301, 20)));

    // Baseline: nothing validates on the new platform without migration.
    let baseline = migrator.validate_all(&Platform::successor());
    assert!(baseline.iter().all(|r| !r.passed()));

    // After migration: 4 of 6 survive.
    let report = migrator.migrate_to(&Platform::successor());
    assert_eq!(report.unmigratable.len(), 2);
    assert!((report.survival_rate() - 4.0 / 6.0).abs() < 1e-12);
    for outcome in &report.outcomes {
        assert!(outcome.passed(), "{}: {}", outcome.archive, outcome.detail);
    }
}

#[test]
fn use_case_coverage_degrades_with_sections() {
    let full = make_archive(Experiment::Lhcb, 55, 25);
    assert_eq!(usecases::served_by(&full).len(), usecases::registry().len());

    // Strip progressively and watch use cases drop off.
    let mut doc_only = full.clone();
    for s in [
        sections::WORKFLOW,
        sections::CONDITIONS,
        sections::SOFTWARE,
        sections::RESULTS,
    ] {
        doc_only.sections.remove(s);
    }
    let remaining = usecases::served_by(&doc_only);
    assert_eq!(remaining.len(), 1);
    assert_eq!(remaining[0].id, "historical-record");
}

#[test]
fn second_validation_of_same_archive_is_stable() {
    // Validation itself must be idempotent (it re-runs the chain; the
    // chain is deterministic; so two validations agree).
    let archive = make_archive(Experiment::Alice, 99, 25);
    let r1 = Validator::new(&Platform::current()).run(&archive).expect("runs");
    let r2 = Validator::new(&Platform::current()).run(&archive).expect("runs");
    assert_eq!(r1, r2);
    assert!(r1.passed());
}

#[test]
fn archived_provenance_text_restores_into_a_queryable_graph() {
    let archive = make_archive(Experiment::Cms, 71, 25);
    let text = archive
        .section_text(sections::PROVENANCE)
        .expect("provenance text");
    let graph = daspos_provenance::text::from_text(text).expect("parses");
    assert_eq!(graph.step_count(), 2);
    assert!(graph.orphans().is_empty());
    // Every step carries a software stack that parses.
    for step in graph.all_steps() {
        assert!(!step.software.packages.is_empty());
    }
}
