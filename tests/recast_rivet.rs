//! Integration: RECAST, the RIVET bridge, and limit setting.

use std::sync::Arc;

use daspos_conditions::{ConditionsStore, DbSource};
use daspos_detsim::Experiment;
use daspos_gen::NewPhysicsParams;
use daspos_hep::SeedSequence;
use daspos_recast::{
    cls_upper_limit, FullChainBackend, RecastBackend, RecastFrontEnd, RivetBridgeBackend,
};
use daspos_recast::request::{RecastRequest, RequestState};
use daspos_rivet::AnalysisRegistry;

fn conditions() -> Arc<dyn daspos_conditions::ConditionsSource> {
    let store = Arc::new(ConditionsStore::new());
    daspos::workflow::populate_conditions(&store, "cms-mc-2013").expect("populate");
    Arc::new(DbSource::connect(store, "cms-mc-2013"))
}

fn model(mass: f64) -> NewPhysicsParams {
    NewPhysicsParams {
        mass,
        width: mass * 0.03,
        cross_section_pb: 1.0,
    }
}

#[test]
fn bridge_and_full_chain_agree_on_efficiency_within_detector_effects() {
    // R2: the same request served by both back ends. The truth-level
    // bridge sees no detector losses, so its efficiency bounds the full
    // chain's from above, and both are far from zero for a well-placed
    // resonance.
    let registry = Arc::new(AnalysisRegistry::with_builtin());
    let chain = FullChainBackend::new(
        Experiment::Cms.detector(),
        conditions(),
        Arc::clone(&registry),
        SeedSequence::new(1),
    );
    let bridge = RivetBridgeBackend::new(registry, SeedSequence::new(1));
    let request = RecastRequest {
        id: daspos_hep::ids::RequestId(1),
        analysis_key: "SEARCH_2013_I0006".to_string(),
        model: model(400.0),
        n_events: 150,
        requester: "it".to_string(),
    };
    let chain_out = chain.process(&request).expect("chain");
    let bridge_out = bridge.process(&request).expect("bridge");
    assert!(bridge_out.signal_efficiency >= chain_out.signal_efficiency - 0.02);
    assert!(chain_out.signal_efficiency > 0.3);
    assert!(
        (bridge_out.signal_efficiency - chain_out.signal_efficiency).abs() < 0.35,
        "bridge {} vs chain {}",
        bridge_out.signal_efficiency,
        chain_out.signal_efficiency
    );
    // The report's cost claim (R1): the full chain touches far more data
    // (the R1 bench measures ~3x in bytes and ~36x in wall time).
    assert!(chain_out.cost.bytes_touched > 2 * bridge_out.cost.bytes_touched);
    assert!(chain_out.cost.conditions_lookups > 0);
    assert_eq!(bridge_out.cost.conditions_lookups, 0);
}

#[test]
fn frontend_with_bridge_backend_serves_the_same_api() {
    // The DASPOS bridge makes RIVET a drop-in RECAST back end: the
    // *front-end protocol* (submit/wait/approve/fetch) is identical.
    let registry = Arc::new(AnalysisRegistry::with_builtin());
    let frontend = RecastFrontEnd::start(
        Arc::new(RivetBridgeBackend::new(registry, SeedSequence::new(5))),
        2,
    );
    let id = frontend
        .submit("SEARCH_2013_I0006", model(350.0), 100, "pheno")
        .expect("submit");
    assert_eq!(frontend.wait(id).expect("wait"), RequestState::AwaitingApproval);
    frontend.approve(id).expect("approve");
    let out = frontend.fetch(id).expect("fetch");
    assert_eq!(out.backend, "rivet-bridge");
    assert!(out.signal_efficiency > 0.3);
    frontend.shutdown();
}

#[test]
fn limits_weaken_when_efficiency_falls_off_resonance() {
    // R3 shape: scan masses across the signal-region threshold; the
    // excluded cross-section is lowest where the efficiency peaks.
    let registry = Arc::new(AnalysisRegistry::with_builtin());
    let backend = FullChainBackend::new(
        Experiment::Cms.detector(),
        conditions(),
        registry,
        SeedSequence::new(9),
    );
    let mut limits = Vec::new();
    for (i, mass) in [150.0, 300.0, 500.0].into_iter().enumerate() {
        let request = RecastRequest {
            id: daspos_hep::ids::RequestId(10 + i as u64),
            analysis_key: "SEARCH_2013_I0006".to_string(),
            model: model(mass),
            n_events: 120,
            requester: "it".to_string(),
        };
        let out = backend.process(&request).expect("process");
        let limit = cls_upper_limit(4, 4.2, out.signal_efficiency.max(1e-6), 5000.0)
            .expect("limit exists");
        limits.push((mass, out.signal_efficiency, limit));
    }
    // 150 GeV sits below the 200 GeV region: poor efficiency, weak limit.
    let (_, eff_low, lim_low) = limits[0];
    let (_, eff_mid, lim_mid) = limits[1];
    assert!(eff_mid > eff_low + 0.3, "eff {eff_low} vs {eff_mid}");
    assert!(lim_low > 3.0 * lim_mid, "limits {lim_low} vs {lim_mid}");
}

#[test]
fn rejected_results_stay_inside_the_experiment() {
    // "Control over the use of the framework by outside entities rests
    // entirely with the experiment."
    let registry = Arc::new(AnalysisRegistry::with_builtin());
    let frontend = RecastFrontEnd::start(
        Arc::new(RivetBridgeBackend::new(registry, SeedSequence::new(77))),
        1,
    );
    let id = frontend
        .submit("SEARCH_2013_I0006", model(300.0), 50, "pheno")
        .expect("submit");
    frontend.wait(id).expect("wait");
    // Internal back door works pre-decision…
    assert!(frontend.fetch_internal(id).is_ok());
    frontend.reject(id).expect("reject");
    // …and the outside world never sees anything.
    assert!(frontend.fetch(id).is_err());
    assert!(frontend.fetch_internal(id).is_err());
    frontend.shutdown();
}

#[test]
fn hepdata_archives_recast_outputs() {
    // Close the loop with the reactions database: an approved RECAST
    // result becomes a HepData record with the efficiency table.
    use daspos_hepdata::record::{DataTable, TableData};
    use daspos_hepdata::repository::Submission;
    use daspos_hepdata::HepDataRepository;

    let registry = Arc::new(AnalysisRegistry::with_builtin());
    let backend = RivetBridgeBackend::new(registry, SeedSequence::new(21));
    let repo = HepDataRepository::new();
    let mut rows = Vec::new();
    for (i, mass) in [250.0, 350.0, 450.0].into_iter().enumerate() {
        let request = RecastRequest {
            id: daspos_hep::ids::RequestId(40 + i as u64),
            analysis_key: "SEARCH_2013_I0006".to_string(),
            model: model(mass),
            n_events: 80,
            requester: "it".to_string(),
        };
        let out = backend.process(&request).expect("process");
        rows.push(vec![mass, out.signal_efficiency]);
    }
    let id = repo
        .insert(Submission {
            title: "Reinterpretation efficiencies for the dilepton search".to_string(),
            experiment: "cms".to_string(),
            reaction: "p p --> Z' ( --> l+ l- ) X".to_string(),
            inspire_id: 9_106,
            keywords: vec!["recast".to_string(), "exotics".to_string()],
            tables: vec![DataTable {
                name: "Table 1".to_string(),
                description: "signal efficiency vs Z' mass".to_string(),
                data: TableData::Columns {
                    names: vec!["mass".to_string(), "efficiency".to_string()],
                    rows,
                },
            }],
        })
        .expect("insert");
    let rec = repo.get(id).expect("fetch");
    assert_eq!(rec.tables[0].data.value_count(), 6);
    assert_eq!(repo.search("recast").len(), 1);
}
