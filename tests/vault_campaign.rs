//! Acceptance test for the vault tentpole: a seeded faultlab campaign
//! of 200+ single-replica mutations across every vault-stored artifact
//! class (sealed tier, container, conditions text, opaque results) is
//! 100% detected-and-repaired with a byte-identical restore — or the
//! mutation provably never changed the stored bytes.

use daspos::faultlab::{self, ArtifactClass, CampaignConfig, Outcome};
use daspos::obs::Obs;

fn acceptance_config() -> CampaignConfig {
    CampaignConfig {
        master_seed: 20130908,
        mutations_per_class: 220,
        events: 6,
    }
}

#[test]
fn two_hundred_replica_mutations_all_repaired_or_harmless() {
    let cfg = acceptance_config();
    let report = faultlab::run_campaign_for(&cfg, &[ArtifactClass::VaultReplica], &Obs::disabled())
        .expect("campaign runs");
    assert!(report.passed(), "invariant violated:\n{}", report.to_text());
    assert_eq!(report.classes.len(), 1);
    assert_eq!(report.total_mutations(), 220);
    assert_eq!(report.total_violations(), 0);
    assert_eq!(
        report.total_detected() + report.total_harmless(),
        report.total_mutations(),
        "every mutation accounted for"
    );

    let class = &report.classes[0];
    assert_eq!(class.class, ArtifactClass::VaultReplica);
    // Detection is not vacuous: the vast majority of mutations really
    // change stored bytes, and every detection went through the full
    // scrub-and-repair path (the checker only labels a mutation
    // detected after verifying a byte-identical restore on every
    // replica of every object).
    assert!(
        class.detected > class.mutations * 9 / 10,
        "only {}/{} detected",
        class.detected,
        class.mutations
    );
    assert_eq!(
        class.detections_by_layer.get("scrub:repaired").copied(),
        Some(class.detected),
        "every detection must be a verified repair: {:?}",
        class.detections_by_layer
    );
}

#[test]
fn replica_campaign_reproduces_and_replays() {
    let cfg = CampaignConfig {
        master_seed: 77,
        mutations_per_class: 40,
        events: 5,
    };
    let first = faultlab::run_campaign_for(&cfg, &[ArtifactClass::VaultReplica], &Obs::disabled())
        .expect("campaign runs");
    let second = faultlab::run_campaign_for(&cfg, &[ArtifactClass::VaultReplica], &Obs::disabled())
        .expect("campaign runs");
    assert_eq!(first, second, "same seed must reproduce the same report");

    // Individual coordinates replay to non-violating verdicts, and the
    // planned mutations really target vault coordinates.
    let fixture = faultlab::CampaignFixture::build(&cfg).expect("fixture");
    for index in [0u32, 13, 39] {
        let planned = faultlab::derive_mutation(&cfg, &fixture, ArtifactClass::VaultReplica, index);
        assert!(
            matches!(planned.kind, faultlab::MutationKind::VaultReplica { .. }),
            "unexpected plan: {:?}",
            planned.kind
        );
        let (replayed, outcome) =
            faultlab::replay(&cfg, ArtifactClass::VaultReplica, index).expect("replay");
        assert_eq!(planned, replayed);
        assert!(
            !matches!(outcome, Outcome::Violation(_)),
            "replay vault-replica:{index} violated: {outcome:?}"
        );
    }
}

#[test]
fn campaign_spreads_damage_across_objects_and_replicas() {
    // The sampler must actually exercise every stored object and every
    // replica slot, otherwise the acceptance claim "across all
    // vault-stored artifact classes" is hollow.
    let cfg = acceptance_config();
    let fixture = faultlab::CampaignFixture::build(&cfg).expect("fixture");
    let mut keys = std::collections::BTreeSet::new();
    let mut replicas = std::collections::BTreeSet::new();
    for index in 0..cfg.mutations_per_class {
        let m = faultlab::derive_mutation(&cfg, &fixture, ArtifactClass::VaultReplica, index);
        if let faultlab::MutationKind::VaultReplica { key, replica, .. } = m.kind {
            keys.insert(key);
            replicas.insert(replica);
        }
    }
    assert_eq!(keys.len(), fixture.vault_objects.len(), "all objects attacked: {keys:?}");
    assert_eq!(replicas.len(), faultlab::VAULT_REPLICAS, "all replicas attacked");
}
