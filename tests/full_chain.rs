//! Integration: the full processing chain across all four experiments.

use std::collections::BTreeMap;

use daspos::prelude::*;

#[test]
fn all_four_experiments_run_the_same_chain() {
    // §3.2: "the data processing and analysis workflows of the modern
    // high energy physics experiments are remarkably similar" — one
    // workflow definition must execute on every detector.
    for experiment in Experiment::all() {
        let wf = PreservedWorkflow::standard_z(experiment, 31, 40);
        let ctx = ExecutionContext::fresh(&wf);
        let out = wf
            .execute(&ctx, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("{} failed: {e}", experiment.name()));
        assert_eq!(out.tier_bytes.len(), 5, "{}", experiment.name());
        // Catalog and provenance populated identically in structure.
        assert_eq!(ctx.catalog.list().len(), 3);
        assert_eq!(ctx.provenance.step_count(), 2);
    }
}

#[test]
fn tier_sizes_shrink_monotonically_for_every_experiment() {
    // The Appendix A Q2 data lifecycle: every stage is a reduction.
    for experiment in Experiment::all() {
        let wf = PreservedWorkflow::standard_z(experiment, 77, 50);
        let out = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");
        let by_name: BTreeMap<&str, u64> = out
            .tier_bytes
            .iter()
            .map(|(n, b, _)| (n.as_str(), *b))
            .collect();
        assert!(
            by_name["raw"] > by_name["reco"],
            "{}: raw {} <= reco {}",
            experiment.name(),
            by_name["raw"],
            by_name["reco"]
        );
        assert!(by_name["reco"] > by_name["aod"], "{}", experiment.name());
        assert!(by_name["aod"] >= by_name["skim"], "{}", experiment.name());
        assert!(by_name["skim"] >= by_name["ntuple"], "{}", experiment.name());
    }
}

#[test]
fn central_physics_invisible_to_forward_detector_and_vice_versa() {
    // Acceptance differences are real physics: central Z events should
    // select far better on the central detectors than the forward one.
    let count_selected = |experiment: Experiment| -> u64 {
        let wf = PreservedWorkflow::standard_z(experiment, 5, 80);
        let out = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");
        out.skim_report.events_out
    };
    let cms = count_selected(Experiment::Cms);
    let lhcb = count_selected(Experiment::Lhcb);
    assert!(
        cms > 3 * lhcb.max(1),
        "central Z selection: cms {cms} vs lhcb {lhcb}"
    );
}

#[test]
fn chain_determinism_survives_interleaving() {
    // Determinism must not depend on event processing order: run the
    // chain twice, the second time visiting events in reverse, and check
    // the per-event AODs match.
    let wf = PreservedWorkflow::standard_z(Experiment::Atlas, 13, 30);
    let forward = wf.execute(&ExecutionContext::fresh(&wf), &ExecOptions::default()).expect("runs");

    // Manual reversed pass over the same generator/sim/reco stack.
    use daspos_conditions::DbSource;
    use daspos_detsim::DetectorSimulation;
    use daspos_gen::{EventGenerator, GeneratorConfig};
    use daspos_hep::SeedSequence;
    use daspos_reco::processor::{RecoConfig, RecoProcessor};
    use std::sync::Arc;

    let ctx = ExecutionContext::fresh(&wf);
    let gen = EventGenerator::new(GeneratorConfig::new(wf.process, wf.seed));
    let det = wf.experiment.detector();
    let sim = DetectorSimulation::new(
        det.clone(),
        Arc::new(DbSource::connect(Arc::clone(&ctx.conditions), &wf.conditions_tag)),
        SeedSequence::new(wf.seed),
    );
    let reco = RecoProcessor::new(
        det,
        RecoConfig::default(),
        Arc::new(DbSource::connect(Arc::clone(&ctx.conditions), &wf.conditions_tag)),
    );
    let mut reversed: Vec<_> = (0..wf.n_events)
        .rev()
        .map(|i| {
            let raw = sim.simulate(&gen.event(i), i).expect("sim");
            reco.process(&raw).expect("reco").1
        })
        .collect();
    reversed.reverse();
    assert_eq!(reversed, forward.aod_events);
}

#[test]
fn provenance_lineage_reaches_raw_for_every_derived_dataset() {
    let wf = PreservedWorkflow::standard_charm(3, 40);
    let ctx = ExecutionContext::fresh(&wf);
    let out = wf.execute(&ctx, &ExecOptions::default()).expect("runs");
    let lineage = ctx.provenance.lineage(out.skim_dataset).expect("lineage");
    assert_eq!(lineage.len(), 2);
    // The reconstruction step recorded its conditions tag — the external
    // dependency §3.2 says must be enumerated.
    let reco_step = lineage
        .iter()
        .find(|s| s.conditions_tag.is_some())
        .expect("a step with conditions");
    assert_eq!(reco_step.conditions_tag.as_deref(), Some("lhcb-mc-2013"));
    // Forward query too.
    let descendants = ctx.provenance.descendants(out.raw_dataset).expect("desc");
    assert!(descendants.contains(&out.aod_dataset));
    assert!(descendants.contains(&out.skim_dataset));
}

#[test]
fn codec_round_trips_real_production_data() {
    use daspos_reco::objects::AodEvent;
    use daspos_tiers::codec::Encodable;

    let wf = PreservedWorkflow::standard_z(Experiment::Cms, 17, 25);
    let ctx = ExecutionContext::fresh(&wf);
    let out = wf.execute(&ctx, &ExecOptions::default()).expect("runs");
    // The skim dataset's stored bytes decode back to real events.
    let ds = ctx.catalog.get(out.skim_dataset).expect("dataset");
    let mut decoded = Vec::new();
    for f in &ds.files {
        decoded.extend(AodEvent::decode_events(&f.data).expect("decodes"));
    }
    assert_eq!(decoded.len() as u64, out.skim_report.events_out);
    for ev in &decoded {
        assert!(ev.leptons().len() >= 2, "skim invariant violated");
    }
}
