//! Integration: the `daspos-cli` exit-code contract. Automation (CI
//! jobs, cron-driven scrubs) keys off these codes, so they are part of
//! the public interface: 0 = success, 1 = validation/integrity failure,
//! 2 = usage error.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_daspos-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("cli spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("cli exited with a code")
}

/// A fresh scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daspos-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn success_paths_exit_zero() {
    assert_eq!(code(&run(&["help"])), 0);

    let dir = scratch("ok");
    let payload = dir.join("note.txt");
    std::fs::write(&payload, b"an opaque preserved note\n").unwrap();
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();

    let put = run(&["vault", "put", payload.to_str().unwrap(), "--store", store_s]);
    assert_eq!(code(&put), 0, "{}", String::from_utf8_lossy(&put.stderr));
    assert_eq!(code(&run(&["vault", "scrub", "--store", store_s])), 0);
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 0);

    let out = dir.join("restored.txt");
    let get = run(&["vault", "get", "note.txt", "--store", store_s, "--out", out.to_str().unwrap()]);
    assert_eq!(code(&get), 0, "{}", String::from_utf8_lossy(&get.stderr));
    assert_eq!(std::fs::read(&out).unwrap(), b"an opaque preserved note\n");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn integrity_failures_exit_one() {
    let dir = scratch("fail");
    let payload = dir.join("note.txt");
    std::fs::write(&payload, b"bytes worth keeping\n").unwrap();
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    assert_eq!(
        code(&run(&["vault", "put", payload.to_str().unwrap(), "--store", store_s])),
        0
    );

    // Corrupt one replica: `verify` (read-only) must report damage with
    // exit 1; `scrub` repairs it and exits 0; a second `verify` is clean.
    let copy = store.join("replica-1").join("note.txt");
    let mut bytes = std::fs::read(&copy).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&copy, &bytes).unwrap();
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 1);
    assert_eq!(code(&run(&["vault", "scrub", "--store", store_s])), 0);
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 0);

    // Asking for a key the vault does not hold is a failure, not a
    // usage error: the command was well-formed.
    let missing = run(&[
        "vault",
        "get",
        "absent.txt",
        "--store",
        store_s,
        "--out",
        dir.join("x").to_str().unwrap(),
    ]);
    assert_eq!(code(&missing), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn erasure_store_survives_two_whole_backend_losses() {
    let dir = scratch("erasure");
    let payload = dir.join("tier.bin");
    let bytes: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    std::fs::write(&payload, &bytes).unwrap();
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();

    let put = run(&[
        "vault",
        "put",
        payload.to_str().unwrap(),
        "--store",
        store_s,
        "--erasure",
        "4,2",
    ]);
    assert_eq!(code(&put), 0, "{}", String::from_utf8_lossy(&put.stderr));
    assert!(
        String::from_utf8_lossy(&put.stdout).contains("4+2 shards over 6 backends"),
        "put must report the stripe geometry"
    );
    assert!(store.join("vault.meta").is_file(), "geometry is persisted");

    // Kill two entire backends — the worst loss a 4+2 stripe tolerates.
    std::fs::remove_dir_all(store.join("shard-1")).unwrap();
    std::fs::remove_dir_all(store.join("shard-4")).unwrap();

    // verify reports the damage read-only (exit 1), get still
    // reconstructs byte-identically, scrub rebuilds the lost shards.
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 1);
    let out = dir.join("restored.bin");
    let get = run(&["vault", "get", "tier.bin", "--store", store_s, "--out", out.to_str().unwrap()]);
    assert_eq!(code(&get), 0, "{}", String::from_utf8_lossy(&get.stderr));
    assert_eq!(std::fs::read(&out).unwrap(), bytes, "reconstruction must be byte-identical");

    let scrub = run(&["vault", "scrub", "--store", store_s]);
    assert_eq!(code(&scrub), 0, "{}", String::from_utf8_lossy(&scrub.stderr));
    let text = String::from_utf8_lossy(&scrub.stdout);
    assert!(text.contains("rebuilt"), "scrub reports rebuilt shards: {text}");
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 0);
    assert!(store.join("shard-1").is_dir(), "scrub re-materialized the backend");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn redundancy_flag_conflicts_exit_two() {
    let dir = scratch("conflict");
    let payload = dir.join("note.txt");
    std::fs::write(&payload, b"conflicted\n").unwrap();
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    let payload_s = payload.to_str().unwrap();

    // --replicas and --erasure are mutually exclusive, everywhere they
    // are accepted, and the refusal must name both flags.
    let out = run(&[
        "vault", "put", payload_s, "--store", store_s, "--replicas", "3", "--erasure", "4,2",
    ]);
    assert_eq!(code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--replicas") && err.contains("--erasure") && err.contains("mutually exclusive"),
        "unhelpful stderr: {err}"
    );
    assert_eq!(code(&run(&["serve", "--replicas", "2", "--erasure", "2,1"])), 2);
    assert_eq!(
        code(&run(&["vault", "scrub", "--selftest", "--replicas", "1", "--erasure", "4,2"])),
        2
    );

    // Malformed geometry never touches the store.
    assert_eq!(
        code(&run(&["vault", "put", payload_s, "--store", store_s, "--erasure", "nonsense"])),
        2
    );
    assert_eq!(
        code(&run(&["vault", "put", payload_s, "--store", store_s, "--erasure", "0,2"])),
        2
    );
    assert!(!store.exists(), "a rejected invocation must not create the store");

    // Opening an existing store with the other layout's flags is a
    // usage error, not silent conversion.
    assert_eq!(code(&run(&["vault", "put", payload_s, "--store", store_s, "--erasure", "2,1"])), 0);
    let out = run(&["vault", "put", payload_s, "--store", store_s, "--replicas", "3"]);
    assert_eq!(code(&out), 2);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("already"), "mismatch must name the existing layout: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawn `daspos-cli serve` and wait for its "serving on <addr>" line.
/// The returned reader must stay alive until the child exits — dropping
/// it closes the pipe and turns the server's drain summary into a
/// broken-pipe panic.
fn spawn_server(
    extra: &[&str],
) -> (
    std::process::Child,
    String,
    std::io::BufReader<std::process::ChildStdout>,
) {
    use std::io::BufRead;
    let mut child = cli()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner readable");
    let addr = banner
        .trim_end()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    (child, addr, reader)
}

#[test]
fn serve_selftest_exits_zero() {
    let out = run(&["serve", "--selftest"]);
    assert_eq!(code(&out), 0, "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serve selftest PASSED"), "stdout: {text}");
}

#[test]
fn loadgen_against_a_healthy_server_exits_zero() {
    let (mut child, addr, _stdout) = spawn_server(&[]);
    let out = run(&[
        "loadgen", "--addr", &addr, "--clients", "4", "--ops", "8", "--seed", "7", "--shutdown",
    ]);
    assert_eq!(
        code(&out),
        0,
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("zero failures"));
    let status = child.wait().expect("server exits after --shutdown");
    assert_eq!(status.code(), Some(0), "server drain must exit 0");
}

#[test]
fn loadgen_exits_one_when_deep_verification_fails() {
    // A chaos-injected server flips GET payload bytes after sealing the
    // object away — only the client's byte-for-byte comparison of what
    // it PUT can notice, and that is an operational failure: exit 1.
    let (mut child, addr, _stdout) = spawn_server(&["--chaos", "flip-get"]);
    let out = run(&[
        "loadgen", "--addr", &addr, "--clients", "4", "--ops", "10", "--seed", "5", "--shutdown",
    ]);
    assert_eq!(
        code(&out),
        1,
        "corrupted GETs must fail the campaign\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("FAILED"), "stderr names the failure: {err}");
    child.wait().expect("server exits after --shutdown");
}

#[test]
fn serve_and_loadgen_usage_errors_exit_two() {
    // loadgen without a target is a malformed invocation.
    assert_eq!(code(&run(&["loadgen"])), 2);
    // Malformed flag values never reach the network.
    assert_eq!(code(&run(&["loadgen", "--addr", "127.0.0.1:1", "--mix", "nonsense"])), 2);
    assert_eq!(code(&run(&["loadgen", "--addr", "127.0.0.1:1", "--clients", "0"])), 2);
    assert_eq!(code(&run(&["serve", "--max-inflight", "0"])), 2);
    assert_eq!(code(&run(&["serve", "--chaos", "unknown-mode"])), 2);
    // Invalid worker-pool / quota configurations never bind a socket.
    assert_eq!(code(&run(&["serve", "--pool", "0"])), 2);
    assert_eq!(code(&run(&["serve", "--streams", "0"])), 2);
    assert_eq!(code(&run(&["serve", "--default-quota", "nonsense"])), 2);
    assert_eq!(code(&run(&["serve", "--quota", "tenant-without-spec"])), 2);
    assert_eq!(code(&run(&["serve", "--quota", "t=1:2:3:4"])), 2);
    assert_eq!(code(&run(&["loadgen", "--addr", "127.0.0.1:1", "--chunk-bytes", "0"])), 2);
}

#[test]
fn usage_errors_exit_two() {
    // Unknown command / subcommand.
    assert_eq!(code(&run(&["no-such-command"])), 2);
    assert_eq!(code(&run(&["vault", "frobnicate"])), 2);
    // Missing required arguments.
    assert_eq!(code(&run(&["vault", "put"])), 2);
    assert_eq!(code(&run(&["vault", "scrub"])), 2);
    assert_eq!(code(&run(&["inspect"])), 2);
    // Malformed flag values.
    assert_eq!(code(&run(&["produce", "--experiment", "not-an-experiment"])), 2);
    assert_eq!(code(&run(&["trace", "--seed", "not-a-number"])), 2);
}

#[test]
fn usage_errors_name_the_problem_on_stderr() {
    let out = run(&["vault", "frobnicate"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("vault"), "unhelpful stderr: {err}");
    let out = run(&["no-such-command"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no-such-command"), "unhelpful stderr: {err}");
}
