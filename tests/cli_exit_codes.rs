//! Integration: the `daspos-cli` exit-code contract. Automation (CI
//! jobs, cron-driven scrubs) keys off these codes, so they are part of
//! the public interface: 0 = success, 1 = validation/integrity failure,
//! 2 = usage error.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_daspos-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("cli spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("cli exited with a code")
}

/// A fresh scratch directory unique to this test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("daspos-exit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn success_paths_exit_zero() {
    assert_eq!(code(&run(&["help"])), 0);

    let dir = scratch("ok");
    let payload = dir.join("note.txt");
    std::fs::write(&payload, b"an opaque preserved note\n").unwrap();
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();

    let put = run(&["vault", "put", payload.to_str().unwrap(), "--store", store_s]);
    assert_eq!(code(&put), 0, "{}", String::from_utf8_lossy(&put.stderr));
    assert_eq!(code(&run(&["vault", "scrub", "--store", store_s])), 0);
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 0);

    let out = dir.join("restored.txt");
    let get = run(&["vault", "get", "note.txt", "--store", store_s, "--out", out.to_str().unwrap()]);
    assert_eq!(code(&get), 0, "{}", String::from_utf8_lossy(&get.stderr));
    assert_eq!(std::fs::read(&out).unwrap(), b"an opaque preserved note\n");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn integrity_failures_exit_one() {
    let dir = scratch("fail");
    let payload = dir.join("note.txt");
    std::fs::write(&payload, b"bytes worth keeping\n").unwrap();
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();
    assert_eq!(
        code(&run(&["vault", "put", payload.to_str().unwrap(), "--store", store_s])),
        0
    );

    // Corrupt one replica: `verify` (read-only) must report damage with
    // exit 1; `scrub` repairs it and exits 0; a second `verify` is clean.
    let copy = store.join("replica-1").join("note.txt");
    let mut bytes = std::fs::read(&copy).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&copy, &bytes).unwrap();
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 1);
    assert_eq!(code(&run(&["vault", "scrub", "--store", store_s])), 0);
    assert_eq!(code(&run(&["vault", "verify", "--store", store_s])), 0);

    // Asking for a key the vault does not hold is a failure, not a
    // usage error: the command was well-formed.
    let missing = run(&[
        "vault",
        "get",
        "absent.txt",
        "--store",
        store_s,
        "--out",
        dir.join("x").to_str().unwrap(),
    ]);
    assert_eq!(code(&missing), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn usage_errors_exit_two() {
    // Unknown command / subcommand.
    assert_eq!(code(&run(&["no-such-command"])), 2);
    assert_eq!(code(&run(&["vault", "frobnicate"])), 2);
    // Missing required arguments.
    assert_eq!(code(&run(&["vault", "put"])), 2);
    assert_eq!(code(&run(&["vault", "scrub"])), 2);
    assert_eq!(code(&run(&["inspect"])), 2);
    // Malformed flag values.
    assert_eq!(code(&run(&["produce", "--experiment", "not-an-experiment"])), 2);
    assert_eq!(code(&run(&["trace", "--seed", "not-a-number"])), 2);
}

#[test]
fn usage_errors_name_the_problem_on_stderr() {
    let out = run(&["vault", "frobnicate"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("vault"), "unhelpful stderr: {err}");
    let out = run(&["no-such-command"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no-such-command"), "unhelpful stderr: {err}");
}
