//! Integration: admission control and graceful shutdown. When every
//! in-flight slot is taken the service must shed load with a typed
//! `Overloaded` response — never a hang, never a dropped object — and a
//! shutdown request must drain accepted work before the listener exits.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bytes::Bytes;
use daspos::obs::Obs;
use daspos::serve::{
    expect_ok, loadgen, LoadgenConfig, ServeClient, ServeConfig, ServeError, Server, Service,
    Status,
};
use daspos::vault::{
    FlakyBackend, FlakyConfig, MemoryBackend, ObjectKind, RetryPolicy, StorageBackend,
    StorageError, Vault,
};
use daspos::ErrorKind;

/// A backend whose writes block while the test holds the latch — the
/// deterministic way to pin the admission gate open.
struct LatchedBackend {
    inner: MemoryBackend,
    latch: Arc<(Mutex<bool>, Condvar)>,
}

impl LatchedBackend {
    fn new(latch: Arc<(Mutex<bool>, Condvar)>) -> LatchedBackend {
        LatchedBackend {
            inner: MemoryBackend::new(),
            latch,
        }
    }
}

/// Close the latch (writes block) / open it (writes proceed).
fn set_latch(latch: &Arc<(Mutex<bool>, Condvar)>, closed: bool) {
    let (lock, cvar) = &**latch;
    *lock.lock().unwrap() = closed;
    cvar.notify_all();
}

impl StorageBackend for LatchedBackend {
    fn name(&self) -> String {
        "latched-memory".to_string()
    }

    fn put(&self, key: &str, data: &Bytes) -> Result<(), StorageError> {
        let (lock, cvar) = &*self.latch;
        let mut closed = lock.lock().unwrap();
        while *closed {
            closed = cvar.wait(closed).unwrap();
        }
        drop(closed);
        self.inner.put(key, data)
    }

    fn get(&self, key: &str) -> Result<Bytes, StorageError> {
        self.inner.get(key)
    }

    fn delete(&self, key: &str) -> Result<(), StorageError> {
        self.inner.delete(key)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, StorageError> {
        self.inner.list(prefix)
    }
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = std::time::Instant::now() + deadline;
    while std::time::Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn a_full_service_sheds_load_with_a_typed_overloaded_response() {
    let latch = Arc::new((Mutex::new(true), Condvar::new()));
    let vault = Vault::builder()
        .backends(vec![
            Arc::new(LatchedBackend::new(latch.clone())) as Arc<dyn StorageBackend>,
        ])
        .build()
        .expect("vault builds");
    let cfg = ServeConfig::builder().max_inflight(1).build().expect("config valid");
    let service = Arc::new(Service::new(vault, &cfg, Obs::disabled()));
    let server =
        Server::start(service.clone(), "127.0.0.1:0", Duration::ZERO).expect("server starts");
    let addr = server.addr().to_string();

    // Client A's PUT blocks inside the vault, holding the only slot.
    let payload = Bytes::from(vec![0x5Au8; 256]);
    let blocked = {
        let addr = addr.clone();
        let payload = payload.clone();
        std::thread::spawn(move || {
            let mut a = ServeClient::builder("atlas").connect(&addr).expect("A connects");
            expect_ok(a.put("slow.bin", ObjectKind::Opaque, &payload).expect("A put sends"))
        })
    };
    assert!(
        wait_until(Duration::from_secs(5), || service.inflight() == 1),
        "client A never occupied the in-flight slot"
    );

    // Client B is shed — a typed response, not a hang or a dropped op.
    let mut b = ServeClient::builder("cms").connect(&addr).expect("B connects");
    let resp = b.put("shed.bin", ObjectKind::Opaque, &payload).expect("B put sends");
    assert_eq!(resp.status, Status::Overloaded, "detail: {}", resp.detail);
    let typed = expect_ok(resp).expect_err("overloaded promotes to an error");
    assert!(matches!(typed, ServeError::Overloaded { .. }), "got {typed:?}");
    // …and maps into the workspace's typed error vocabulary.
    let core_err = daspos::Error::from(typed);
    assert!(
        matches!(core_err.kind(), ErrorKind::Overloaded(_)),
        "backpressure lost its type: {core_err}"
    );
    assert!(service.stats().rejected() > 0);

    // Releasing the latch lets A finish: accepted work is never dropped.
    set_latch(&latch, false);
    blocked
        .join()
        .expect("A's thread survives")
        .expect("A's accepted PUT completed after the stall");
    let mut a2 = ServeClient::builder("atlas").connect(&addr).expect("reader connects");
    let got = expect_ok(a2.get("slow.bin").unwrap()).expect("object preserved");
    assert_eq!(got.payload.as_slice(), payload.as_slice());

    service.request_shutdown();
    server.join();
}

#[test]
fn flaky_storage_under_load_loses_nothing() {
    // Every op rides over a backend that fails ~30% of attempts; the
    // vault's immediate-retry policy absorbs the faults, the admission
    // gate sheds what it must, and the loadgen's deep verification
    // proves zero objects were dropped or mangled.
    let flaky = |seed| {
        Arc::new(FlakyBackend::new(
            Arc::new(MemoryBackend::new()),
            FlakyConfig::transient(seed, 0.3),
        )) as Arc<dyn StorageBackend>
    };
    let vault = Vault::builder()
        .backends(vec![flaky(11), flaky(12)])
        .policy(RetryPolicy::immediate(16))
        .build()
        .expect("vault builds");
    let cfg = ServeConfig::builder().max_inflight(2).build().expect("config valid");
    let service = Arc::new(Service::new(vault, &cfg, Obs::disabled()));
    let server = Server::start(service.clone(), "127.0.0.1:0", Duration::from_millis(5))
        .expect("server starts");

    let report = loadgen::run(&LoadgenConfig {
        addr: server.addr().to_string(),
        clients: 8,
        ops_per_client: 24,
        tenants: 3,
        seed: 4242,
        payload_bytes: 512,
        ..LoadgenConfig::default()
    });
    assert!(
        report.ok(),
        "flaky backend leaked into client-visible failures:\n{}",
        report.to_text()
    );
    assert_eq!(report.failure_count, 0);
    assert!(report.mixed.count >= 8 * 24, "ops went missing");

    service.request_shutdown();
    server.join();
}

#[test]
fn shutdown_drains_in_flight_work_before_the_listener_exits() {
    let latch = Arc::new((Mutex::new(true), Condvar::new()));
    let vault = Vault::builder()
        .backends(vec![
            Arc::new(LatchedBackend::new(latch.clone())) as Arc<dyn StorageBackend>,
        ])
        .build()
        .expect("vault builds");
    let cfg = ServeConfig::builder().max_inflight(4).build().expect("config valid");
    let service = Arc::new(Service::new(vault, &cfg, Obs::disabled()));
    let server =
        Server::start(service.clone(), "127.0.0.1:0", Duration::ZERO).expect("server starts");
    let addr = server.addr().to_string();

    let payload = Bytes::from(vec![0xC3u8; 128]);
    let in_flight = {
        let addr = addr.clone();
        let payload = payload.clone();
        std::thread::spawn(move || {
            let mut a = ServeClient::builder("atlas").connect(&addr).expect("A connects");
            expect_ok(a.put("draining.bin", ObjectKind::Opaque, &payload).expect("A put sends"))
        })
    };
    assert!(
        wait_until(Duration::from_secs(5), || service.inflight() == 1),
        "PUT never went in-flight"
    );

    // Shutdown arrives while A's PUT is still being served…
    let mut ctl = ServeClient::builder("ops").connect(&addr).expect("control connects");
    expect_ok(ctl.shutdown_server().expect("shutdown sends")).expect("shutdown acknowledged");
    assert!(service.shutdown_requested());

    // …and the accepted PUT still completes (drain, don't drop).
    set_latch(&latch, false);
    in_flight
        .join()
        .expect("A's thread survives")
        .expect("in-flight PUT drained cleanly through shutdown");

    server.join();
    assert!(service.stats().ops() >= 2, "both the PUT and the SHUTDOWN counted");

    // The listener is gone: new connections are refused.
    let refused = wait_until(Duration::from_secs(5), || {
        ServeClient::builder("late").connect(&addr).is_err()
    });
    assert!(refused, "listener still accepting after drain");
}
