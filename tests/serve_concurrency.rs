//! Integration: the multi-tenant preservation service under concurrent
//! load. N client threads (1, 2 and 4) drive the same deterministic
//! workload against one shared vault; whatever the interleaving, the
//! final preserved state must be byte-identical to the serialized run,
//! tenants must never see each other's objects, and a background scrub
//! must repair seeded replica damage while foreground traffic flows.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use daspos::obs::Obs;
use daspos::serve::{expect_ok, ServeClient, ServeConfig, Server, Service};
use daspos::vault::{MemoryBackend, ObjectKind, StorageBackend, Vault};

/// SplitMix64 — deterministic payload bytes without an RNG dependency.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn payload(seed: u64, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    let mut word = 0u64;
    for i in 0..len {
        if i % 8 == 0 {
            word = mix(seed.wrapping_add((i / 8) as u64));
        }
        out.push((word >> ((i % 8) * 8)) as u8);
    }
    Bytes::from(out)
}

/// One deterministic unit of work: a tenant, a key and the exact bytes
/// that must come back out.
#[derive(Clone)]
struct WorkItem {
    tenant: String,
    key: String,
    bytes: Bytes,
}

/// The fixed workload every run preserves: two shared tenants, disjoint
/// keys, deterministic payloads.
fn workload() -> Vec<WorkItem> {
    let tenants = ["atlas", "cms"];
    (0..32)
        .map(|i| WorkItem {
            tenant: tenants[i % tenants.len()].to_string(),
            key: format!("obj-{i:03}.bin"),
            bytes: payload(0xDA5_905 + i as u64, 64 + (i * 17) % 512),
        })
        .collect()
}

fn start_server(replicas: usize, scrub: Duration) -> (Server, Arc<Service>, Vec<Arc<MemoryBackend>>) {
    let backends: Vec<Arc<MemoryBackend>> =
        (0..replicas).map(|_| Arc::new(MemoryBackend::new())).collect();
    let vault = Vault::builder()
        .backends(
            backends
                .iter()
                .map(|b| b.clone() as Arc<dyn StorageBackend>)
                .collect(),
        )
        .build()
        .expect("vault builds");
    let service = Arc::new(Service::new(vault, &ServeConfig::default(), Obs::disabled()));
    let server = Server::start(service.clone(), "127.0.0.1:0", scrub).expect("server starts");
    (server, service, backends)
}

/// Run `items` through `clients` concurrent connections (round-robin
/// partition), then read every object back over a fresh connection and
/// return the final state as (tenant, key, bytes) in workload order.
fn drive(clients: usize, items: &[WorkItem]) -> Vec<(String, String, Vec<u8>)> {
    let (server, service, _) = start_server(2, Duration::ZERO);
    let addr = server.addr().to_string();

    std::thread::scope(|scope| {
        for c in 0..clients {
            let addr = addr.clone();
            let mine: Vec<WorkItem> =
                items.iter().skip(c).step_by(clients).cloned().collect();
            scope.spawn(move || {
                for item in mine {
                    let mut client =
                        ServeClient::builder(&item.tenant).connect(&addr).expect("client connects");
                    expect_ok(
                        client
                            .put(&item.key, ObjectKind::Opaque, &item.bytes)
                            .expect("put sends"),
                    )
                    .expect("put accepted");
                    // Read-your-writes inside the same session.
                    let got = expect_ok(client.get(&item.key).expect("get sends"))
                        .expect("get accepted");
                    assert_eq!(
                        got.payload.as_slice(),
                        item.bytes.as_slice(),
                        "read-your-writes broke for {}/{}",
                        item.tenant,
                        item.key
                    );
                }
            });
        }
    });

    let mut state = Vec::new();
    for item in items {
        let mut client = ServeClient::builder(&item.tenant).connect(&addr).expect("reader connects");
        let got = expect_ok(client.get(&item.key).expect("get sends")).expect("object preserved");
        state.push((item.tenant.clone(), item.key.clone(), got.payload.as_slice().to_vec()));
    }

    service.request_shutdown();
    server.join();
    state
}

#[test]
fn concurrent_runs_are_byte_identical_to_the_serialized_run() {
    let items = workload();
    let serialized = drive(1, &items);

    // The serialized run preserved exactly what was put.
    for ((tenant, key, bytes), item) in serialized.iter().zip(&items) {
        assert_eq!((tenant.as_str(), key.as_str()), (item.tenant.as_str(), item.key.as_str()));
        assert_eq!(bytes.as_slice(), item.bytes.as_slice(), "{tenant}/{key} mangled");
    }

    // 2 and 4 concurrent clients converge on the identical final state.
    for clients in [2usize, 4] {
        let concurrent = drive(clients, &items);
        assert_eq!(
            concurrent, serialized,
            "{clients} concurrent clients diverged from the serialized run"
        );
    }
}

#[test]
fn a_four_thread_pool_serves_32_concurrent_connections_plus_32_idle_ones() {
    // The worker pool is fixed at 4 threads; 64 connections (32 busy,
    // 32 held open and idle) must all be served. Idle connections must
    // not pin workers — if they did, the 32 busy connections could
    // never make progress past the first 4.
    let backends: Vec<Arc<MemoryBackend>> = (0..2).map(|_| Arc::new(MemoryBackend::new())).collect();
    let vault = Vault::builder()
        .backends(backends.iter().map(|b| b.clone() as Arc<dyn StorageBackend>).collect())
        .build()
        .expect("vault builds");
    let cfg = ServeConfig::builder().pool_size(4).build().expect("config valid");
    let service = Arc::new(Service::new(vault, &cfg, Obs::disabled()));
    let server =
        Server::start(service.clone(), "127.0.0.1:0", Duration::ZERO).expect("server starts");
    let addr = server.addr().to_string();
    assert_eq!(service.config().pool_size(), 4);

    // 32 idle connections opened first and held for the whole test.
    let mut idle: Vec<ServeClient> = (0..32)
        .map(|i| {
            ServeClient::builder(&format!("idle-{}", i % 3))
                .connect(&addr)
                .expect("idle connection opens")
        })
        .collect();

    // 32 busy connections, each its own thread, each a multi-op session.
    std::thread::scope(|scope| {
        for c in 0..32u64 {
            let addr = addr.clone();
            scope.spawn(move || {
                let tenant = format!("tenant-{}", c % 4);
                let mut client = ServeClient::builder(&tenant)
                    .op_timeout(Duration::from_secs(30))
                    .connect(&addr)
                    .expect("busy connection opens");
                for round in 0..4u64 {
                    let key = format!("conn-{c:02}-round-{round}.bin");
                    let bytes = payload(c * 1000 + round, 256 + (c as usize * 13) % 1024);
                    expect_ok(client.put(&key, ObjectKind::Opaque, &bytes).expect("put sends"))
                        .expect("put accepted");
                    let got = expect_ok(client.get(&key).expect("get sends")).expect("get ok");
                    assert_eq!(got.payload.as_slice(), bytes.as_slice(), "{key} mangled");
                }
            });
        }
    });

    // Every object from every connection survived, read over one more
    // fresh connection per tenant.
    for c in 0..32u64 {
        let tenant = format!("tenant-{}", c % 4);
        let mut reader = ServeClient::builder(&tenant).connect(&addr).expect("reader connects");
        for round in 0..4u64 {
            let key = format!("conn-{c:02}-round-{round}.bin");
            let bytes = payload(c * 1000 + round, 256 + (c as usize * 13) % 1024);
            let got = expect_ok(reader.get(&key).expect("get sends")).expect("object preserved");
            assert_eq!(got.payload.as_slice(), bytes.as_slice());
        }
    }

    // The idle connections were never starved out: each still answers.
    for client in idle.iter_mut() {
        expect_ok(client.stat().expect("idle connection still wired")).expect("stat ok");
    }

    service.request_shutdown();
    server.join();
}

#[test]
fn tenants_are_isolated_even_under_identical_keys() {
    let (server, service, _) = start_server(2, Duration::ZERO);
    let addr = server.addr().to_string();

    let atlas_bytes = payload(1, 128);
    let cms_bytes = payload(2, 128);
    assert_ne!(atlas_bytes.as_slice(), cms_bytes.as_slice());

    let mut atlas = ServeClient::builder("atlas").connect(&addr).expect("connect");
    let mut cms = ServeClient::builder("cms").connect(&addr).expect("connect");
    expect_ok(atlas.put("shared.bin", ObjectKind::Opaque, &atlas_bytes).unwrap()).unwrap();
    expect_ok(cms.put("shared.bin", ObjectKind::Opaque, &cms_bytes).unwrap()).unwrap();
    expect_ok(atlas.put("atlas-only.bin", ObjectKind::Opaque, &atlas_bytes).unwrap()).unwrap();

    // Same key, different tenants, different bytes — no bleed-through.
    let got = expect_ok(atlas.get("shared.bin").unwrap()).unwrap();
    assert_eq!(got.payload.as_slice(), atlas_bytes.as_slice());
    let got = expect_ok(cms.get("shared.bin").unwrap()).unwrap();
    assert_eq!(got.payload.as_slice(), cms_bytes.as_slice());

    // A third tenant sees nothing at all.
    let mut babar = ServeClient::builder("babar").connect(&addr).expect("connect");
    let miss = babar.get("atlas-only.bin").expect("get sends");
    assert_eq!(
        miss.status,
        daspos::serve::Status::NotFound,
        "cross-tenant read must miss, got {:?} ({})",
        miss.status,
        miss.detail
    );

    service.request_shutdown();
    server.join();
}

#[test]
fn background_scrub_repairs_damage_while_traffic_flows() {
    // Fast scrub ticks so the background pass lands mid-test.
    let (server, service, backends) = start_server(2, Duration::from_millis(2));
    let addr = server.addr().to_string();

    let bytes = payload(99, 4096);
    let mut client = ServeClient::builder("atlas").connect(&addr).expect("connect");
    expect_ok(client.put("damaged.bin", ObjectKind::Opaque, &bytes).unwrap()).unwrap();

    // Seed real damage in one replica, behind the service's back.
    let storage_key = "atlas.damaged.bin";
    let stored = backends[0].get(storage_key).expect("replica holds the object");
    let mut raw = stored.as_slice().to_vec();
    let mid = raw.len() / 2;
    raw[mid] ^= 0x80;
    backends[0].put(storage_key, &Bytes::from(raw)).expect("corrupt replica");

    // Keep foreground traffic flowing — but never read the damaged key,
    // so only the background scrubber (not a read-repair on GET) can
    // heal it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut repaired = false;
    let mut round = 0u64;
    while std::time::Instant::now() < deadline {
        let key = format!("traffic-{round:03}.bin");
        let traffic = payload(round, 64);
        expect_ok(client.put(&key, ObjectKind::Opaque, &traffic).unwrap()).unwrap();
        let got = expect_ok(client.get(&key).unwrap()).unwrap();
        assert_eq!(got.payload.as_slice(), traffic.as_slice());
        let healed = backends[0].get(storage_key).expect("replica readable");
        if healed.as_slice() == backends[1].get(storage_key).unwrap().as_slice() {
            repaired = true;
            break;
        }
        round += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(repaired, "background scrub never repaired the corrupted replica");
    assert!(service.stats().scrub_steps() > 0, "scrubber never ran");

    // The healed object reads back byte-identical.
    let got = expect_ok(client.get("damaged.bin").unwrap()).unwrap();
    assert_eq!(got.payload.as_slice(), bytes.as_slice());

    service.request_shutdown();
    server.join();
}
