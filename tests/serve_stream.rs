//! Integration: the chunked streaming protocol and per-tenant quotas.
//! Objects larger than one 16 MiB frame must round-trip byte-identically
//! through PutBegin/PutChunk/PutCommit and GetBegin/GetChunk with O(chunk)
//! peak buffering; stream misuse (out-of-order chunks, forged digests,
//! cross-tenant splices) must be rejected without corrupting preserved
//! state; and one tenant's exhausted quota must never reject another's.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use daspos::obs::Obs;
use daspos::serve::proto::MAX_FRAME_BYTES;
use daspos::serve::stream::{self, StreamInfo};
use daspos::serve::{
    expect_ok, Op, PatternChecker, PatternReader, Quota, Request, ServeClient, ServeConfig,
    ServeError, Server, Service, Status,
};
use daspos::vault::{MemoryBackend, ObjectKind, StorageBackend, Vault};
use daspos::ErrorKind;
use proptest::prelude::*;

fn start(cfg: ServeConfig) -> (Server, Arc<Service>) {
    let vault = Vault::builder()
        .backends(
            (0..2)
                .map(|_| Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>)
                .collect(),
        )
        .build()
        .expect("vault builds");
    let service = Arc::new(Service::new(vault, &cfg, Obs::disabled()));
    let server =
        Server::start(service.clone(), "127.0.0.1:0", Duration::ZERO).expect("server starts");
    (server, service)
}

fn default_server() -> (Server, Arc<Service>) {
    start(ServeConfig::default())
}

/// SplitMix64-expanded deterministic payload.
fn payload(seed: u64, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    let mut z = seed;
    while out.len() < len {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut w = z;
        w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        w ^= w >> 31;
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    Bytes::from(out)
}

#[test]
fn a_17_mib_object_round_trips_byte_identically_beyond_the_frame_cap() {
    let (server, service) = default_server();
    let addr = server.addr().to_string();
    const CHUNK: usize = 1024 * 1024;
    let total = (MAX_FRAME_BYTES + CHUNK) as u64; // 17 MiB > one frame

    let mut client = ServeClient::builder("atlas")
        .op_timeout(Duration::from_secs(60))
        .chunk_bytes(CHUNK)
        .connect(&addr)
        .expect("connect");

    // O(chunk) on both ends: the source and sink never hold the object.
    let mut source = PatternReader::new(0x17AB, total);
    expect_ok(
        client
            .put_stream("full-tier.dpef", ObjectKind::SealedTier, &mut source)
            .expect("streamed put sends"),
    )
    .expect("streamed put accepted");

    let mut sink = PatternChecker::new(0x17AB, total);
    let begin = expect_ok(client.get_stream("full-tier.dpef", &mut sink).expect("streamed get"))
        .expect("streamed get accepted");
    assert_eq!(begin.detail, "sealed-tier", "kind survives the round trip");
    sink.verify(total).expect("byte-identical round trip");

    // The server never staged more than one chunk at a time.
    let high_water = service.stats().stream_chunk_high_water();
    assert!(
        high_water as usize <= CHUNK,
        "peak staged chunk {high_water} exceeds the {CHUNK}-byte chunk size"
    );
    assert!(service.stats().streams_committed() >= 1);

    service.request_shutdown();
    server.join();
}

/// One server shared by every proptest case in this binary — starting a
/// listener per case would dominate the runtime. Never shut down; it
/// dies with the test process.
fn shared_addr() -> &'static str {
    use std::sync::OnceLock;
    static SHARED: OnceLock<(Server, Arc<Service>, String)> = OnceLock::new();
    let (_, _, addr) = SHARED.get_or_init(|| {
        let (server, service) = default_server();
        let addr = server.addr().to_string();
        (server, service, addr)
    });
    addr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    // Property: whatever the object size — from a single byte to past
    // the 16 MiB frame cap — a chunked PUT followed by a chunked GET
    // returns exactly the bytes put.
    #[test]
    fn chunked_round_trips_are_byte_identical_for_any_size(
        size in prop_oneof![
            1usize..=96 * 1024,
            1usize..=96 * 1024,
            1usize..=96 * 1024,
            (MAX_FRAME_BYTES - 2)..=(MAX_FRAME_BYTES + 2),
        ],
        seed in any::<u64>(),
    ) {
        // Small objects cross many 4 KiB chunk boundaries; frame-cap
        // sized ones stream in 1 MiB chunks to keep the case fast.
        let chunk = if size > 1024 * 1024 { 1024 * 1024 } else { 4096 };
        let mut client = ServeClient::builder("prop")
            .op_timeout(Duration::from_secs(60))
            .chunk_bytes(chunk)
            .connect(shared_addr())
            .expect("client connects");
        let key = format!("prop-{seed:016x}-{size}.bin");
        let bytes = payload(seed, size);
        let put = client.put_chunked(&key, ObjectKind::Opaque, &bytes).expect("put sends");
        prop_assert_eq!(put.status, Status::Ok, "put refused: {}", put.detail);
        let got = client.get_streamed_bytes(&key).expect("get sends");
        prop_assert_eq!(got.status, Status::Ok, "get refused: {}", got.detail);
        prop_assert_eq!(got.payload.as_slice(), bytes.as_slice());
    }
}

#[test]
fn plain_get_on_an_oversized_streamed_object_points_at_the_streaming_api() {
    let (server, service) = default_server();
    let addr = server.addr().to_string();
    let total = 9 * 1024 * 1024u64; // past the 8 MiB inline-GET limit

    let mut client = ServeClient::builder("atlas")
        .op_timeout(Duration::from_secs(60))
        .chunk_bytes(1024 * 1024)
        .connect(&addr)
        .expect("connect");
    let mut source = PatternReader::new(9, total);
    expect_ok(client.put_stream("big.bin", ObjectKind::Opaque, &mut source).unwrap()).unwrap();

    let resp = client.get("big.bin").expect("plain get sends");
    assert_eq!(resp.status, Status::BadRequest, "detail: {}", resp.detail);
    assert!(
        resp.detail.contains("streamed get"),
        "refusal must point at the streaming api: {}",
        resp.detail
    );

    // The streamed path still serves it.
    let mut sink = PatternChecker::new(9, total);
    expect_ok(client.get_stream("big.bin", &mut sink).unwrap()).unwrap();
    sink.verify(total).expect("streamed get still byte-identical");

    service.request_shutdown();
    server.join();
}

#[test]
fn a_small_streamed_object_reads_back_through_plain_get() {
    let (server, service) = default_server();
    let addr = server.addr().to_string();

    let mut client = ServeClient::builder("cms")
        .chunk_bytes(16 * 1024)
        .connect(&addr)
        .expect("connect");
    let bytes = payload(31, 100 * 1024); // 100 KiB over 16 KiB chunks
    expect_ok(client.put_chunked("small.bin", ObjectKind::Opaque, &bytes).unwrap()).unwrap();

    // A plain GET reassembles small chunked objects transparently.
    let got = expect_ok(client.get("small.bin").unwrap()).expect("inline reassembly");
    assert_eq!(got.payload.as_slice(), bytes.as_slice());

    service.request_shutdown();
    server.join();
}

#[test]
fn one_tenants_exhausted_quota_never_rejects_another_tenant() {
    let cfg = ServeConfig::builder()
        .quota(
            "greedy",
            Quota {
                max_bytes: 8 * 1024,
                max_inflight: 0,
                ops_per_sec: 0,
            },
        )
        .quota(
            "chatty",
            Quota {
                max_bytes: 0,
                max_inflight: 0,
                ops_per_sec: 2,
            },
        )
        .build()
        .expect("config valid");
    let (server, service) = start(cfg);
    let addr = server.addr().to_string();

    let mut greedy = ServeClient::builder("greedy").connect(&addr).expect("connect");
    let mut chatty = ServeClient::builder("chatty").connect(&addr).expect("connect");
    let mut modest = ServeClient::builder("modest").connect(&addr).expect("connect");

    // greedy exhausts its byte quota…
    let block = payload(1, 6 * 1024);
    expect_ok(greedy.put("a.bin", ObjectKind::Opaque, &block).unwrap()).expect("first put fits");
    let resp = greedy.put("b.bin", ObjectKind::Opaque, &block).unwrap();
    assert_eq!(resp.status, Status::QuotaExceeded, "detail: {}", resp.detail);
    let typed = expect_ok(resp).expect_err("quota promotes to a typed error");
    assert!(matches!(typed, ServeError::QuotaExceeded { .. }), "got {typed:?}");
    let core_err = daspos::Error::from(typed);
    assert!(
        matches!(core_err.kind(), ErrorKind::Overloaded(_)),
        "quota pressure lost its type: {core_err}"
    );

    // …chatty burns through its token bucket…
    let mut saw_rate_limit = false;
    for i in 0..20 {
        let resp = chatty.get(&format!("missing-{i}")).unwrap();
        if resp.status == Status::QuotaExceeded {
            saw_rate_limit = true;
            break;
        }
    }
    assert!(saw_rate_limit, "20 instant ops never tripped a 2 op/s bucket");
    assert!(service.stats().quota_rejected() >= 2);

    // …and neither exhaustion costs `modest` anything.
    for i in 0..10 {
        let key = format!("modest-{i}.bin");
        let bytes = payload(100 + i, 4 * 1024);
        expect_ok(modest.put(&key, ObjectKind::Opaque, &bytes).unwrap())
            .expect("an unrelated tenant must never be rejected");
        let got = expect_ok(modest.get(&key).unwrap()).expect("and reads back");
        assert_eq!(got.payload.as_slice(), bytes.as_slice());
    }
    // greedy's ops beyond bytes also still work: the byte quota gates
    // storage, not the connection.
    expect_ok(greedy.get("a.bin").unwrap()).expect("greedy can still read");

    service.request_shutdown();
    server.join();
}

/// Raw protocol access for the misuse scenarios the client API would
/// never emit.
fn raw(op: Op, tenant: &str, key: &str, payload: Bytes) -> Request {
    Request {
        op,
        kind: ObjectKind::Opaque,
        tenant: tenant.to_string(),
        key: key.to_string(),
        payload,
    }
}

#[test]
fn stream_misuse_is_rejected_without_corrupting_preserved_state() {
    let (server, service) = default_server();
    let addr = server.addr().to_string();
    let mut atlas = ServeClient::builder("atlas").connect(&addr).expect("connect");
    let mut cms = ServeClient::builder("cms").connect(&addr).expect("connect");

    // The object that must survive every forgery below.
    let precious = payload(7, 2048);
    expect_ok(atlas.put("precious.bin", ObjectKind::Opaque, &precious).unwrap()).unwrap();

    // Out-of-order chunk: rejected, stream stays open, in-order
    // delivery afterwards still commits.
    let begin = atlas
        .request(&raw(Op::PutBegin, "atlas", "ordered.bin", stream::encode_begin(1024)))
        .unwrap();
    assert_eq!(begin.status, Status::Ok);
    let id = begin.detail.clone();
    let chunk0 = payload(70, 1024);
    let resp = atlas
        .request(&raw(Op::PutChunk, "atlas", &id, stream::encode_chunk(1, &chunk0)))
        .unwrap();
    assert_eq!(resp.status, Status::BadRequest, "out-of-order seq must be refused");
    assert!(resp.detail.contains("out-of-order"), "detail: {}", resp.detail);

    // Cross-tenant splice: another tenant quoting the stream id is
    // refused and the owner's stream is untouched.
    let splice = cms
        .request(&raw(Op::PutChunk, "cms", &id, stream::encode_chunk(0, &chunk0)))
        .unwrap();
    assert_eq!(splice.status, Status::BadRequest, "detail: {}", splice.detail);
    assert!(splice.detail.contains("another tenant"), "detail: {}", splice.detail);

    // The owner proceeds as if nothing happened.
    let resp = atlas
        .request(&raw(Op::PutChunk, "atlas", &id, stream::encode_chunk(0, &chunk0)))
        .unwrap();
    assert_eq!(resp.status, Status::Ok, "detail: {}", resp.detail);
    let commit = stream::encode_commit(&StreamInfo {
        total_len: 1024,
        chunk_size: 1024,
        chunks: 1,
        digest: stream::fnv64_fold(stream::FNV_BASIS, &chunk0),
    });
    let resp = atlas.request(&raw(Op::PutCommit, "atlas", &id, commit)).unwrap();
    assert_eq!(resp.status, Status::Ok, "detail: {}", resp.detail);
    let got = expect_ok(atlas.get("ordered.bin").unwrap()).unwrap();
    assert_eq!(got.payload.as_slice(), chunk0.as_slice());

    // Forged digest at commit: the stream dies, the staged bytes are
    // reclaimed, and the previously preserved object is untouched.
    let begin = atlas
        .request(&raw(Op::PutBegin, "atlas", "precious.bin", stream::encode_begin(1024)))
        .unwrap();
    assert_eq!(begin.status, Status::Ok);
    let id = begin.detail.clone();
    let evil = payload(666, 1024);
    let resp = atlas
        .request(&raw(Op::PutChunk, "atlas", &id, stream::encode_chunk(0, &evil)))
        .unwrap();
    assert_eq!(resp.status, Status::Ok);
    let commit = stream::encode_commit(&StreamInfo {
        total_len: 1024,
        chunk_size: 1024,
        chunks: 1,
        digest: 0xDEAD_BEEF, // not the digest of `evil`
    });
    let resp = atlas.request(&raw(Op::PutCommit, "atlas", &id, commit)).unwrap();
    assert_eq!(resp.status, Status::Damaged, "forged digest must fail commit");
    let aborted_before = service.stats().streams_aborted();
    assert!(aborted_before >= 1, "failed commit must abort the stream");
    // The old object is still exactly what was preserved.
    let got = expect_ok(atlas.get("precious.bin").unwrap()).unwrap();
    assert_eq!(got.payload.as_slice(), precious.as_slice());
    // The consumed stream no longer accepts anything.
    let resp = atlas
        .request(&raw(Op::PutChunk, "atlas", &id, stream::encode_chunk(1, &evil)))
        .unwrap();
    assert_eq!(resp.status, Status::BadRequest);

    // An explicit abort reclaims staged chunks and leaves no residue.
    let begin = atlas
        .request(&raw(Op::PutBegin, "atlas", "abandoned.bin", stream::encode_begin(1024)))
        .unwrap();
    let id = begin.detail.clone();
    atlas
        .request(&raw(Op::PutChunk, "atlas", &id, stream::encode_chunk(0, &chunk0)))
        .unwrap();
    let resp = atlas.request(&raw(Op::PutAbort, "atlas", &id, Bytes::new())).unwrap();
    assert_eq!(resp.status, Status::Ok, "detail: {}", resp.detail);
    let miss = atlas.get("abandoned.bin").unwrap();
    assert_eq!(miss.status, Status::NotFound, "aborted stream must leave no object");
    assert_eq!(service.open_streams(), 0, "no stream table residue");

    service.request_shutdown();
    server.join();
}
