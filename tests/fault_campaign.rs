//! Acceptance test for the faultlab tentpole: a seeded campaign of 900
//! mutations (100 per artifact class, 9 classes) completes with zero
//! panics and zero silent corruption, and the same master seed yields a
//! bit-identical `CampaignReport`.

use daspos::faultlab::{self, ArtifactClass, CampaignConfig};

fn acceptance_config() -> CampaignConfig {
    CampaignConfig {
        master_seed: 20130908,
        mutations_per_class: 100,
        events: 8,
    }
}

#[test]
fn nine_hundred_mutations_all_detected_or_harmless() {
    let report = faultlab::run_campaign(&acceptance_config()).expect("campaign runs");
    assert!(report.passed(), "invariant violated:\n{}", report.to_text());
    assert_eq!(report.classes.len(), 9, "nine artifact classes attacked");
    assert_eq!(report.total_mutations(), 900);
    assert_eq!(report.total_violations(), 0);
    assert_eq!(
        report.total_detected() + report.total_harmless(),
        report.total_mutations(),
        "every mutation accounted for"
    );
    // Detection is not vacuous: most mutations actually change bytes the
    // chain depends on, and every class sees real detections.
    for class in &report.classes {
        assert!(
            class.detected > class.mutations / 2,
            "{}: only {}/{} detected",
            class.class,
            class.detected,
            class.mutations
        );
        assert!(!class.detections_by_layer.is_empty());
    }
    // The checksum-preserving results forgeries can only be caught by
    // re-execution — confirm that layer fired.
    let results_class = report
        .classes
        .iter()
        .find(|c| c.class == ArtifactClass::ResultsText)
        .expect("results class present");
    assert!(
        results_class
            .detections_by_layer
            .keys()
            .any(|layer| layer.starts_with("validate:")),
        "no re-execution detections for forged results: {:?}",
        results_class.detections_by_layer
    );
}

#[test]
fn same_seed_reproduces_the_identical_report() {
    let cfg = acceptance_config();
    let first = faultlab::run_campaign(&cfg).expect("campaign runs");
    let second = faultlab::run_campaign(&cfg).expect("campaign runs");
    assert_eq!(first, second, "campaign must be a pure function of its config");
}

#[test]
fn other_seeds_hold_the_invariant_too() {
    let cfg = CampaignConfig {
        master_seed: 424242,
        mutations_per_class: 40,
        events: 6,
    };
    let report = faultlab::run_campaign(&cfg).expect("campaign runs");
    assert!(report.passed(), "{}", report.to_text());
    // A different seed plans different mutations.
    let other = faultlab::run_campaign(&CampaignConfig {
        master_seed: 424243,
        ..cfg
    })
    .expect("campaign runs");
    assert_ne!(report, other, "distinct seeds should differ somewhere");
}

#[test]
fn replay_coordinates_reproduce_campaign_outcomes() {
    let cfg = CampaignConfig {
        master_seed: 99,
        mutations_per_class: 10,
        events: 5,
    };
    // Every mutation a campaign ran is individually replayable by its
    // (class, index) coordinates with an identical verdict.
    let fixture = faultlab::CampaignFixture::build(&cfg).expect("fixture");
    for class in ArtifactClass::all() {
        let planned = faultlab::derive_mutation(&cfg, &fixture, class, 7);
        let (replayed, outcome) = faultlab::replay(&cfg, class, 7).expect("replay");
        assert_eq!(planned, replayed);
        assert!(
            !matches!(outcome, faultlab::Outcome::Violation(_)),
            "replay {class}:7 violated: {outcome:?}"
        );
    }
}
