//! Tier-1 smoke test for the `bench` subcommand: a small run must exit
//! cleanly, write parseable JSON, and report a positive value for every
//! metric. This keeps the persisted `BENCH_*.json` trajectory honest —
//! a refactor that breaks a timed path fails here, not at release time.

use std::process::Command;

/// Minimal JSON sanity: balanced delimiters and no empty values. The
/// workspace has no JSON parser dependency, so the structural checks are
/// hand-rolled against the known flat schema `bench::BenchReport` emits.
fn assert_well_formed(json: &str) {
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"schema\": \"daspos-bench/2\""));
}

/// Extract `"field": <number>` occurrences following a metric name.
fn metric_field(json: &str, metric: &str, field: &str) -> f64 {
    let start = json
        .find(&format!("\"name\": \"{metric}\""))
        .unwrap_or_else(|| panic!("metric '{metric}' missing from:\n{json}"));
    let rest = &json[start..];
    let key = format!("\"{field}\": ");
    let at = rest
        .find(&key)
        .unwrap_or_else(|| panic!("field '{field}' missing for '{metric}'"));
    let tail = &rest[at + key.len()..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end]
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {field} for '{metric}': {:?}", &tail[..end]))
}

#[test]
fn bench_subcommand_writes_positive_metrics() {
    let out_path = std::env::temp_dir().join(format!("bench_smoke_{}.json", std::process::id()));
    let output = Command::new(env!("CARGO_BIN_EXE_daspos-cli"))
        .args([
            "bench",
            "--events",
            "500",
            "--reps",
            "2",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("bench subcommand runs");
    assert!(
        output.status.success(),
        "bench failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let json = std::fs::read_to_string(&out_path).expect("bench wrote the report");
    let _ = std::fs::remove_file(&out_path);
    assert_well_formed(&json);

    for metric in [
        "decode_batch",
        "decode_streaming",
        "seal_verify",
        "skim_batch",
        "skim_streaming",
        "columnar_skim",
        "columnar_decode",
        "columnar_decode_par",
        "columnar_encode_v1",
        "columnar_encode_v2",
        "full_chain",
        "vault_put",
        "vault_get",
        "vault_scrub",
        "vault_ec_put",
        "vault_ec_get",
        "vault_ec_rebuild",
        "serve_put",
        "serve_get",
        "serve_stream_put",
        "serve_stream_get",
        "serve_mixed",
    ] {
        for field in ["median_ns_per_event", "events_per_sec"] {
            let value = metric_field(&json, metric, field);
            assert!(
                value > 0.0,
                "{metric}.{field} must be positive, got {value}"
            );
        }
    }

    // Every metric is a latency distribution now, not just the serve
    // ones: the median slot carries p50 and each must also publish a
    // tail (p99) at least as large. A missing or null p99 means a
    // bench path silently degraded to a throughput-only number.
    for metric in [
        "decode_batch",
        "decode_streaming",
        "seal_verify",
        "skim_batch",
        "skim_streaming",
        "columnar_skim",
        "columnar_decode",
        "columnar_decode_par",
        "columnar_encode_v1",
        "columnar_encode_v2",
        "full_chain",
        "vault_put",
        "vault_get",
        "vault_scrub",
        "vault_ec_put",
        "vault_ec_get",
        "vault_ec_rebuild",
        "serve_put",
        "serve_get",
        "serve_stream_put",
        "serve_stream_get",
        "serve_mixed",
    ] {
        let p50 = metric_field(&json, metric, "median_ns_per_event");
        let p99 = metric_field(&json, metric, "p99_ns_per_event");
        assert!(
            p99 >= p50,
            "{metric}: p99 ({p99}) must be at least p50 ({p50})"
        );
    }

    // The v2 cost-probed encodings must actually shrink the file: the
    // encode pair publishes bytes/event for the same rows under raw
    // (v1) and probed (v2) frames, and v2 smaller-than-v1 is the whole
    // point of the format revision.
    let v1_bytes = metric_field(&json, "columnar_encode_v1", "bytes_per_event");
    let v2_bytes = metric_field(&json, "columnar_encode_v2", "bytes_per_event");
    assert!(
        v2_bytes < v1_bytes,
        "v2 frames ({v2_bytes} B/event) must be smaller than v1 ({v1_bytes} B/event)"
    );

    // Erasure coding is the capacity story: a 4+2 stripe tolerates two
    // backend losses, same as 3 full replicas, but stores each object
    // once striped plus parity instead of three times over. At equal
    // fault tolerance the erasure vault must land fewer bytes on the
    // backends than the replicated one — that ratio (~1.5/3 = 0.5 plus
    // shard-envelope overhead) is the derived `vault_ec_bytes_ratio`.
    let replica_bytes = metric_field(&json, "vault_put", "bytes_per_event");
    let erasure_bytes = metric_field(&json, "vault_ec_put", "bytes_per_event");
    assert!(
        erasure_bytes < replica_bytes,
        "4+2 erasure ({erasure_bytes} B/event on backends) must beat 3 replicas \
         ({replica_bytes} B/event) at equal fault tolerance"
    );
    assert!(
        json.contains("\"vault_ec_bytes_ratio\""),
        "derived vault_ec_bytes_ratio missing from report"
    );

    // The columnar skim decodes through one reused scratch buffer per
    // file, so its peak allocation must stay in the same band as the
    // row-streaming skim rather than ballooning with per-column
    // scratch (BENCH_7 had it 21% above; the scratch reuse brought it
    // under 15%).
    let columnar_peak = metric_field(&json, "columnar_skim", "peak_alloc_bytes");
    let streaming_peak = metric_field(&json, "skim_streaming", "peak_alloc_bytes");
    assert!(
        columnar_peak < streaming_peak * 1.15,
        "columnar_skim peak alloc ({columnar_peak} B) must stay within 15% of \
         skim_streaming ({streaming_peak} B)"
    );

    // The counting allocator must actually be installed in the CLI
    // build: if every metric reports a null peak, the bench-alloc
    // feature has fallen out of the binary's feature graph again
    // (that's how BENCH_5 went blind).
    assert!(
        json.contains("\"peak_alloc_bytes\": ")
            && !json
                .lines()
                .filter(|l| l.contains("\"peak_alloc_bytes\""))
                .all(|l| l.contains("\"peak_alloc_bytes\": null")),
        "every peak_alloc_bytes is null — the bench-alloc counting \
         allocator is not wired into the daspos-cli build:\n{json}"
    );
}
