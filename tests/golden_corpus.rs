//! Golden-corpus regression suite.
//!
//! `tests/golden/` holds reference artifacts produced by a fixed seeded
//! chain (CMS Z-boson, seed 20130908, 32 events): the packaged `.dpar`
//! container, sealed AOD and RAW tier files, the conditions-snapshot
//! text, the results text, and an `digests.txt` index of fnv64 digests.
//! This test rebuilds the chain and asserts today's toolchain produces
//! the corpus **byte-for-byte**, then decodes and validates the stored
//! artifacts themselves — so any unintended change to event generation,
//! simulation, codec layout, sealing, or container format shows up as a
//! corpus diff, not as silent drift.
//!
//! After an *intended* format change, refresh the corpus with
//!
//! ```text
//! DASPOS_GOLDEN_REFRESH=1 cargo test --test golden_corpus
//! ```
//!
//! and commit the new files together with the change that explains them.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use daspos::archive::sections;
use daspos::prelude::*;
use daspos_reco::objects::AodEvent;
use daspos_tiers::codec::{self, fnv64, Encodable};

const GOLDEN_SEED: u64 = 20130908;
const GOLDEN_EVENTS: u64 = 32;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Rebuild the fixed chain and serialize every corpus artifact.
fn build_corpus() -> BTreeMap<&'static str, Vec<u8>> {
    let workflow = PreservedWorkflow::standard_z(Experiment::Cms, GOLDEN_SEED, GOLDEN_EVENTS);
    let ctx = ExecutionContext::fresh(&workflow);
    let output = workflow.execute(&ctx, &ExecOptions::default()).expect("chain executes");
    let archive = PreservationArchive::builder("cms-z-golden")
        .production(&workflow, &ctx, &output)
        .expect("packages")
        .build();

    let aod_payload = AodEvent::encode_events(&output.aod_events);
    let raw_payload = ctx
        .catalog
        .get(output.raw_dataset)
        .expect("raw dataset")
        .file_data()
        .next()
        .expect("raw file")
        .clone();

    let mut corpus: BTreeMap<&'static str, Vec<u8>> = BTreeMap::new();
    corpus.insert("cms-z.dpar", archive.to_bytes().to_vec());
    corpus.insert("cms-z.aod.dpefs", codec::seal(&aod_payload).to_vec());
    corpus.insert("cms-z.raw.dpefs", codec::seal(&raw_payload).to_vec());
    corpus.insert(
        "cms-z.conditions.txt",
        archive
            .section_text(sections::CONDITIONS)
            .expect("conditions text")
            .as_bytes()
            .to_vec(),
    );
    corpus.insert(
        "cms-z.results.txt",
        archive
            .section_text(sections::RESULTS)
            .expect("results text")
            .as_bytes()
            .to_vec(),
    );

    let mut index = String::new();
    for (name, data) in &corpus {
        index.push_str(&format!("{name} {:016x} {}\n", fnv64(data), data.len()));
    }
    corpus.insert("digests.txt", index.into_bytes());
    corpus
}

#[test]
fn golden_corpus_is_reproduced_byte_for_byte() {
    let dir = golden_dir();
    let corpus = build_corpus();

    if std::env::var_os("DASPOS_GOLDEN_REFRESH").is_some() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        for (name, data) in &corpus {
            std::fs::write(dir.join(name), data).expect("write golden file");
        }
        eprintln!("golden corpus refreshed in {}", dir.display());
        return;
    }

    assert!(
        dir.join("digests.txt").exists(),
        "golden corpus missing — generate it once with \
         DASPOS_GOLDEN_REFRESH=1 cargo test --test golden_corpus"
    );
    for (name, expected) in &corpus {
        let stored = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("cannot read golden {name}: {e}"));
        assert_eq!(
            fnv64(&stored),
            fnv64(expected),
            "golden {name} drifted: stored {} bytes (fnv64 {:016x}), \
             rebuilt {} bytes (fnv64 {:016x}) — if the change is intended, \
             refresh with DASPOS_GOLDEN_REFRESH=1",
            stored.len(),
            fnv64(&stored),
            expected.len(),
            fnv64(expected)
        );
        assert_eq!(&stored, expected, "fnv64 collision? bytes differ for {name}");
    }
}

#[test]
fn golden_artifacts_still_decode_and_validate() {
    let dir = golden_dir();
    if !dir.join("digests.txt").exists() {
        eprintln!("golden corpus absent; run the refresh first");
        return;
    }

    // The stored container parses, verifies, and validates by
    // re-execution on the current platform.
    let dpar = std::fs::read(dir.join("cms-z.dpar")).expect("read dpar");
    let archive = PreservationArchive::from_bytes(&Bytes::from(dpar)).expect("parses");
    archive.verify_integrity().expect("verifies");
    let report =
        Validator::new(&Platform::current()).run(&archive).expect("validates");
    assert!(report.passed(), "golden archive failed validation: {}", report.detail);

    // The sealed tier files unseal and decode.
    let sealed_aod = Bytes::from(std::fs::read(dir.join("cms-z.aod.dpefs")).unwrap());
    let aod_payload = codec::unseal(&sealed_aod).expect("aod seal verifies");
    let aods = AodEvent::decode_events(&aod_payload).expect("aod decodes");
    assert_eq!(aods.len() as u64, GOLDEN_EVENTS);

    let sealed_raw = Bytes::from(std::fs::read(dir.join("cms-z.raw.dpefs")).unwrap());
    let raw_payload = codec::unseal(&sealed_raw).expect("raw seal verifies");
    use daspos_detsim::raw::RawEvent;
    let raws = RawEvent::decode_events(&raw_payload).expect("raw decodes");
    assert_eq!(raws.len() as u64, GOLDEN_EVENTS);

    // The conditions text carries a digest and parses; the results text
    // matches the archive's RESULTS section exactly.
    let cond = std::fs::read_to_string(dir.join("cms-z.conditions.txt")).unwrap();
    assert!(cond.lines().nth(1).unwrap_or("").starts_with("digest "));
    daspos_conditions::Snapshot::from_text(&cond).expect("conditions parse");
    let results = std::fs::read(dir.join("cms-z.results.txt")).unwrap();
    assert_eq!(
        archive.section(sections::RESULTS).expect("results section"),
        &Bytes::from(results)
    );

    // The digest index is consistent with the files it describes.
    let index = std::fs::read_to_string(dir.join("digests.txt")).unwrap();
    for line in index.lines() {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("name");
        let digest = u64::from_str_radix(parts.next().expect("digest"), 16).unwrap();
        let len: usize = parts.next().expect("len").parse().unwrap();
        if name == "digests.txt" {
            continue; // the index cannot contain its own digest
        }
        let data = std::fs::read(dir.join(name)).unwrap();
        assert_eq!(data.len(), len, "stored length drifted for {name}");
        assert_eq!(fnv64(&data), digest, "stored digest drifted for {name}");
    }
}
