//! Integration: ADL analyses (the Les Houches "analysis database"
//! entries) travel inside preservation archives and re-execute on
//! validation, and drop into RECAST unchanged.

use bytes::Bytes;
use daspos::archive::sections;
use daspos::prelude::*;
use daspos_rivet::AdlAnalysis;

const ADL_Z: &str = "\
# daspos-adl v1
analysis ADLZ_2014_I0200
experiment cms
title archived ADL Z cross-check
object leps = leptons pt>= 10 abseta<= 2.5
cut two-leptons : count(leps) >= 2
cut opposite-sign : oscharge(leps)
cut mass-window : mass(leps[0],leps[1]) in 66 116
hist m_ll = mass(leps[0],leps[1]) bins 50 66 116
";

const ADL_MET: &str = "\
# daspos-adl v1
analysis ADLMET_2014_I0201
experiment cms
title archived MET monitor
cut any : met >= 0
hist met = met bins 40 0 200
";

fn build_archive() -> PreservationArchive {
    let mut wf = PreservedWorkflow::standard_z(Experiment::Cms, 9090, 40);
    wf.analyses = vec![
        "ZLL_2013_I0001".to_string(),
        "ADLZ_2014_I0200".to_string(),
        "ADLMET_2014_I0201".to_string(),
    ];
    let ctx = ExecutionContext::fresh(&wf);
    // Register the ADL analyses before executing — they behave exactly
    // like compiled analyses from here on.
    ctx.registry
        .register(Box::new(AdlAnalysis::parse(ADL_Z).expect("parses")));
    ctx.registry
        .register(Box::new(AdlAnalysis::parse(ADL_MET).expect("parses")));
    let out = wf.execute(&ctx, &ExecOptions::default()).expect("production with ADL analyses");
    let archive = PreservationArchive::builder("adl-preserved")
        .production(&wf, &ctx, &out)
        .expect("packages")
        .section(sections::ADL, Bytes::from(format!("{ADL_Z}---\n{ADL_MET}")))
        .build();
    archive
}

#[test]
fn adl_analyses_validate_bit_exactly_from_the_archive() {
    let archive = build_archive();
    let report = Validator::new(&Platform::current()).run(&archive).expect("runs");
    assert!(report.passed(), "{}", report.detail);
    // The archived reference really contains the ADL analyses' output.
    let results = archive.section_text(sections::RESULTS).expect("results");
    assert!(results.contains("ADLZ_2014_I0200"));
    assert!(results.contains("ADLMET_2014_I0201"));
}

#[test]
fn stripping_the_adl_section_breaks_validation_cleanly() {
    let mut archive = build_archive();
    archive.sections.remove(sections::ADL);
    let report = Validator::new(&Platform::current()).run(&archive).expect("runs");
    // The workflow references analyses the registry no longer has.
    assert!(!report.executed, "{}", report.detail);
    assert!(report.detail.contains("ADLZ"), "{}", report.detail);
}

#[test]
fn corrupt_adl_document_reports_execute_failure() {
    let mut archive = build_archive();
    archive.insert(sections::ADL, Bytes::from("# daspos-adl v1\nbogus line\n"));
    let report = Validator::new(&Platform::current()).run(&archive).expect("runs");
    assert!(!report.executed);
    assert!(report.detail.contains("adl"), "{}", report.detail);
}

#[test]
fn adl_document_splitting() {
    let docs = daspos::validate::split_adl_documents(&format!("{ADL_Z}---\n{ADL_MET}"));
    assert_eq!(docs.len(), 2);
    assert!(AdlAnalysis::parse(&docs[0]).is_ok());
    assert!(AdlAnalysis::parse(&docs[1]).is_ok());
    assert!(daspos::validate::split_adl_documents("").is_empty());
}

#[test]
fn adl_analysis_serves_recast_requests() {
    use daspos_hep::SeedSequence;
    use daspos_recast::{RecastFrontEnd, RivetBridgeBackend};
    use std::sync::Arc;

    let registry = Arc::new(daspos_rivet::AnalysisRegistry::with_builtin());
    // A theorist ships their own ADL search and asks RECAST to run it:
    // the "analysis database" and the reanalysis framework compose.
    let search = "\
# daspos-adl v1
analysis ADLSEARCH_2014_I0202
experiment cms
object leps = leptons pt>= 25 abseta<= 2.5
cut two-leptons : count(leps) >= 2
cut high-mass : mass(leps[0],leps[1]) >= 200
hist m_ll = mass(leps[0],leps[1]) bins 50 0 1000
";
    registry.register(Box::new(AdlAnalysis::parse(search).expect("parses")));
    let frontend = RecastFrontEnd::start(
        Arc::new(RivetBridgeBackend::new(registry, SeedSequence::new(4))),
        2,
    );
    let id = frontend
        .submit(
            "ADLSEARCH_2014_I0202",
            daspos_gen::NewPhysicsParams {
                mass: 400.0,
                width: 12.0,
                cross_section_pb: 1.0,
            },
            120,
            "pheno",
        )
        .expect("submit");
    frontend.wait(id).expect("wait");
    frontend.approve(id).expect("approve");
    let out = frontend.fetch(id).expect("fetch");
    assert!(
        out.signal_efficiency > 0.4,
        "ADL search efficiency {}",
        out.signal_efficiency
    );
    frontend.shutdown();
}
