//! Offline drop-in replacement for the subset of the [`bytes`] crate API
//! this workspace uses.
//!
//! The container this repo builds in cannot reach a cargo registry, so
//! external crates are vendored as minimal, behaviour-compatible
//! re-implementations. This crate provides [`Bytes`], [`BytesMut`] and the
//! [`Buf`]/[`BufMut`] traits with the little-endian accessors the DPEF and
//! archive codecs rely on.
//!
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable
//! storage (an `Arc<[u8]>` plus a window), exactly the property the codec
//! depends on for zero-copy `split_to`/`slice`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous buffer with a consuming cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: {} bytes requested, {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cheaply cloneable immutable byte buffer: shared storage plus a window.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// A buffer over a static slice (copies; the real crate borrows, but
    /// behaviour is identical for readers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin}..{end}");
        assert!(end <= len, "slice end {end} out of range (len {len})");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to {at} out of range (len {})", self.len());
        let front = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }

    /// Split off and return everything from `at` on; `self` keeps the front.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off {at} out of range (len {})", self.len());
        let back = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        back
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Shorten the view to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} past end (len {})", self.len());
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable mutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Append from a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_accessors() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_i8(-3);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i32_le(-12345);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-1.5);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_i8(), -3);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i32_le(), -12345);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_f64_le(), -1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let mut m = s.clone();
        let front = m.split_to(2);
        assert_eq!(front.as_slice(), &[2, 3]);
        assert_eq!(m.as_slice(), &[4]);
        assert_eq!(s.as_slice(), &[2, 3, 4]); // clone untouched
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.advance(3);
    }
}
