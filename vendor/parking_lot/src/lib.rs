//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses: [`Mutex`], [`RwLock`] and [`Condvar`] with the
//! panic-free (non-poisoning) lock API, implemented over the std
//! primitives. A poisoned std lock is recovered via `into_inner`, which
//! matches parking_lot's semantics of not propagating poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex that does not poison.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable pairing with [`Mutex`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or the timeout elapses. Returns true if the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_coordinate() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let mut done = p2.0.lock();
            *done = true;
            p2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            pair.1.wait(&mut done);
        }
        assert!(*done);
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
