//! Offline drop-in replacement for the subset of `crossbeam` this
//! workspace uses: `crossbeam::channel` MPMC channels.
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar` queue. Both `Sender` and
//! `Receiver` are cloneable; the channel reports disconnection when every
//! handle on the other side has been dropped, matching crossbeam's
//! semantics for the `unbounded` flavour (the only one the workspace
//! needs — `bounded` is provided as an alias that ignores the capacity
//! hint, which is behaviour-compatible for correctness, not backpressure).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers;
    /// carries the unsent value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Create a "bounded" channel. The capacity is accepted for API
    /// compatibility but not enforced (no backpressure).
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Sender<T> {
        /// Send a value; fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded::<u64>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.iter().sum::<u64>())
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 4950);
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
