//! Regex-subset string strategies.
//!
//! `&'static str` patterns used as strategies (`"[a-z]{1,8}"` etc.) are
//! parsed into a tiny AST and sampled. Supported syntax: literal
//! characters, `\n`/`\t`/`\\` escapes, character classes with ranges and
//! literals (`[a-zA-Z0-9_.-]`, `[ -~\n]`), `{n}` / `{m,n}` quantifiers,
//! `?`, and `( … )?` groups. This covers every pattern the workspace's
//! property tests use; unsupported syntax panics with the pattern text.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// A single literal character.
    Literal(char),
    /// A set of admissible characters.
    Class(Vec<char>),
    /// A sequence of nodes (group body).
    Group(Vec<Node>),
    /// `inner` repeated between `min` and `max` times (inclusive).
    Repeat {
        inner: Box<Node>,
        min: u32,
        max: u32,
    },
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> char {
    match chars.next() {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some(c @ ('\\' | '.' | '-' | '[' | ']' | '(' | ')' | '{' | '}' | '?' | '/' | '+' | '*')) => c,
        other => panic!("unsupported escape {other:?} in string strategy pattern {pattern:?}"),
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        match chars.next() {
            None => panic!("unterminated character class in pattern {pattern:?}"),
            Some(']') => break,
            Some('-') => {
                // Range if squeezed between two literals and not trailing.
                match (prev, chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        let hi = if hi == '\\' {
                            parse_escape(chars, pattern)
                        } else {
                            hi
                        };
                        assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                        for c in (lo as u32 + 1)..=(hi as u32) {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        // Leading or trailing '-': a literal hyphen.
                        set.push('-');
                        prev = Some('-');
                    }
                }
            }
            Some('\\') => {
                let c = parse_escape(chars, pattern);
                set.push(c);
                prev = Some(c);
            }
            Some(c) => {
                set.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
    set.sort_unstable();
    set.dedup();
    set
}

fn parse_quantifier(
    node: Node,
    chars: &mut std::iter::Peekable<std::str::Chars>,
    pattern: &str,
) -> Node {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated quantifier in pattern {pattern:?}"),
                }
            }
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    }),
                    hi.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    }),
                ),
                None => {
                    let n: u32 = spec.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in pattern {pattern:?}")
                    });
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier {{{spec}}} in pattern {pattern:?}");
            Node::Repeat {
                inner: Box::new(node),
                min,
                max,
            }
        }
        Some('?') => {
            chars.next();
            Node::Repeat {
                inner: Box::new(node),
                min: 0,
                max: 1,
            }
        }
        _ => node,
    }
}

fn parse_sequence(
    chars: &mut std::iter::Peekable<std::str::Chars>,
    pattern: &str,
    in_group: bool,
) -> Vec<Node> {
    let mut nodes = Vec::new();
    loop {
        let node = match chars.next() {
            None => {
                assert!(!in_group, "unterminated group in pattern {pattern:?}");
                break;
            }
            Some(')') => {
                assert!(in_group, "unmatched ')' in pattern {pattern:?}");
                break;
            }
            Some('[') => Node::Class(parse_class(chars, pattern)),
            Some('(') => Node::Group(parse_sequence(chars, pattern, true)),
            Some('\\') => Node::Literal(parse_escape(chars, pattern)),
            Some(c @ ('*' | '+' | '|' | '^' | '$')) => {
                panic!("unsupported regex operator {c:?} in string strategy pattern {pattern:?}")
            }
            Some(c) => Node::Literal(c),
        };
        nodes.push(parse_quantifier(node, chars, pattern));
    }
    nodes
}

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(set) => {
            let idx = rng.below(set.len() as u64) as usize;
            out.push(set[idx]);
        }
        Node::Group(seq) => {
            for n in seq {
                sample_node(n, rng, out);
            }
        }
        Node::Repeat { inner, min, max } => {
            let n = if max > min {
                min + rng.below(u64::from(max - min) + 1) as u32
            } else {
                *min
            };
            for _ in 0..n {
                sample_node(inner, rng, out);
            }
        }
    }
}

/// Sample one string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let nodes = parse_sequence(&mut chars, pattern, false);
    let mut out = String::new();
    for node in &nodes {
        sample_node(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sample_pattern;
    use crate::test_runner::TestRng;

    fn samples(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::seed_from_u64(0xDA59);
        (0..n).map(|_| sample_pattern(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_ranges_and_trailing_hyphen() {
        for s in samples("[a-zA-Z0-9_.-]{1,24}", 500) {
            assert!((1..=24).contains(&s.len()), "len {}", s.len());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn optional_group() {
        let got = samples("[a-z]{1,8}(/[a-z]{1,8})?", 500);
        let mut with = false;
        let mut without = false;
        for s in &got {
            let parts: Vec<&str> = s.split('/').collect();
            assert!(parts.len() <= 2, "{s:?}");
            for p in &parts {
                assert!((1..=8).contains(&p.len()));
                assert!(p.chars().all(|c| c.is_ascii_lowercase()));
            }
            if parts.len() == 2 {
                with = true;
            } else {
                without = true;
            }
        }
        assert!(with && without, "both branches should appear");
    }

    #[test]
    fn printable_ascii_with_escape() {
        for s in samples("[ -~\\n]{0,256}", 300) {
            assert!(s.len() <= 256);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        // Raw string form used inside raw literals in tests.
        for s in samples("[ -~]{0,24}", 300) {
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn concatenated_fixed_prefix() {
        for s in samples("[a-z][a-z0-9]{0,12}", 300) {
            assert!(!s.is_empty() && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }
}
