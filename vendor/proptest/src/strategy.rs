//! The [`Strategy`] trait and combinators.
//!
//! A strategy here is simply a deterministic sampler: `sample(&self, rng)`
//! produces one value. Shrinking is intentionally omitted — failures
//! report the case index, and the run is reproducible because the RNG is
//! seeded from the test identity.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of values for property tests.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (resamples; gives up after a
    /// bounded number of attempts and returns the last sample).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Build recursive structures: `depth` levels of `recurse` applied to
    /// a boxed self, mixed with the leaf at every level.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At each level, bias toward leaves so sizes stay bounded.
            strat = Union::new(vec![leaf.clone(), leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Erase the concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V> {
    sample: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.sample(rng);
        for _ in 0..100 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.sample(rng);
        }
        last
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the available options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// A strategy from a plain sampling closure (the `prop_compose!` backend).
#[derive(Clone)]
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wrap a sampling function.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<V, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> V,
{
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.f)(rng)
    }
}

// --- Numeric ranges --------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- Tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// --- bool ------------------------------------------------------------------

/// The `prop::bool::ANY` strategy type.
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

/// The `prop::bool::ANY` strategy value.
pub const BOOL_ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// --- Strings ---------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

// --- Numeric namespaces ----------------------------------------------------

pub mod num {
    //! Placeholder namespace for `prop::num` parity. Range strategies are
    //! implemented directly on `Range`/`RangeInclusive`.
}

// --- Collections -----------------------------------------------------------

pub mod collection {
    //! `vec`, `btree_map` and `btree_set` strategies.

    use super::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// A size specification: exact or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.max <= self.min + 1 {
                self.min
            } else {
                self.min + rng.below((self.max - self.min) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Build a BTreeMap strategy. Duplicate keys are retried a bounded
    /// number of times, so sparse key spaces may yield smaller maps.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 20 {
                out.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a BTreeSet strategy (same duplicate-retry behaviour as
    /// [`btree_map`]).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 20 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = (0.5..2.5f64).sample(&mut rng);
            assert!((0.5..2.5).contains(&f));
            let u = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&u));
            let i = (-1i8..=1).sample(&mut rng);
            assert!((-1..=1).contains(&i));
        }
    }

    #[test]
    fn map_union_and_just_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = crate::prop_oneof![
            Just(0u32),
            (10u32..20).prop_map(|v| v * 2),
        ];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v == 0 || (20..40).contains(&v));
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::seed_from_u64(3);
        let vs = collection::vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = vs.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = collection::vec(0u32..5, 4usize);
        assert_eq!(exact.sample(&mut rng).len(), 4);
        let sets = collection::btree_set(0u32..1000, 1..4);
        for _ in 0..50 {
            let s = sets.sample(&mut rng);
            assert!((1..4).contains(&s.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let mut rng = TestRng::seed_from_u64(4);
        let strat = (0u32..10).prop_map(Tree::Leaf).prop_recursive(4, 64, 4, |inner| {
            collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        for _ in 0..100 {
            let _ = strat.sample(&mut rng);
        }
    }
}
