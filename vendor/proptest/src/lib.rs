//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses.
//!
//! Implements the [`Strategy`] trait as a deterministic sampler (no
//! shrinking — a failing case panics with the case number so it can be
//! replayed; the generator is seeded from the test's file and name, making
//! every run reproducible), the strategy combinators the repo's property
//! tests use (ranges, tuples, collections, `prop_map`, `prop_recursive`,
//! unions, `Just`, regex-subset string strategies) and the macros
//! (`proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert*!`).

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Sub-strategy namespaces (`prop::collection::vec`, `prop::bool::ANY`, …).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, btree_set, vec};
    }
    pub mod bool {
        pub use crate::strategy::BOOL_ANY as ANY;
    }
    pub use crate::strategy::num;
}

pub mod arbitrary {
    //! `any::<T>()` for primitive `T`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Sample an arbitrary value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, broad range.
            let unit = rng.unit_f64();
            let mag = (unit * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0xD800u64) as u32).unwrap_or('a')
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary + Clone + 'static> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

// --- Macros ----------------------------------------------------------------

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(binding in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(#[$meta:meta] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, e)
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Compose a named strategy function from sub-strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($outer:tt)*)
        ($($arg:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
}

/// A union of strategies with a common value type, chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property test; failure reports the case instead of
/// unwinding through arbitrary frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
