//! Deterministic test runner support: configuration, RNG and case errors.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a property-test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` — skip, don't fail.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An assumption rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Whether this is a rejection (skipped case) rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator driving strategies: xoshiro256** seeded
/// from the test's identity, so every `cargo test` run replays the same
/// cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary u64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix(&mut state),
            splitmix(&mut state),
            splitmix(&mut state),
            splitmix(&mut state),
        ];
        TestRng { s }
    }

    /// Seed deterministically from a test's file and name.
    pub fn for_test(file: &str, name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain([0u8]).chain(name.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
