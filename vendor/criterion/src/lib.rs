//! Offline mini benchmark harness with the subset of the `criterion`
//! API this workspace's benches use: [`Criterion`] with
//! `bench_function`/`benchmark_group`, [`Bencher::iter`], the
//! `criterion_group!`/`criterion_main!` macros and [`black_box`].
//!
//! Measurement model: warm up for `warm_up_time`, then time batches of
//! the routine (batch size auto-scaled so one batch is ≥ ~1ms) until
//! `measurement_time` elapses or `sample_size` samples are collected,
//! and report median / min / max per-iteration time. No plots, no
//! statistical regression — just honest wall-clock numbers printed to
//! stdout, suitable for before/after comparisons in one environment.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Times one benchmark routine.
pub struct Bencher<'a> {
    samples_ns: &'a mut Vec<f64>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        // Batch so each timed sample covers at least ~1ms.
        let batch = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

        let run_start = Instant::now();
        while self.samples_ns.len() < self.sample_size
            && (self.samples_ns.is_empty() || run_start.elapsed() < self.measurement)
        {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Target duration for the timed phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Apply command-line arguments. Supports an optional positional
    /// substring filter and ignores harness flags like `--bench`.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" => {}
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = v;
                    }
                }
                _ if a.starts_with("--") => {
                    // Unknown harness flag; skip a possible value.
                }
                _ => self.filter = Some(a),
            }
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(id) {
            return;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples_ns: &mut samples,
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
        };
        f(&mut b);
        if samples.is_empty() {
            println!("{id:<48} (no samples recorded)");
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{id:<48} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }

    /// Benchmark one routine under `id`.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref().to_string();
        self.run_one(&id, &mut f);
        self
    }

    /// Open a named group; member ids are printed as `group/id`.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
        }
    }

    /// Print the closing line (kept for API parity).
    pub fn final_summary(&mut self) {
        println!();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one routine within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&id, &mut f);
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Group benchmark functions under a config, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("smoke", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
