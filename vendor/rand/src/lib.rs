//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses: [`RngCore`], [`Rng::gen_range`], [`SeedableRng`] and
//! [`rngs::StdRng`].
//!
//! The generator behind `StdRng` is xoshiro256** seeded through SplitMix64
//! — not the ChaCha12 of upstream rand, so absolute streams differ from
//! the real crate, but every determinism property the toolkit relies on
//! holds: the stream is a pure function of the seed, identical across
//! platforms, processes and threads. All physics in this repo samples
//! through these streams, so tier files stay bit-reproducible.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator. Object-safe.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Guard the (theoretically possible) rounding onto `end`.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

/// Uniform integer below `bound` via Lemire's multiply-shift with
/// rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full u64/i64 domain: raw bits are already uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                ((start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A bool that is true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the same
    /// convention rand 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    ///
    /// Small state, passes BigCrush, and — crucially for preservation —
    /// the stream is a pure, platform-independent function of the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // A zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace never relies on `SmallRng`'s distinct stream.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: u32 = rng.gen_range(5u32..10);
            assert!((5..10).contains(&i));
            let j: i8 = rng.gen_range(-1i8..=1);
            assert!((-1..=1).contains(&j));
        }
    }

    #[test]
    fn uniform_f64_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = dynr.gen_range(0.0..10.0);
        assert!((0.0..10.0).contains(&x));
    }
}
