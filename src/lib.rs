//! # daspos-repro — the DASPOS preservation toolkit, assembled
//!
//! Facade crate re-exporting every subsystem of the workspace. Use the
//! individual `daspos-*` crates for focused dependencies, or this crate
//! to get the whole toolkit (as the examples and integration tests do).
//!
//! See the repository README for the architecture overview and DESIGN.md
//! for the paper-to-module mapping.

pub use daspos as core;
pub use daspos_conditions as conditions;
pub use daspos_detsim as detsim;
pub use daspos_gen as gen;
pub use daspos_hep as hep;
pub use daspos_hepdata as hepdata;
pub use daspos_metadata as metadata;
pub use daspos_outreach as outreach;
pub use daspos_provenance as provenance;
pub use daspos_recast as recast;
pub use daspos_reco as reco;
pub use daspos_rivet as rivet;
pub use daspos_tiers as tiers;
