//! The `daspos` command-line tool: produce, inspect, validate, migrate
//! and vault preservation archives from a shell.
//!
//! ```text
//! daspos produce  --experiment cms --process z-boson --events 200 --seed 42 --out z.dpar
//! daspos inspect  z.dpar
//! daspos validate z.dpar [--platform el9-aarch64]
//! daspos migrate  z.dpar --out z-el9.dpar
//! daspos trace    --experiment cms --events 200 --seed 42 --out trace.jsonl
//! daspos vault    put z.dpar --store vault/ --key z.dpar
//! daspos vault    scrub --store vault/
//! daspos table1
//! daspos maturity
//! ```
//!
//! Exit codes are uniform across subcommands: 0 on success, 1 when a
//! validation / integrity / campaign check fails, 2 on usage errors
//! (unknown command, missing or malformed arguments).

use std::process::ExitCode;

use bytes::Bytes;
use daspos::prelude::*;
use daspos::usecases;
use daspos_hep::event::ProcessKind;

/// With `--features bench-alloc` every allocation in the binary goes
/// through the counting wrapper, so `daspos bench` can report peak bytes.
#[cfg(feature = "bench-alloc")]
#[global_allocator]
static ALLOC: daspos::bench::alloc_counter::CountingAlloc =
    daspos::bench::alloc_counter::CountingAlloc;

/// A CLI failure, split by exit code: operational failures (validation
/// mismatch, integrity damage, campaign violations, I/O) exit 1; usage
/// errors (bad flags, unknown names) exit 2.
#[derive(Debug)]
enum CliError {
    /// Exit 2 — the invocation itself was wrong.
    Usage(String),
    /// Exit 1 — the invocation was fine, the work failed.
    Failure(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
}

/// `format!`-built runtime messages default to failures…
impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Failure(msg)
    }
}

/// …while the `&'static str` literals in the flag parsers ("bad --seed",
/// "produce needs --out") are usage errors.
impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Usage(msg.to_string())
    }
}

type CliResult = Result<(), CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("produce") => cmd_produce(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("migrate") => cmd_migrate(&args[1..]),
        Some("table1") => {
            println!("{}", daspos_outreach::experiments::render_table1());
            Ok(())
        }
        Some("trace") => cmd_trace(&args[1..]),
        Some("faultlab") => cmd_faultlab(&args[1..]),
        Some("vault") => cmd_vault(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("maturity") => cmd_maturity(),
        Some("help") | Some("--help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown command '{other}' (try 'daspos help')"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Failure(msg)) => {
            eprintln!("daspos: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("daspos: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "daspos — data and software preservation toolkit

USAGE:
  daspos produce  --experiment <alice|atlas|cms|lhcb> [--process <name>]
                  [--events N] [--seed N] [--threads N]
                  [--trace-out <file.jsonl>] --out <file.dpar>
        run the full chain and package a preservation archive
        (--threads 1 forces the sequential engine; default is one worker
         per hardware thread — the output is identical either way;
         --trace-out also records a deterministic JSONL trace)
  daspos inspect  <file.dpar>
        list sections, the workflow, and the use cases the archive serves
  daspos validate <file.dpar> [--platform <name>]
        re-execute the archive and compare bit-for-bit
  daspos migrate  <file.dpar> --out <file.dpar>
        rebuild the archived software stack for the successor platform
  daspos trace    [--experiment <name>] [--process <name>] [--events N]
                  [--seed N] [--threads N] [--tier-format <row|columnar>]
                  [--out <file.jsonl>]
        run the full chain with observability on: per-stage spans, chain
        counters, a summary table on stdout and a deterministic JSONL
        trace (timestamp-stripped, byte-stable for a fixed seed at any
        thread count; default trace.jsonl; --tier-format columnar runs
        the predicate-pushdown DPCF skim and reports
        tier.columnar.cols_read/cols_skipped)
  daspos faultlab [--seed N] [--mutations N] [--events N]
                  [--classes <a,b,...>] [--replay <class>:<index>]
                  [--trace-out <file.jsonl>]
        run a deterministic fault-injection campaign over every artifact
        class (sealed tiers, columnar tier, archive container, conditions
        and results text, vault replicas, erasure shard stripes) and
        assert each mutation is detected or harmless; --classes restricts
        the campaign to a comma-separated subset (e.g. --classes
        vault-shard);
        --replay re-runs one mutation by its campaign coordinates
  daspos vault    put <file> --store <dir> [--key <name>] [--kind <kind>]
                  [--replicas N | --erasure k,m]
        copy a file into a preservation vault: either N full replicas
        (default 3, under <dir>/replica-K) or k+m erasure-coded shards
        (--erasure 4,2 stripes each object over 6 <dir>/shard-K backends
        and survives any 2 of them dying); --replicas and --erasure are
        mutually exclusive; an existing store keeps its layout; the kind
        (opaque, sealed-tier, container, conditions, columnar-aod) is
        sniffed from the payload unless given
  daspos vault    get <key> --store <dir> --out <file>
        checksum-verified read: replicated stores return the first copy
        that passes integrity checks, erasure stores reconstruct from any
        k verified shards — healing damaged copies in passing
  daspos vault    scrub --store <dir> [--threads N]
        walk every object, verify envelope and shard digests, DPSL seals
        and container manifests, and repair damaged copies (rebuilding
        lost shards from the surviving k); --threads fans per-object work
        across the worker pool; exits 1 if damage remains
  daspos vault    scrub --selftest [--erasure 4,2] [--seed N]
                  [--mutations N] [--events N]
        deterministic disaster drill: inject seeded corruption into a
        scratch vault and prove scrub detects and repairs every mutation
        (exit 1 otherwise); --erasure 4,2 drills the sharded vault
        instead (backend kills, correlated shard corruption, geometry
        forgeries, scrubs racing writes)
  daspos vault    verify --store <dir> [--threads N]
        like scrub but read-only: report damage without repairing
  daspos serve    [--addr <host:port>] [--store <dir>]
                  [--replicas N | --erasure k,m]
                  [--max-inflight N] [--pool N] [--streams N]
                  [--scrub-ms N] [--default-quota B:I:O]
                  [--quota tenant=B:I:O[,tenant=…]]
        run the multi-tenant preservation service daemon: a framed
        DPRQ/DPRS protocol over one shared vault (a directory store with
        --store, else in-memory), served by a fixed worker pool (--pool,
        default 4) multiplexing every connection, an admission gate that
        answers 'overloaded' past --max-inflight concurrent ops (default
        64) or --streams open chunked uploads (default 32), per-tenant
        quotas (BYTES:INFLIGHT:OPS-per-sec, 0 = unlimited; --default-quota
        for everyone, --quota for per-tenant overrides) answered with
        'quota-exceeded', and a background scrubber (--scrub-ms cadence,
        0 disables) that yields to foreground traffic; objects larger
        than one 16 MiB frame stream through chunked PUT/GET; prints the
        bound address, serves until a client sends shutdown, then drains
        and reports counters
  daspos serve    --selftest
        tier-1 smoke: in-process server + concurrent loadgen burst with
        byte-identity verification, a 64 MiB streamed round trip under
        bounded buffering, and a forced per-tenant quota rejection (exit
        1 on any failure)
  daspos loadgen  --addr <host:port> [--clients N] [--ops N] [--tenants N]
                  [--seed N] [--payload-bytes N] [--mix p:g:v:s]
                  [--large-every N] [--large-bytes N] [--chunk-bytes N]
                  [--shutdown]
        simulate a community of analysts against a running serve: N
        concurrent clients drive a seeded put/get/verify/scrub mix,
        deep-verifying every GET byte-for-byte and absorbing backpressure
        with retries; every --large-every'th put streams a --large-bytes
        object through the chunked protocol (0 disables) and streamed ops
        report their own sput/sget p50/p99 lines; prints latencies and
        throughput, exits 1 on any verification failure; --shutdown stops
        the server afterwards
  daspos bench    [--events N] [--reps N] [--threads N] [--seed N]
                  [--metrics a,b,…] [--out <file.json>] [--allow-regression]
        time decode / seal-verify / skim (batch, streaming and columnar),
        parallel columnar decode, v1/v2 columnar encode, the full chain,
        vault put/get/scrub, erasure put/get/rebuild (4+2 vs 3-replica
        bytes-on-backend), and the serve protocol's put/get/mixed plus
        chunked stream_put/stream_get p50+p99 latencies over a fixture
        workflow; --metrics runs only metrics whose names contain one of
        the given substrings (e.g. --metrics columnar skips the vault
        and serve fixtures); writes a
        JSON report (default BENCH_10.json) and exits 2 if any metric
        regressed >25% in time or bytes/event versus the previous
        BENCH_*.json unless --allow-regression is passed (the bench-alloc
        counting allocator is on by default, so peak-allocation figures
        are reported)
  daspos table1
        print the Table 1 outreach feature matrix
  daspos maturity
        print the Appendix A maturity rubric table"
    );
}

/// Pull `--name value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse the mutually exclusive redundancy pair `--replicas N` /
/// `--erasure k,m`. `None` means neither flag was given (the caller
/// picks its default).
fn redundancy_flags(args: &[String]) -> Result<Option<Redundancy>, CliError> {
    let replicas = flag(args, "--replicas");
    let erasure = flag(args, "--erasure");
    if replicas.is_some() && erasure.is_some() {
        return Err(CliError::usage(
            "--replicas and --erasure are mutually exclusive: a vault is either \
             fully replicated or striped k+m, not both (try 'daspos help')",
        ));
    }
    if let Some(n) = replicas {
        let n: usize = n.parse().map_err(|_| "bad --replicas")?;
        if n == 0 {
            return Err(CliError::usage("--replicas must be at least 1"));
        }
        return Ok(Some(Redundancy::Replicas(n)));
    }
    if let Some(spec) = erasure {
        let bad = || CliError::usage(format!("bad --erasure '{spec}' (want k,m — e.g. 4,2)"));
        let (k, m) = spec.split_once(',').ok_or_else(bad)?;
        let k: usize = k.trim().parse().map_err(|_| bad())?;
        let m: usize = m.trim().parse().map_err(|_| bad())?;
        if k == 0 || m == 0 || k + m > 255 {
            return Err(CliError::usage(format!(
                "bad --erasure '{spec}': need k >= 1, m >= 1 and k+m <= 255"
            )));
        }
        return Ok(Some(Redundancy::Erasure { k, m }));
    }
    Ok(None)
}

fn positional(args: &[String]) -> Option<String> {
    args.iter().find(|a| !a.starts_with("--")).cloned()
}

fn load_archive(path: &str) -> Result<PreservationArchive, String> {
    let raw = std::fs::read(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
    PreservationArchive::from_bytes(&Bytes::from(raw)).map_err(|e| e.to_string())
}

fn cmd_produce(args: &[String]) -> CliResult {
    let experiment_name = flag(args, "--experiment").ok_or("produce needs --experiment <name>")?;
    let experiment = Experiment::all()
        .into_iter()
        .find(|e| e.name() == experiment_name)
        .ok_or_else(|| CliError::usage(format!("unknown experiment '{experiment_name}'")))?;
    let out = flag(args, "--out").ok_or("produce needs --out <file.dpar>")?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "2013".to_string())
        .parse()
        .map_err(|_| "bad --seed")?;
    let n_events: u64 = flag(args, "--events")
        .unwrap_or_else(|| "200".to_string())
        .parse()
        .map_err(|_| "bad --events")?;
    let process_name = flag(args, "--process").unwrap_or_else(|| "z-boson".to_string());
    let mut opts = match flag(args, "--threads") {
        Some(t) => ExecOptions::new().threads(t.parse().map_err(|_| "bad --threads")?),
        None => ExecOptions::new(),
    };
    let trace_out = flag(args, "--trace-out");
    let trace = trace_out.as_ref().map(|_| {
        let collector = std::sync::Arc::new(MemoryCollector::new());
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        opts = opts
            .clone()
            .with_obs(Obs::collecting(collector.clone(), registry.clone()));
        (collector, registry)
    });

    let mut workflow = match process_name.as_str() {
        "charm" => PreservedWorkflow::standard_charm(seed, n_events),
        _ => {
            let process = ProcessKind::all()
                .iter()
                .copied()
                .find(|p| p.name() == process_name)
                .ok_or_else(|| CliError::usage(format!("unknown process '{process_name}'")))?;
            let mut wf = PreservedWorkflow::standard_z(experiment, seed, n_events);
            wf.process = process;
            wf
        }
    };
    workflow.experiment = experiment;

    eprintln!(
        "producing {} {} events on {} (seed {seed}, {} threads)…",
        n_events,
        workflow.process.name(),
        experiment.name(),
        opts.thread_count()
    );
    let ctx = ExecutionContext::fresh(&workflow);
    let production = workflow.execute(&ctx, &opts).map_err(|e| e.to_string())?;
    for (tier, bytes, events) in &production.tier_bytes {
        eprintln!("  {tier:>8}: {events:>7} events {bytes:>12} bytes");
    }
    let name = format!("{}-{}-{}", experiment.name(), workflow.process.name(), seed);
    let archive = PreservationArchive::builder(&name)
        .production(&workflow, &ctx, &production)
        .map_err(|e| e.to_string())?
        .build();
    std::fs::write(&out, archive.to_bytes()).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!(
        "archive '{name}' written to {out} ({} bytes, {} sections)",
        archive.byte_size(),
        archive.sections.len()
    );
    if let (Some(path), Some((collector, registry))) = (trace_out, trace) {
        write_trace(&path, &collector.sorted_records(), &registry.snapshot())?;
    }
    Ok(())
}

/// Write the canonical stable trace (spans sorted by path, timestamps and
/// gauges stripped) and confirm it parses back.
fn write_trace(
    path: &str,
    records: &[daspos::obs::SpanRecord],
    snapshot: &daspos::obs::MetricsSnapshot,
) -> Result<(), String> {
    let jsonl = daspos::obs::render_trace(records, Some(snapshot), true);
    daspos::obs::parse_jsonl(&jsonl).map_err(|e| format!("trace does not round-trip: {e}"))?;
    std::fs::write(path, &jsonl).map_err(|e| format!("cannot write '{path}': {e}"))?;
    println!(
        "trace written to {path} ({} spans, {} counters)",
        records.len(),
        snapshot.counters.len()
    );
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    let experiment_name = flag(args, "--experiment").unwrap_or_else(|| "cms".to_string());
    let experiment = Experiment::all()
        .into_iter()
        .find(|e| e.name() == experiment_name)
        .ok_or_else(|| CliError::usage(format!("unknown experiment '{experiment_name}'")))?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "2013".to_string())
        .parse()
        .map_err(|_| "bad --seed")?;
    let n_events: u64 = flag(args, "--events")
        .unwrap_or_else(|| "200".to_string())
        .parse()
        .map_err(|_| "bad --events")?;
    let out = flag(args, "--out").unwrap_or_else(|| "trace.jsonl".to_string());
    let process_name = flag(args, "--process").unwrap_or_else(|| "z-boson".to_string());
    let mut workflow = match process_name.as_str() {
        "charm" => PreservedWorkflow::standard_charm(seed, n_events),
        _ => {
            let process = ProcessKind::all()
                .iter()
                .copied()
                .find(|p| p.name() == process_name)
                .ok_or_else(|| CliError::usage(format!("unknown process '{process_name}'")))?;
            let mut wf = PreservedWorkflow::standard_z(experiment, seed, n_events);
            wf.process = process;
            wf
        }
    };
    workflow.experiment = experiment;

    let collector = std::sync::Arc::new(MemoryCollector::new());
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let mut opts =
        ExecOptions::new().with_obs(Obs::collecting(collector.clone(), registry.clone()));
    if let Some(threads) = flag(args, "--threads") {
        opts = opts.threads(threads.parse().map_err(|_| "bad --threads")?);
    }
    if let Some(format) = flag(args, "--tier-format") {
        let format = daspos_tiers::TierFormat::parse(&format).ok_or_else(|| {
            CliError::usage(format!("unknown tier format '{format}' (row or columnar)"))
        })?;
        opts = opts.tier_format(format);
    }

    eprintln!(
        "tracing {} {} events on {} (seed {seed}, {} threads)…",
        n_events,
        workflow.process.name(),
        experiment.name(),
        opts.thread_count()
    );
    let ctx = ExecutionContext::fresh(&workflow);
    workflow.execute(&ctx, &opts).map_err(|e| e.to_string())?;

    let records = collector.sorted_records();
    let missing = daspos::workflow::chain_trace_coverage(&records);
    if !missing.is_empty() {
        return Err(format!("trace is missing chain stages: {}", missing.join(", ")).into());
    }
    let snapshot = registry.snapshot();
    print!("{}", TraceSummary::from_records(&records).to_text());
    println!();
    print!("{}", snapshot.to_text());
    write_trace(&out, &records, &snapshot)?;
    Ok(())
}

fn cmd_inspect(args: &[String]) -> CliResult {
    let path = positional(args).ok_or("inspect needs a file")?;
    let archive = load_archive(&path)?;
    println!(
        "archive '{}' (container v{})",
        archive.name, archive.version
    );
    println!("\nsections:");
    for (name, s) in &archive.sections {
        println!(
            "  {name:>12}: {:>8} bytes  fnv64 {:016x}  {}",
            s.data.len(),
            s.checksum,
            if s.intact() { "intact" } else { "CORRUPT" }
        );
    }
    if let Ok(text) = archive.section_text(daspos::archive::sections::WORKFLOW) {
        println!("\nworkflow:\n{}", indent(text));
    }
    if let Ok(stack) = archive.software() {
        println!("software stack ({}):", stack.platform);
        for p in &stack.packages {
            println!("  {}", p.render());
        }
    }
    println!("\nuse cases served:");
    for uc in usecases::served_by(&archive) {
        println!("  [{:?}] {}", uc.actor, uc.name);
    }
    Ok(())
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn cmd_validate(args: &[String]) -> CliResult {
    let path = positional(args).ok_or("validate needs a file")?;
    let platform = flag(args, "--platform")
        .map(daspos_provenance::Platform)
        .unwrap_or_else(Platform::current);
    let archive = load_archive(&path)?;
    eprintln!("re-executing '{}' on {platform}…", archive.name);
    let report = Validator::new(&platform)
        .run(&archive)
        .map_err(|e| e.to_string())?;
    println!("integrity:  {}", report.integrity_ok);
    println!("platform:   {}", report.platform_ok);
    println!("executed:   {}", report.executed);
    println!("reproduced: {}", report.reproduced);
    println!("detail:     {}", report.detail);
    if report.passed() {
        println!("VALID — the archive reproduces its reference bit-for-bit");
        Ok(())
    } else {
        Err(format!("validation FAILED ({})", report.detail).into())
    }
}

fn cmd_migrate(args: &[String]) -> CliResult {
    let path = positional(args).ok_or("migrate needs a file")?;
    let out = flag(args, "--out").ok_or("migrate needs --out <file.dpar>")?;
    let mut archive = load_archive(&path)?;
    let target = flag(args, "--platform")
        .map(daspos_provenance::Platform)
        .unwrap_or_else(Platform::successor);
    let stack = archive.software().map_err(|e| e.to_string())?;
    archive.set_software(&stack.migrated_to(target.clone()));
    let report = Validator::new(&target)
        .run(&archive)
        .map_err(|e| e.to_string())?;
    if !report.passed() {
        return Err(format!(
            "archive does not validate after migration: {}",
            report.detail
        )
        .into());
    }
    std::fs::write(&out, archive.to_bytes()).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!(
        "migrated '{}' to {target}; revalidated bit-exactly; written to {out}",
        archive.name
    );
    Ok(())
}

fn cmd_faultlab(args: &[String]) -> CliResult {
    use daspos::faultlab::{self, ArtifactClass, CampaignConfig, Outcome};
    let mut cfg = CampaignConfig::default();
    if let Some(seed) = flag(args, "--seed") {
        cfg.master_seed = seed.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(m) = flag(args, "--mutations") {
        cfg.mutations_per_class = m.parse().map_err(|_| "bad --mutations")?;
    }
    if let Some(e) = flag(args, "--events") {
        cfg.events = e.parse().map_err(|_| "bad --events")?;
    }

    let classes: Vec<ArtifactClass> = match flag(args, "--classes") {
        Some(spec) => {
            let parsed: Vec<ArtifactClass> = spec
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|name| {
                    ArtifactClass::parse(name).ok_or_else(|| {
                        CliError::usage(format!(
                            "unknown class '{name}' (one of: {})",
                            ArtifactClass::all().map(|c| c.name()).join(", ")
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            if parsed.is_empty() {
                return Err(CliError::usage("--classes wants at least one class name"));
            }
            parsed
        }
        None => ArtifactClass::all().to_vec(),
    };

    if let Some(coords) = flag(args, "--replay") {
        let (class_name, index) = coords
            .split_once(':')
            .ok_or("--replay wants <class>:<index>, e.g. tier-aod:17")?;
        let class = ArtifactClass::parse(class_name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown class '{class_name}' (one of: {})",
                ArtifactClass::all().map(|c| c.name()).join(", ")
            ))
        })?;
        let index: u32 = index.parse().map_err(|_| "bad replay index")?;
        let (mutation, outcome) =
            faultlab::replay(&cfg, class, index).map_err(|e| e.to_string())?;
        println!(
            "replay {class}:{index} (seed {:#018x})\n  mutation: {}",
            mutation.seed, mutation.kind
        );
        return match outcome {
            Outcome::Detected(layer) => {
                println!("  outcome:  detected by {layer}");
                Ok(())
            }
            Outcome::Harmless => {
                println!("  outcome:  harmless (content identical)");
                Ok(())
            }
            Outcome::Violation(detail) => Err(format!("invariant VIOLATED: {detail}").into()),
        };
    }

    eprintln!(
        "faultlab: injecting {} mutations x {} classes (seed {})…",
        cfg.mutations_per_class,
        classes.len(),
        cfg.master_seed
    );
    let trace_out = flag(args, "--trace-out");
    let trace = trace_out.as_ref().map(|_| {
        (
            std::sync::Arc::new(MemoryCollector::new()),
            std::sync::Arc::new(MetricsRegistry::new()),
        )
    });
    let obs = match &trace {
        Some((collector, registry)) => Obs::collecting(collector.clone(), registry.clone()),
        None => Obs::disabled(),
    };
    let report = faultlab::run_campaign_for(&cfg, &classes, &obs).map_err(|e| e.to_string())?;
    print!("{}", report.to_text());
    if let (Some(path), Some((collector, registry))) = (trace_out, trace) {
        write_trace(&path, &collector.sorted_records(), &registry.snapshot())?;
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} invariant violations", report.total_violations()).into())
    }
}

fn cmd_serve(args: &[String]) -> CliResult {
    use daspos::serve::{Chaos, Quota, ServeConfig, Server, Service};
    use std::sync::Arc;

    if args.iter().any(|a| a == "--selftest") {
        eprintln!("serve selftest: in-process server + concurrent loadgen burst…");
        let text = daspos::serve::selftest().map_err(|e| CliError::Failure(e.to_string()))?;
        print!("{text}");
        println!("serve selftest PASSED — campaign clean, shutdown drained");
        return Ok(());
    }

    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let mut builder = ServeConfig::builder();
    if let Some(m) = flag(args, "--max-inflight") {
        builder = builder.max_inflight(m.parse().map_err(|_| "bad --max-inflight")?);
    }
    if let Some(p) = flag(args, "--pool") {
        builder = builder.pool_size(p.parse().map_err(|_| "bad --pool")?);
    }
    if let Some(s) = flag(args, "--streams") {
        builder = builder.max_streams(s.parse().map_err(|_| "bad --streams")?);
    }
    if let Some(ms) = flag(args, "--scrub-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --scrub-ms")?;
        builder = builder.scrub_interval(std::time::Duration::from_millis(ms));
    }
    if let Some(q) = flag(args, "--default-quota") {
        let quota = Quota::parse(&q).ok_or_else(|| {
            CliError::usage(format!("bad --default-quota '{q}' (want BYTES:INFLIGHT:OPS)"))
        })?;
        builder = builder.default_quota(quota);
    }
    if let Some(list) = flag(args, "--quota") {
        // --quota tenant=BYTES:INFLIGHT:OPS[,tenant=…] — per-tenant
        // overrides on top of the default quota.
        for entry in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (tenant, spec) = entry.split_once('=').ok_or_else(|| {
                CliError::usage(format!(
                    "bad --quota entry '{entry}' (want tenant=BYTES:INFLIGHT:OPS)"
                ))
            })?;
            let quota = Quota::parse(spec).ok_or_else(|| {
                CliError::usage(format!(
                    "bad --quota entry '{entry}' (want tenant=BYTES:INFLIGHT:OPS)"
                ))
            })?;
            builder = builder.quota(tenant, quota);
        }
    }
    if let Some(name) = flag(args, "--chaos") {
        // Test hook: inject server-side faults so loadgen's deep
        // verification can be proven to catch them.
        builder = builder.chaos(Chaos::parse(&name).ok_or_else(|| {
            CliError::usage(format!("unknown chaos mode '{name}' (flip-get)"))
        })?);
    }
    let cfg = builder.build().map_err(|e| CliError::usage(e.to_string()))?;

    // The vault behind the service: a directory store when --store is
    // given (objects survive restarts), else in-memory backends.
    // --replicas / --erasure pick the redundancy either way.
    let requested = redundancy_flags(args)?;
    let vault = match flag(args, "--store") {
        Some(store) => {
            let create = Some(requested.unwrap_or(Redundancy::Replicas(3)));
            open_vault(&store, requested, create, Obs::disabled())?
        }
        None => {
            use daspos::vault::{MemoryBackend, Vault};
            let redundancy = requested.unwrap_or(Redundancy::Replicas(2));
            let n = match redundancy {
                Redundancy::Replicas(n) => n,
                Redundancy::Erasure { k, m } => k + m,
            };
            Vault::builder()
                .backends(
                    (0..n)
                        .map(|_| Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>)
                        .collect(),
                )
                .redundancy(redundancy)
                .build()
                .map_err(|e| e.to_string())?
        }
    };

    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let scrub = cfg.scrub_interval();
    let service = Arc::new(Service::new(
        vault,
        &cfg,
        Obs::metrics_only(registry.clone()),
    ));
    let server = Server::start(service.clone(), &addr, scrub)
        .map_err(|e| CliError::Failure(e.to_string()))?;
    println!("serving on {}", server.addr());
    eprintln!(
        "  max in-flight {}, {} worker(s), scrub every {:?}; stop with \
         'daspos loadgen --addr {} --shutdown'",
        cfg.max_inflight(),
        cfg.pool_size(),
        scrub,
        server.addr()
    );
    server.join();
    let stats = service.stats();
    let snapshot = registry.snapshot();
    println!(
        "drained: {} op(s) served, {} rejected (backpressure), \
         {} scrub step(s) ({} yield(s) to traffic)",
        stats.ops(),
        stats.rejected(),
        stats.scrub_steps(),
        stats.scrub_yields()
    );
    if !snapshot.counters.is_empty() {
        print!("{}", snapshot.to_text());
    }
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> CliResult {
    use daspos::serve::{loadgen, LoadgenConfig, MixWeights, ServeClient};

    let addr = flag(args, "--addr").ok_or("loadgen needs --addr <host:port>")?;
    let mut cfg = LoadgenConfig {
        addr: addr.clone(),
        ..LoadgenConfig::default()
    };
    if let Some(c) = flag(args, "--clients") {
        cfg.clients = c.parse().map_err(|_| "bad --clients")?;
        if cfg.clients == 0 {
            return Err(CliError::usage("--clients must be at least 1"));
        }
    }
    if let Some(o) = flag(args, "--ops") {
        cfg.ops_per_client = o.parse().map_err(|_| "bad --ops")?;
    }
    if let Some(t) = flag(args, "--tenants") {
        cfg.tenants = t.parse().map_err(|_| "bad --tenants")?;
        if cfg.tenants == 0 {
            return Err(CliError::usage("--tenants must be at least 1"));
        }
    }
    if let Some(s) = flag(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(p) = flag(args, "--payload-bytes") {
        cfg.payload_bytes = p.parse().map_err(|_| "bad --payload-bytes")?;
    }
    if let Some(m) = flag(args, "--mix") {
        cfg.mix = MixWeights::parse(&m).ok_or_else(|| {
            CliError::usage(format!(
                "bad --mix '{m}' (want put:get:verify:scrub, e.g. 6:6:2:1)"
            ))
        })?;
    }
    if let Some(ms) = flag(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --timeout-ms")?;
        cfg.op_timeout = std::time::Duration::from_millis(ms.max(1));
    }
    if let Some(n) = flag(args, "--large-every") {
        // Every n-th PUT streams a large object through the chunked
        // protocol instead of a single frame (0 disables).
        cfg.large_every = n.parse().map_err(|_| "bad --large-every")?;
    }
    if let Some(b) = flag(args, "--large-bytes") {
        cfg.large_payload_bytes = b.parse().map_err(|_| "bad --large-bytes")?;
        if cfg.large_payload_bytes == 0 {
            return Err(CliError::usage("--large-bytes must be at least 1"));
        }
    }
    if let Some(c) = flag(args, "--chunk-bytes") {
        cfg.chunk_bytes = c.parse().map_err(|_| "bad --chunk-bytes")?;
        if cfg.chunk_bytes == 0 {
            return Err(CliError::usage("--chunk-bytes must be at least 1"));
        }
    }

    eprintln!(
        "loadgen: {} client(s) x {} op(s) over {} tenant(s) against {addr} (seed {})…",
        cfg.clients, cfg.ops_per_client, cfg.tenants, cfg.seed
    );
    let report = loadgen::run(&cfg);
    print!("{}", report.to_text());
    if args.iter().any(|a| a == "--shutdown") {
        let mut client = ServeClient::builder("loadgen")
            .connect(&addr)
            .map_err(|e| format!("shutdown connect: {e}"))?;
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown request: {e}"))?;
        println!("server asked to drain and exit");
    }
    if report.ok() {
        Ok(())
    } else {
        Err(CliError::Failure(format!(
            "loadgen campaign FAILED: {} failure(s)",
            report.failure_count
        )))
    }
}

fn cmd_bench(args: &[String]) -> CliResult {
    use daspos::bench::{self, BenchConfig};
    let mut cfg = BenchConfig::default();
    if let Some(e) = flag(args, "--events") {
        cfg.events = e.parse().map_err(|_| "bad --events")?;
    }
    if let Some(r) = flag(args, "--reps") {
        cfg.reps = r.parse().map_err(|_| "bad --reps")?;
    }
    if let Some(t) = flag(args, "--threads") {
        cfg.threads = t.parse().map_err(|_| "bad --threads")?;
    }
    if let Some(s) = flag(args, "--seed") {
        cfg.seed = s.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(m) = flag(args, "--metrics") {
        cfg.metrics = m
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if cfg.metrics.is_empty() {
            return Err("bad --metrics: expected comma-separated name substrings".into());
        }
    }
    let out = flag(args, "--out").unwrap_or_else(|| "BENCH_10.json".to_string());

    eprintln!(
        "bench: {} events x {} reps (threads {}, seed {})…",
        cfg.events, cfg.reps, cfg.threads, cfg.seed
    );
    let report = bench::run(&cfg).map_err(|e| e.to_string())?;
    for m in &report.metrics {
        let peak = match m.peak_alloc_bytes {
            Some(v) => format!("  peak {v} B"),
            None => String::new(),
        };
        println!(
            "  {:>18}: {:>10.1} ns/event  {:>12.0} events/s{peak}",
            m.name, m.median_ns_per_event, m.events_per_sec
        );
    }
    if let Some(s) = report.speedup("decode_streaming", "decode_batch") {
        println!("  streaming decode speedup over batch: {s:.2}x");
    }
    if let Some(s) = report.speedup("skim_streaming", "skim_batch") {
        println!("  streaming skim speedup over batch:   {s:.2}x");
    }
    if let Some(s) = report.speedup("columnar_skim", "skim_streaming") {
        println!("  columnar skim speedup over streaming: {s:.2}x");
    }
    if let Some(s) = report.speedup("columnar_decode_par", "columnar_decode") {
        println!("  parallel columnar decode speedup:    {s:.2}x");
    }
    if let Some(r) = report.bytes_ratio("columnar_encode_v2", "columnar_encode_v1") {
        println!(
            "  columnar v2 bytes-on-disk vs v1:     {r:.3}x ({:.1}% saved)",
            (1.0 - r) * 100.0
        );
    }
    if let Some(r) = report.bytes_ratio("vault_ec_put", "vault_put") {
        println!(
            "  erasure 4+2 bytes-on-backend vs 3-replica: {r:.3}x ({:.1}% saved)",
            (1.0 - r) * 100.0
        );
    }
    let regressions =
        bench::write_report(&report, std::path::Path::new(&out)).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!("  REGRESSION {r}");
        }
        if args.iter().any(|a| a == "--allow-regression") {
            eprintln!(
                "  {} regression(s) accepted by --allow-regression",
                regressions.len()
            );
        } else {
            return Err(CliError::Usage(format!(
                "{} metric(s) regressed >25% versus the previous BENCH_*.json \
                 (pass --allow-regression to accept)",
                regressions.len()
            )));
        }
    }
    Ok(())
}

fn cmd_vault(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("put") => vault_put(&args[1..]),
        Some("get") => vault_get(&args[1..]),
        Some("scrub") => vault_scan(&args[1..], true),
        Some("verify") => vault_scan(&args[1..], false),
        _ => Err(CliError::usage(
            "vault wants a subcommand: put | get | scrub | verify (try 'daspos help')",
        )),
    }
}

/// Parse `vault.meta`: `erasure k=<k> m=<m> backends=<n>`.
fn parse_vault_meta(text: &str) -> Option<(usize, usize, usize)> {
    let mut words = text.split_whitespace();
    if words.next()? != "erasure" {
        return None;
    }
    let (mut k, mut m, mut n) = (None, None, None);
    for word in words {
        let (name, value) = word.split_once('=')?;
        let value: usize = value.parse().ok()?;
        match name {
            "k" => k = Some(value),
            "m" => m = Some(value),
            "backends" => n = Some(value),
            _ => return None,
        }
    }
    match (k?, m?, n?) {
        (k, m, n) if k >= 1 && m >= 1 && n >= k + m => Some((k, m, n)),
        _ => None,
    }
}

/// Open (or create) the vault under `store`.
///
/// Two on-disk layouts exist: a replicated store is bare `replica-K`
/// subdirectories (one full copy each, the original layout); an erasure
/// store is a `vault.meta` geometry record plus `shard-K` subdirectories
/// (one `DPVS` shard per stripe each). `requested` is what the user's
/// flags asked for — opening an existing store with conflicting flags is
/// a usage error. `create` is the redundancy a fresh store is
/// initialised with (`None` refuses to create one).
fn open_vault(
    store: &str,
    requested: Option<Redundancy>,
    create: Option<Redundancy>,
    obs: Obs,
) -> Result<daspos::vault::Vault, CliError> {
    use daspos::vault::{DirBackend, Vault};
    use std::sync::Arc;
    let root = std::path::Path::new(store);
    let meta_path = root.join("vault.meta");

    // What the store already is, if anything.
    let existing: Option<(Redundancy, Vec<std::path::PathBuf>)> = if meta_path.is_file() {
        let text = std::fs::read_to_string(&meta_path)
            .map_err(|e| format!("cannot read '{}': {e}", meta_path.display()))?;
        let (k, m, n) = parse_vault_meta(&text).ok_or_else(|| {
            CliError::Failure(format!(
                "malformed vault.meta in '{store}' (want 'erasure k=K m=M backends=N')"
            ))
        })?;
        let dirs = (0..n).map(|i| root.join(format!("shard-{i}"))).collect();
        Some((Redundancy::Erasure { k, m }, dirs))
    } else {
        let mut replicas: Vec<std::path::PathBuf> = Vec::new();
        if root.is_dir() {
            let entries = std::fs::read_dir(root)
                .map_err(|e| format!("cannot read store '{store}': {e}"))?;
            for entry in entries.flatten() {
                let path = entry.path();
                let is_replica =
                    path.is_dir() && entry.file_name().to_string_lossy().starts_with("replica-");
                if is_replica {
                    replicas.push(path);
                }
            }
            replicas.sort();
        }
        if replicas.is_empty() {
            None
        } else {
            Some((Redundancy::Replicas(replicas.len()), replicas))
        }
    };

    let (redundancy, dirs) = match (existing, create) {
        (Some((layout, dirs)), _) => {
            if let Some(req) = requested {
                if req != layout {
                    return Err(CliError::usage(format!(
                        "'{store}' is already a {layout} vault — open it with matching \
                         flags (or none), or pick a fresh --store"
                    )));
                }
            }
            (layout, dirs)
        }
        (None, Some(Redundancy::Replicas(n))) => (
            Redundancy::Replicas(n),
            (0..n).map(|i| root.join(format!("replica-{i}"))).collect(),
        ),
        (None, Some(Redundancy::Erasure { k, m })) => {
            let n = k + m;
            std::fs::create_dir_all(root)
                .map_err(|e| format!("cannot create store '{store}': {e}"))?;
            std::fs::write(&meta_path, format!("erasure k={k} m={m} backends={n}\n"))
                .map_err(|e| format!("cannot write '{}': {e}", meta_path.display()))?;
            (
                Redundancy::Erasure { k, m },
                (0..n).map(|i| root.join(format!("shard-{i}"))).collect(),
            )
        }
        (None, None) => {
            return Err(CliError::Failure(format!(
                "'{store}' is not a vault store (no replica-* directories or vault.meta)"
            )))
        }
    };

    Vault::builder()
        .verifier(Arc::new(daspos::archive::ContainerVerifier))
        .with_obs(obs)
        .backends(
            dirs.iter()
                .map(|path| Arc::new(DirBackend::new(path)) as Arc<dyn StorageBackend>)
                .collect(),
        )
        .redundancy(redundancy)
        .build()
        .map_err(|e| CliError::Failure(e.to_string()))
}

fn vault_put(args: &[String]) -> CliResult {
    use daspos::vault::ObjectKind;
    let file = positional(args).ok_or("vault put needs a file")?;
    let store = flag(args, "--store").ok_or("vault put needs --store <dir>")?;
    let requested = redundancy_flags(args)?;
    let key = match flag(args, "--key") {
        Some(k) => k,
        None => std::path::Path::new(&file)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .ok_or("cannot derive a key from the file name; pass --key")?,
    };
    let payload =
        Bytes::from(std::fs::read(&file).map_err(|e| format!("cannot read '{file}': {e}"))?);
    let kind = match flag(args, "--kind") {
        Some(name) => ObjectKind::parse(&name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown kind '{name}' (one of: opaque, sealed-tier, container, \
                 conditions, columnar-aod)"
            ))
        })?,
        None => ObjectKind::sniff(&payload),
    };
    let create = Some(requested.unwrap_or(Redundancy::Replicas(3)));
    let vault = open_vault(&store, requested, create, Obs::disabled())?;
    vault.put(&key, kind, &payload).map_err(|e| e.to_string())?;
    match vault.redundancy() {
        Redundancy::Replicas(_) => println!(
            "stored '{key}' ({kind}, {} bytes) on {} replicas under {store}",
            payload.len(),
            vault.replica_count()
        ),
        Redundancy::Erasure { k, m } => println!(
            "striped '{key}' ({kind}, {} bytes) as {k}+{m} shards over {} backends under {store}",
            payload.len(),
            vault.replica_count()
        ),
    }
    Ok(())
}

fn vault_get(args: &[String]) -> CliResult {
    let key = positional(args).ok_or("vault get needs a key")?;
    let store = flag(args, "--store").ok_or("vault get needs --store <dir>")?;
    let out = flag(args, "--out").ok_or("vault get needs --out <file>")?;
    let vault = open_vault(&store, None, None, Obs::disabled())?;
    let (kind, payload) = vault.get(&key).map_err(|e| e.to_string())?;
    std::fs::write(&out, &payload).map_err(|e| format!("cannot write '{out}': {e}"))?;
    println!(
        "recovered '{key}' ({kind}, {} bytes) to {out}",
        payload.len()
    );
    Ok(())
}

fn vault_scan(args: &[String], repair: bool) -> CliResult {
    use daspos::faultlab::{self, ArtifactClass, CampaignConfig};
    if args.iter().any(|a| a == "--selftest") {
        if !repair {
            return Err(CliError::usage("--selftest only applies to 'vault scrub'"));
        }
        // --erasure k,m drills the sharded vault (the vault-shard fault
        // class); with no redundancy flag the drill is the original
        // single-replica-corruption campaign.
        let class = match redundancy_flags(args)? {
            None => ArtifactClass::VaultReplica,
            Some(Redundancy::Erasure {
                k: faultlab::SHARD_K,
                m: faultlab::SHARD_M,
            }) => ArtifactClass::VaultShard,
            Some(other) => {
                return Err(CliError::usage(format!(
                    "the scrub drill supports --erasure {},{} (the fixture geometry) \
                     or no redundancy flag, not '{other}'",
                    faultlab::SHARD_K,
                    faultlab::SHARD_M
                )))
            }
        };
        let mut cfg = CampaignConfig::default();
        if let Some(seed) = flag(args, "--seed") {
            cfg.master_seed = seed.parse().map_err(|_| "bad --seed")?;
        }
        if let Some(m) = flag(args, "--mutations") {
            cfg.mutations_per_class = m.parse().map_err(|_| "bad --mutations")?;
        }
        if let Some(e) = flag(args, "--events") {
            cfg.events = e.parse().map_err(|_| "bad --events")?;
        }
        match class {
            ArtifactClass::VaultShard => eprintln!(
                "vault scrub drill: {} seeded shard-stripe mutations over a {}+{} \
                 erasure vault (seed {})…",
                cfg.mutations_per_class,
                faultlab::SHARD_K,
                faultlab::SHARD_M,
                cfg.master_seed
            ),
            _ => eprintln!(
                "vault scrub drill: {} seeded single-replica mutations (seed {})…",
                cfg.mutations_per_class, cfg.master_seed
            ),
        }
        let report = faultlab::run_campaign_for(&cfg, &[class], &Obs::disabled())
            .map_err(|e| e.to_string())?;
        print!("{}", report.to_text());
        return if report.passed() {
            println!("vault scrub drill PASSED — every mutation detected and repaired");
            Ok(())
        } else {
            Err(CliError::Failure(format!(
                "{} mutation(s) survived unrepaired",
                report.total_violations()
            )))
        };
    }

    let store = flag(args, "--store").ok_or("vault scrub/verify needs --store <dir>")?;
    let threads: usize = flag(args, "--threads")
        .unwrap_or_else(|| "1".to_string())
        .parse()
        .map_err(|_| "bad --threads")?;
    if threads == 0 {
        return Err(CliError::usage("--threads must be at least 1"));
    }
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let obs = Obs::metrics_only(registry.clone());
    let vault = open_vault(&store, None, None, obs.clone())?;
    let report = if threads > 1 {
        let opts = ExecOptions::new().threads(threads).with_obs(obs);
        if repair {
            daspos::vaultops::scrub_parallel(&vault, &opts)
        } else {
            daspos::vaultops::verify_parallel(&vault, &opts)
        }
    } else if repair {
        vault.scrub()
    } else {
        vault.verify()
    }
    .map_err(|e| e.to_string())?;
    println!("{}", report.to_text());
    let snapshot = registry.snapshot();
    println!(
        "counters: checked {} corrupt {} repaired {} rebuilt {} unrecoverable {} \
         backend-retries {}",
        snapshot.counter("vault.scrub.checked"),
        snapshot.counter("vault.scrub.corrupt"),
        snapshot.counter("vault.scrub.repaired"),
        snapshot.counter("vault.scrub.rebuilt"),
        snapshot.counter("vault.scrub.unrecoverable"),
        snapshot.counter("vault.backend.retries"),
    );
    if report.clean() {
        Ok(())
    } else {
        Err(CliError::Failure(if repair {
            "corruption remains unrepaired".to_string()
        } else {
            "vault has unrepaired damage (run 'vault scrub' to repair)".to_string()
        }))
    }
}

fn cmd_maturity() -> CliResult {
    use daspos_metadata::maturity::MaturityReport;
    use daspos_metadata::presets::interview_for;
    use daspos_metadata::sharing::PolicyStatus;
    println!(
        "{:>8} {:>10} {:>12} {:>13} {:>8}  policy",
        "expt", "data-mgmt", "description", "preservation", "sharing"
    );
    for name in ["alice", "atlas", "cms", "lhcb"] {
        let policy = PolicyStatus::report_2014(name);
        let r = MaturityReport::assess(&interview_for(name), policy);
        println!(
            "{name:>8} {:>10} {:>12} {:>13} {:>8}  {}",
            r.data_management.to_string(),
            r.description.to_string(),
            r.preservation.to_string(),
            r.sharing.to_string(),
            policy.describe()
        );
    }
    Ok(())
}
