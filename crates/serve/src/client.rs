//! The blocking protocol client used by `loadgen`, the CLI and tests.

use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use daspos_vault::ObjectKind;

use crate::proto::{
    decode_response, encode_request, validate_tenant, Op, Request, Response, Status,
};
use crate::server::ServeError;
use crate::wire::{self, ReadFrame};

/// Default per-response wait before a client declares the server hung.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// One tenant's connection to a preservation server.
pub struct ServeClient {
    stream: TcpStream,
    tenant: String,
}

impl ServeClient {
    /// Connect to `addr` as `tenant` with the default op timeout.
    pub fn connect(addr: &str, tenant: &str) -> Result<ServeClient, ServeError> {
        ServeClient::connect_with_timeout(addr, tenant, DEFAULT_OP_TIMEOUT)
    }

    /// Connect with an explicit op timeout (tests drive this down to
    /// catch hangs fast).
    pub fn connect_with_timeout(
        addr: &str,
        tenant: &str,
        timeout: Duration,
    ) -> Result<ServeClient, ServeError> {
        validate_tenant(tenant)?;
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(ServeClient {
            stream,
            tenant: tenant.to_string(),
        })
    }

    /// The tenant this connection operates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Send one request and wait for its response. Transport and
    /// protocol failures are errors; non-OK *statuses* are data (the
    /// caller decides whether `NotFound` or `Overloaded` is exceptional).
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        wire::write_frame(&mut self.stream, &encode_request(req))?;
        match wire::read_frame(&mut self.stream)? {
            ReadFrame::Sealed(sealed) => Ok(decode_response(&sealed)?),
            ReadFrame::Eof => Err(ServeError::Io(
                "server closed the connection before responding".to_string(),
            )),
            ReadFrame::Idle => Err(ServeError::Io(
                "timed out waiting for a response".to_string(),
            )),
        }
    }

    /// Store `payload` under this tenant's `key`.
    pub fn put(
        &mut self,
        key: &str,
        kind: ObjectKind,
        payload: &Bytes,
    ) -> Result<Response, ServeError> {
        self.request(&Request {
            op: Op::Put,
            kind,
            tenant: self.tenant.clone(),
            key: key.to_string(),
            payload: payload.clone(),
        })
    }

    /// Fetch the object under this tenant's `key`.
    pub fn get(&mut self, key: &str) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request(&Request::control(Op::Get, &tenant, key))
    }

    /// Integrity-check one object (empty `key`: the whole vault).
    pub fn verify(&mut self, key: &str) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request(&Request::control(Op::Verify, &tenant, key))
    }

    /// Trigger a repairing scrub of the whole vault.
    pub fn scrub(&mut self) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request(&Request::control(Op::Scrub, &tenant, ""))
    }

    /// Fetch server statistics.
    pub fn stat(&mut self) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request(&Request::control(Op::Stat, &tenant, ""))
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request(&Request::control(Op::Shutdown, &tenant, ""))
    }
}

/// Promote a non-OK status to a typed error (`Overloaded` keeps its own
/// variant so callers can dispatch a retry on it).
pub fn expect_ok(resp: Response) -> Result<Response, ServeError> {
    match resp.status {
        Status::Ok => Ok(resp),
        Status::Overloaded => Err(ServeError::Overloaded {
            op: resp.op,
            detail: resp.detail,
        }),
        status => Err(ServeError::Remote {
            op: resp.op,
            status,
            detail: resp.detail,
        }),
    }
}
