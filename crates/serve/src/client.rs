//! The blocking protocol client used by `loadgen`, the CLI and tests.
//!
//! Sessions are configured through [`ServeClient::builder`]: tenant,
//! per-op timeout, an Overloaded retry policy, and the chunk size used
//! by streamed transfers. The old `connect`/`connect_with_timeout`
//! constructors survive as deprecated shims with byte-identical
//! behavior (one attempt, default chunk size).
//!
//! Objects larger than one frame travel through [`ServeClient::put_stream`]
//! / [`ServeClient::get_stream`]: the client holds one chunk at a time
//! and folds the whole-object fnv64 digest incrementally, so a 64 MiB
//! round trip peaks at O(chunk) memory on this side too.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;
use daspos_vault::ObjectKind;

use crate::proto::{
    decode_response, encode_request, validate_tenant, Op, Request, Response, Status,
    MAX_CHUNK_BYTES,
};
use crate::server::ServeError;
use crate::stream::{self, fnv64_fold, FNV_BASIS};
use crate::wire::{self, ReadFrame};

/// Default per-response wait before a client declares the server hung.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// Default chunk size for streamed transfers (4 MiB).
pub const DEFAULT_CLIENT_CHUNK: usize = crate::proto::DEFAULT_CHUNK_BYTES;

/// How a client reacts to `Overloaded` responses: up to `attempts`
/// tries total, sleeping `backoff` between them. The default (one
/// attempt) surfaces backpressure to the caller untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries per op (minimum 1).
    pub attempts: u32,
    /// Sleep between tries.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::from_micros(200),
        }
    }
}

/// Builder for a [`ServeClient`] session.
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    tenant: String,
    op_timeout: Duration,
    retry: RetryPolicy,
    chunk_bytes: usize,
}

impl ClientBuilder {
    /// Per-response wait before the client declares the server hung
    /// (tests drive this down to catch hangs fast).
    pub fn op_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.op_timeout = timeout;
        self
    }

    /// Retry `Overloaded` responses instead of surfacing them.
    pub fn retry(mut self, retry: RetryPolicy) -> ClientBuilder {
        self.retry = retry;
        self
    }

    /// Chunk size for streamed transfers (validated at connect time:
    /// 1..=[`MAX_CHUNK_BYTES`]).
    pub fn chunk_bytes(mut self, n: usize) -> ClientBuilder {
        self.chunk_bytes = n;
        self
    }

    /// Validate the session settings and connect.
    pub fn connect(self, addr: &str) -> Result<ServeClient, ServeError> {
        validate_tenant(&self.tenant)?;
        if self.chunk_bytes == 0 || self.chunk_bytes > MAX_CHUNK_BYTES {
            return Err(ServeError::Config(format!(
                "stream chunk size must be 1..={MAX_CHUNK_BYTES} bytes, got {}",
                self.chunk_bytes
            )));
        }
        let stream = TcpStream::connect(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.op_timeout))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        stream
            .set_write_timeout(Some(self.op_timeout))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(ServeClient {
            stream,
            tenant: self.tenant,
            retry: self.retry,
            chunk_bytes: self.chunk_bytes,
        })
    }
}

/// One tenant's connection to a preservation server.
pub struct ServeClient {
    stream: TcpStream,
    tenant: String,
    retry: RetryPolicy,
    chunk_bytes: usize,
}

impl ServeClient {
    /// Start building a session for `tenant` (validated at connect).
    pub fn builder(tenant: &str) -> ClientBuilder {
        ClientBuilder {
            tenant: tenant.to_string(),
            op_timeout: DEFAULT_OP_TIMEOUT,
            retry: RetryPolicy::default(),
            chunk_bytes: DEFAULT_CLIENT_CHUNK,
        }
    }

    /// Connect to `addr` as `tenant` with the default op timeout.
    #[deprecated(note = "use ServeClient::builder(tenant).connect(addr)")]
    pub fn connect(addr: &str, tenant: &str) -> Result<ServeClient, ServeError> {
        ServeClient::builder(tenant).connect(addr)
    }

    /// Connect with an explicit op timeout.
    #[deprecated(note = "use ServeClient::builder(tenant).op_timeout(..).connect(addr)")]
    pub fn connect_with_timeout(
        addr: &str,
        tenant: &str,
        timeout: Duration,
    ) -> Result<ServeClient, ServeError> {
        ServeClient::builder(tenant).op_timeout(timeout).connect(addr)
    }

    /// The tenant this connection operates as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The chunk size streamed transfers use on this session.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Send one request and wait for its response. Transport and
    /// protocol failures are errors; non-OK *statuses* are data (the
    /// caller decides whether `NotFound` or `Overloaded` is exceptional).
    /// This is the raw primitive — it never retries.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        wire::write_frame(&mut self.stream, &encode_request(req))?;
        match wire::read_frame(&mut self.stream)? {
            ReadFrame::Sealed(sealed) => Ok(decode_response(&sealed)?),
            ReadFrame::Eof => Err(ServeError::Io(
                "server closed the connection before responding".to_string(),
            )),
            ReadFrame::Idle => Err(ServeError::Io(
                "timed out waiting for a response".to_string(),
            )),
        }
    }

    /// [`request`](ServeClient::request) plus the session's
    /// [`RetryPolicy`] on `Overloaded` responses.
    fn request_retrying(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut attempt = 1;
        loop {
            let resp = self.request(req)?;
            if resp.status == Status::Overloaded && attempt < self.retry.attempts.max(1) {
                attempt += 1;
                std::thread::sleep(self.retry.backoff);
                continue;
            }
            return Ok(resp);
        }
    }

    /// Store `payload` under this tenant's `key`.
    pub fn put(
        &mut self,
        key: &str,
        kind: ObjectKind,
        payload: &Bytes,
    ) -> Result<Response, ServeError> {
        self.request_retrying(&Request {
            op: Op::Put,
            kind,
            tenant: self.tenant.clone(),
            key: key.to_string(),
            payload: payload.clone(),
        })
    }

    /// Fetch the object under this tenant's `key`.
    pub fn get(&mut self, key: &str) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request_retrying(&Request::control(Op::Get, &tenant, key))
    }

    /// Integrity-check one object (empty `key`: the whole vault).
    pub fn verify(&mut self, key: &str) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request_retrying(&Request::control(Op::Verify, &tenant, key))
    }

    /// Trigger a repairing scrub of the whole vault.
    pub fn scrub(&mut self) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request_retrying(&Request::control(Op::Scrub, &tenant, ""))
    }

    /// Fetch server statistics.
    pub fn stat(&mut self) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request_retrying(&Request::control(Op::Stat, &tenant, ""))
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> Result<Response, ServeError> {
        let tenant = self.tenant.clone();
        self.request(&Request::control(Op::Shutdown, &tenant, ""))
    }

    /// Stream everything `reader` yields to the server under `key`,
    /// one chunk frame at a time: `PutBegin`, N× `PutChunk`, then a
    /// `PutCommit` carrying the chunk count, total length and fnv64
    /// digest folded while reading. Peak memory here is one chunk.
    ///
    /// A non-OK response mid-stream aborts the stream (best effort) and
    /// is returned as data, like every other status.
    pub fn put_stream(
        &mut self,
        key: &str,
        kind: ObjectKind,
        reader: &mut dyn Read,
    ) -> Result<Response, ServeError> {
        let chunk_bytes = self.chunk_bytes;
        let begin = self.request_retrying(&Request {
            op: Op::PutBegin,
            kind,
            tenant: self.tenant.clone(),
            key: key.to_string(),
            payload: stream::encode_begin(chunk_bytes as u32),
        })?;
        if begin.status != Status::Ok {
            return Ok(begin);
        }
        let id: u64 = begin.detail.parse().map_err(|_| {
            ServeError::Verification(format!(
                "server answered PutBegin with unparsable stream id {:?}",
                begin.detail
            ))
        })?;

        let mut buf = vec![0u8; chunk_bytes];
        let mut fold = FNV_BASIS;
        let mut total_len = 0u64;
        let mut seq = 0u32;
        loop {
            // Fill a whole chunk before framing it; a short fill means
            // the reader hit EOF.
            let mut n = 0;
            while n < buf.len() {
                match reader.read(&mut buf[n..]) {
                    Ok(0) => break,
                    Ok(k) => n += k,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        self.try_abort(id);
                        return Err(ServeError::Io(format!("stream source failed: {e}")));
                    }
                }
            }
            if n == 0 {
                break;
            }
            let resp = self.request_retrying(&Request {
                op: Op::PutChunk,
                kind,
                tenant: self.tenant.clone(),
                key: id.to_string(),
                payload: stream::encode_chunk(seq, &buf[..n]),
            })?;
            if resp.status != Status::Ok {
                self.try_abort(id);
                return Ok(resp);
            }
            fold = fnv64_fold(fold, &buf[..n]);
            total_len += n as u64;
            seq += 1;
            if n < buf.len() {
                break;
            }
        }
        self.request_retrying(&Request {
            op: Op::PutCommit,
            kind,
            tenant: self.tenant.clone(),
            key: id.to_string(),
            payload: stream::encode_commit(&stream::StreamInfo {
                total_len,
                chunk_size: chunk_bytes as u32,
                chunks: seq,
                digest: fold,
            }),
        })
    }

    /// [`put_stream`](ServeClient::put_stream) over an in-memory
    /// payload — the drop-in replacement for [`put`](ServeClient::put)
    /// when the object may exceed one frame.
    pub fn put_chunked(
        &mut self,
        key: &str,
        kind: ObjectKind,
        payload: &Bytes,
    ) -> Result<Response, ServeError> {
        let mut slice: &[u8] = payload;
        self.put_stream(key, kind, &mut slice)
    }

    /// Stream the object under `key` into `out`, one chunk frame at a
    /// time, verifying the whole-object fnv64 digest the server
    /// declared at `GetBegin`. On success returns that `GetBegin`
    /// response (detail = object kind, payload = the stream geometry);
    /// a non-OK status comes back as data with nothing written.
    pub fn get_stream(
        &mut self,
        key: &str,
        out: &mut dyn Write,
    ) -> Result<Response, ServeError> {
        let chunk_bytes = self.chunk_bytes;
        let tenant = self.tenant.clone();
        let begin = self.request_retrying(&Request {
            op: Op::GetBegin,
            kind: ObjectKind::Opaque,
            tenant: tenant.clone(),
            key: key.to_string(),
            payload: stream::encode_begin(chunk_bytes as u32),
        })?;
        if begin.status != Status::Ok {
            return Ok(begin);
        }
        let info = stream::decode_info(&begin.payload)?;
        let mut fold = FNV_BASIS;
        let mut written = 0u64;
        for seq in 0..info.chunks {
            let resp = self.request_retrying(&Request {
                op: Op::GetChunk,
                kind: ObjectKind::Opaque,
                tenant: tenant.clone(),
                key: key.to_string(),
                payload: stream::encode_get_chunk(seq, info.chunk_size),
            })?;
            if resp.status != Status::Ok {
                return Ok(resp);
            }
            let (got_seq, data) = stream::decode_chunk(&resp.payload)?;
            let expected = (info.total_len - written).min(u64::from(info.chunk_size));
            if got_seq != seq || data.len() as u64 != expected {
                return Err(ServeError::Verification(format!(
                    "chunk {seq}: got seq {got_seq}, {} bytes (expected {expected})",
                    data.len()
                )));
            }
            fold = fnv64_fold(fold, &data);
            out.write_all(&data)
                .map_err(|e| ServeError::Io(format!("stream sink failed: {e}")))?;
            written += data.len() as u64;
        }
        if written != info.total_len || fold != info.digest {
            return Err(ServeError::Verification(format!(
                "streamed get of {key:?}: {written} bytes folded to {fold:016x}, \
                 server declared {} bytes / {:016x}",
                info.total_len, info.digest
            )));
        }
        Ok(begin)
    }

    /// [`get_stream`](ServeClient::get_stream) buffered into a
    /// [`Response`] payload — convenient for tests and loadgen, which
    /// want the bytes for deep verification anyway. (This buffers the
    /// whole object; real consumers should stream to a sink.)
    pub fn get_streamed_bytes(&mut self, key: &str) -> Result<Response, ServeError> {
        let mut buf = Vec::new();
        let resp = self.get_stream(key, &mut buf)?;
        if resp.status != Status::Ok {
            return Ok(resp);
        }
        Ok(Response {
            op: resp.op,
            status: Status::Ok,
            detail: resp.detail,
            payload: Bytes::from(buf),
        })
    }

    /// Best-effort stream abort after a mid-stream failure; the server
    /// sweeps orphans at the next commit to the key anyway.
    fn try_abort(&mut self, id: u64) {
        let tenant = self.tenant.clone();
        let _ = self.request(&Request::control(Op::PutAbort, &tenant, &id.to_string()));
    }
}

/// Promote a non-OK status to a typed error (`Overloaded` and
/// `QuotaExceeded` keep their own variants so callers can dispatch on
/// backpressure vs. budget).
pub fn expect_ok(resp: Response) -> Result<Response, ServeError> {
    match resp.status {
        Status::Ok => Ok(resp),
        Status::Overloaded => Err(ServeError::Overloaded {
            op: resp.op,
            detail: resp.detail,
        }),
        Status::QuotaExceeded => Err(ServeError::QuotaExceeded {
            op: resp.op,
            detail: resp.detail,
        }),
        status => Err(ServeError::Remote {
            op: resp.op,
            status,
            detail: resp.detail,
        }),
    }
}
