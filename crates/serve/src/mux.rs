//! Nonblocking per-connection framing for the worker-pool server.
//!
//! Each accepted socket becomes a [`Conn`]: a nonblocking stream plus an
//! accumulation buffer that survives between worker visits. A worker
//! drains whatever bytes are readable *right now* ([`Conn::fill`]),
//! pops any complete frames ([`Conn::next_frame`]), and puts the
//! connection back on the shared ready queue — a connection that is
//! idle, or mid-frame on a slow link, costs the pool nothing but its
//! buffer. This is what lets a 4-thread pool hold hundreds of analyst
//! connections where the old thread-per-connection front-end pinned one
//! OS thread each.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use bytes::Bytes;

use crate::proto::{ProtoError, MAX_FRAME_BYTES};

/// Consecutive `WouldBlock` naps tolerated while writing one response
/// before the peer is declared dead (×[`WRITE_NAP`] ≈ 10 s).
const WRITE_STALL_LIMIT: u32 = 100_000;

/// Nap between write retries on a full socket buffer.
const WRITE_NAP: Duration = Duration::from_micros(100);

/// One multiplexed connection: a nonblocking socket plus the partial
/// frame bytes read so far.
pub(crate) struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Adopt an accepted socket into the multiplexed set.
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Drain readable bytes into the frame buffer without ever blocking.
    /// Returns `(made_progress, closed)`. Reading stops once a full
    /// maximal frame is buffered so a fire-hose peer cannot run the
    /// buffer past one frame cap of lookahead.
    pub(crate) fn fill(&mut self, scratch: &mut [u8]) -> (bool, bool) {
        let mut progress = false;
        loop {
            if self.buf.len() > MAX_FRAME_BYTES + 4 {
                break;
            }
            match self.stream.read(scratch) {
                Ok(0) => return (progress, true),
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return (progress, true),
            }
        }
        (progress, false)
    }

    /// Pop the next complete sealed frame body, if one is fully
    /// buffered. A hostile length prefix (over the frame cap) is a
    /// protocol error — the caller answers once and hangs up, exactly
    /// like the blocking reader did.
    pub(crate) fn next_frame(&mut self) -> Result<Option<Bytes>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let declared =
            u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if declared > MAX_FRAME_BYTES {
            return Err(ProtoError::Oversized {
                declared,
                limit: MAX_FRAME_BYTES,
            });
        }
        if self.buf.len() < 4 + declared {
            return Ok(None);
        }
        let sealed = Bytes::copy_from_slice(&self.buf[4..4 + declared]);
        self.buf.drain(..4 + declared);
        Ok(Some(sealed))
    }

    /// Write one whole response frame, riding out `WouldBlock` with
    /// short naps (the socket is nonblocking). At most one response
    /// chunk is ever in flight per connection, so this bounds a worker's
    /// stall on a non-draining peer the same way the old blocking write
    /// timeout did.
    pub(crate) fn write_frame(&mut self, frame: &Bytes) -> std::io::Result<()> {
        let mut off = 0usize;
        let mut stalls = 0u32;
        while off < frame.len() {
            match self.stream.write(&frame[off..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "peer stopped accepting bytes mid-frame",
                    ))
                }
                Ok(n) => {
                    off += n;
                    stalls = 0;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    stalls += 1;
                    if stalls >= WRITE_STALL_LIMIT {
                        return Err(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "peer stalled draining a response",
                        ));
                    }
                    std::thread::sleep(WRITE_NAP);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn partial_frames_accumulate_across_fills() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted).unwrap();
        let mut scratch = vec![0u8; 4096];

        let body = b"sealed-bytes";
        let mut wire = (body.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(body);

        // Deliver the frame one byte at a time: every prefix parse must
        // say "not yet" without consuming anything.
        for (i, b) in wire.iter().enumerate() {
            peer.write_all(&[*b]).unwrap();
            peer.flush().unwrap();
            // Wait for the byte to arrive (loopback is fast but async).
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                let (progress, closed) = conn.fill(&mut scratch);
                assert!(!closed);
                if progress || std::time::Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            let got = conn.next_frame().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame complete too early at byte {i}");
            } else {
                assert_eq!(got.unwrap().as_slice(), body);
            }
        }
    }

    #[test]
    fn hostile_length_prefix_is_a_protocol_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::new(accepted).unwrap();
        let mut scratch = vec![0u8; 4096];

        peer.write_all(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes())
            .unwrap();
        peer.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while conn.buf.len() < 4 && std::time::Instant::now() < deadline {
            conn.fill(&mut scratch);
            std::thread::sleep(Duration::from_micros(50));
        }
        assert!(matches!(
            conn.next_frame(),
            Err(ProtoError::Oversized { .. })
        ));
    }
}
