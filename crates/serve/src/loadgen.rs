//! Deterministic concurrent load generation against a running server.
//!
//! `loadgen` simulates a community of analysts: N client threads, each
//! with its own connection, its own tenant (drawn round-robin from a
//! configurable tenant pool so namespaces are shared *and* disjoint),
//! and its own seeded RNG driving a weighted put/get/verify/scrub mix.
//! Every client remembers the exact bytes of every PUT it issued and
//! **deep-verifies** every GET against them — byte identity, not just a
//! clean status — so a server that serves corrupt data fails the
//! campaign even when every frame seal checks out. `Overloaded`
//! responses are retried with backoff and counted, never dropped.
//!
//! The report carries per-op p50/p99 latencies and aggregate throughput;
//! the bench trajectory (`serve_put`/`serve_get`/`serve_mixed`) is
//! measured through the same client machinery.

use std::time::{Duration, Instant};

use bytes::Bytes;
use daspos_vault::ObjectKind;
use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

use crate::client::{expect_ok, ServeClient};
use crate::proto::{Op, Status};
use crate::server::ServeError;

/// SplitMix64 — the same per-index stream derivation faultlab uses, so
/// client streams are independent functions of (campaign seed, client).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Relative weights of the op mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixWeights {
    /// Weight of PUT ops.
    pub put: u32,
    /// Weight of GET ops (deep-verified).
    pub get: u32,
    /// Weight of per-object VERIFY ops.
    pub verify: u32,
    /// Weight of whole-vault SCRUB ops.
    pub scrub: u32,
}

impl Default for MixWeights {
    /// The "analyst" mix: mostly deposits and retrievals, occasional
    /// integrity checks, rare scrubs.
    fn default() -> MixWeights {
        MixWeights {
            put: 6,
            get: 6,
            verify: 2,
            scrub: 1,
        }
    }
}

impl MixWeights {
    /// Parse `put:get:verify:scrub`, e.g. `"4:8:2:1"`.
    pub fn parse(s: &str) -> Option<MixWeights> {
        let parts: Vec<u32> = s.split(':').map(|p| p.trim().parse().ok()).collect::<Option<_>>()?;
        if parts.len() != 4 || parts.iter().all(|&w| w == 0) {
            return None;
        }
        Some(MixWeights {
            put: parts[0],
            get: parts[1],
            verify: parts[2],
            scrub: parts[3],
        })
    }

    fn total(&self) -> u32 {
        self.put + self.get + self.verify + self.scrub
    }

    fn pick(&self, rng: &mut StdRng) -> Op {
        let mut roll = rng.gen_range(0..self.total());
        for (op, weight) in [
            (Op::Put, self.put),
            (Op::Get, self.get),
            (Op::Verify, self.verify),
            (Op::Scrub, self.scrub),
        ] {
            if roll < weight {
                return op;
            }
            roll -= weight;
        }
        Op::Put
    }
}

/// A load campaign's shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent simulated analysts.
    pub clients: usize,
    /// Ops each client issues.
    pub ops_per_client: usize,
    /// Tenant namespaces the clients are spread over (round-robin), so
    /// some clients share a namespace and some have it to themselves.
    pub tenants: usize,
    /// Campaign seed; same seed, same op streams.
    pub seed: u64,
    /// Bytes per PUT payload.
    pub payload_bytes: usize,
    /// Every Nth PUT becomes a *streamed* large-object PUT of
    /// [`large_payload_bytes`](LoadgenConfig::large_payload_bytes)
    /// (0 disables the large-object traffic entirely).
    pub large_every: usize,
    /// Bytes per streamed large-object PUT.
    pub large_payload_bytes: usize,
    /// Chunk size the clients stream with.
    pub chunk_bytes: usize,
    /// Op mix weights.
    pub mix: MixWeights,
    /// Per-response client timeout.
    pub op_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: String::new(),
            clients: 8,
            ops_per_client: 32,
            tenants: 4,
            seed: 2013,
            payload_bytes: 256,
            large_every: 0,
            large_payload_bytes: 256 * 1024,
            chunk_bytes: 64 * 1024,
            mix: MixWeights::default(),
            op_timeout: Duration::from_secs(10),
        }
    }
}

/// Latency summary for one op class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Completed ops of this class.
    pub count: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl OpStats {
    /// Summarize raw per-op latencies (the bench trajectory feeds its
    /// own measured loops through this, so percentiles are computed one
    /// way everywhere).
    pub fn from_latencies(mut ns: Vec<u64>) -> OpStats {
        ns.sort_unstable();
        OpStats {
            count: ns.len() as u64,
            p50_ns: percentile(&ns, 0.50),
            p99_ns: percentile(&ns, 0.99),
        }
    }
}

/// The aggregated outcome of a load campaign.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Clients that ran.
    pub clients: usize,
    /// Ops completed (across all clients, retries not counted).
    pub ops_total: u64,
    /// Wall-clock campaign duration in nanoseconds.
    pub elapsed_ns: u64,
    /// PUT latency summary.
    pub puts: OpStats,
    /// GET latency summary.
    pub gets: OpStats,
    /// VERIFY latency summary.
    pub verifies: OpStats,
    /// SCRUB latency summary.
    pub scrubs: OpStats,
    /// Streamed large-object PUT latency summary (begin→commit, whole
    /// stream).
    pub stream_puts: OpStats,
    /// Streamed large-object GET latency summary (begin→last chunk,
    /// deep-verified).
    pub stream_gets: OpStats,
    /// All ops combined.
    pub mixed: OpStats,
    /// `Overloaded` responses absorbed by retry.
    pub overloaded_retries: u64,
    /// Total failures (verification mismatches, unexpected statuses,
    /// transport errors).
    pub failure_count: u64,
    /// The first few failure descriptions (capped).
    pub failures: Vec<String>,
    /// Aggregate throughput over the campaign wall clock.
    pub throughput_ops_per_sec: f64,
}

/// Cap on retained failure descriptions.
const MAX_FAILURE_SAMPLES: usize = 16;

impl LoadgenReport {
    /// True when every op completed with its expected status and every
    /// GET was byte-identical to the client's own prior PUT.
    pub fn ok(&self) -> bool {
        self.failure_count == 0
    }

    /// Multi-line human-readable summary.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "loadgen: {} clients, {} ops in {:.1} ms ({:.0} ops/s), {} overloaded retries\n",
            self.clients,
            self.ops_total,
            self.elapsed_ns as f64 / 1e6,
            self.throughput_ops_per_sec,
            self.overloaded_retries,
        );
        for (name, st) in [
            ("put", &self.puts),
            ("get", &self.gets),
            ("verify", &self.verifies),
            ("scrub", &self.scrubs),
            ("sput", &self.stream_puts),
            ("sget", &self.stream_gets),
            ("mixed", &self.mixed),
        ] {
            if st.count == 0 && (name == "sput" || name == "sget") {
                continue;
            }
            s.push_str(&format!(
                "  {name:<6} n={:<6} p50={:>9} ns  p99={:>9} ns\n",
                st.count, st.p50_ns, st.p99_ns
            ));
        }
        if self.ok() {
            s.push_str("  verification: all GETs byte-identical, zero failures\n");
        } else {
            s.push_str(&format!("  FAILURES: {}\n", self.failure_count));
            for f in &self.failures {
                s.push_str(&format!("    - {f}\n"));
            }
        }
        s
    }
}

/// Latency bucket an op lands in (streamed transfers get their own
/// buckets, separate from the single-frame ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LatClass {
    Put,
    Get,
    Verify,
    Scrub,
    StreamPut,
    StreamGet,
}

struct ClientOutcome {
    latencies: Vec<(LatClass, u64)>,
    overloaded_retries: u64,
    failures: Vec<String>,
    failure_count: u64,
}

/// Issue one request, absorbing `Overloaded` with linear backoff.
fn with_backpressure(
    client: &mut ServeClient,
    retries: &mut u64,
    f: impl Fn(&mut ServeClient) -> Result<crate::proto::Response, ServeError>,
) -> Result<crate::proto::Response, ServeError> {
    // Generous: a saturated 1-core box under 64 clients can queue for a
    // while, but progress is guaranteed once the gate frees a slot.
    for _ in 0..100_000 {
        let resp = f(client)?;
        if resp.status != Status::Overloaded {
            return Ok(resp);
        }
        *retries += 1;
        std::thread::sleep(Duration::from_micros(200));
    }
    Err(ServeError::Io("overloaded retry budget exhausted".to_string()))
}

fn run_client(cfg: &LoadgenConfig, idx: usize) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(cfg.ops_per_client),
        overloaded_retries: 0,
        failures: Vec::new(),
        failure_count: 0,
    };
    fn fail(out: &mut ClientOutcome, msg: String) {
        out.failure_count += 1;
        if out.failures.len() < MAX_FAILURE_SAMPLES {
            out.failures.push(msg);
        }
    }
    let tenant = format!("tenant-{:02}", idx % cfg.tenants.max(1));
    let mut client = match ServeClient::builder(&tenant)
        .op_timeout(cfg.op_timeout)
        .chunk_bytes(cfg.chunk_bytes.max(1))
        .connect(&cfg.addr)
    {
        Ok(c) => c,
        Err(e) => {
            fail(&mut out, format!("client {idx}: connect: {e}"));
            return out;
        }
    };
    let mut rng = StdRng::seed_from_u64(mix(cfg.seed ^ mix(idx as u64)));
    // (key, payload, streamed?) — streamed objects are re-fetched with
    // the chunked GET and deep-verified the same way.
    let mut stored: Vec<(String, Bytes, bool)> = Vec::new();
    let mut puts_issued = 0usize;

    for n in 0..cfg.ops_per_client {
        let mut op = cfg.mix.pick(&mut rng);
        if stored.is_empty() && matches!(op, Op::Get | Op::Verify) {
            op = Op::Put;
        }
        let mut class = match op {
            Op::Get => LatClass::Get,
            Op::Verify => LatClass::Verify,
            Op::Scrub => LatClass::Scrub,
            _ => LatClass::Put,
        };
        let started = Instant::now();
        let result: Result<(), String> = match op {
            Op::Put => {
                puts_issued += 1;
                let large = cfg.large_every > 0 && puts_issued.is_multiple_of(cfg.large_every);
                let key = format!("c{idx:03}-k{n:04}.bin");
                let bytes = if large {
                    cfg.large_payload_bytes
                } else {
                    cfg.payload_bytes
                };
                let mut payload = vec![0u8; bytes];
                rng.fill_bytes(&mut payload);
                let payload = Bytes::from(payload);
                if large {
                    class = LatClass::StreamPut;
                    with_backpressure(&mut client, &mut out.overloaded_retries, |c| {
                        c.put_chunked(&key, ObjectKind::Opaque, &payload)
                    })
                    .and_then(expect_ok)
                    .map(|_| stored.push((key, payload, true)))
                    .map_err(|e| format!("client {idx} op {n} stream-put: {e}"))
                } else {
                    with_backpressure(&mut client, &mut out.overloaded_retries, |c| {
                        c.put(&key, ObjectKind::Opaque, &payload)
                    })
                    .and_then(expect_ok)
                    .map(|_| stored.push((key, payload, false)))
                    .map_err(|e| format!("client {idx} op {n} put: {e}"))
                }
            }
            Op::Get => {
                let (key, expected, streamed) = {
                    let pick = rng.gen_range(0..stored.len());
                    stored[pick].clone()
                };
                if streamed {
                    class = LatClass::StreamGet;
                }
                with_backpressure(&mut client, &mut out.overloaded_retries, |c| {
                    if streamed {
                        c.get_streamed_bytes(&key)
                    } else {
                        c.get(&key)
                    }
                })
                .and_then(expect_ok)
                .and_then(|resp| {
                    // get_streamed_bytes buffers the reassembled object
                    // in the payload, so both paths compare the same way.
                    let got: &[u8] = &resp.payload;
                    if got == expected.as_slice() {
                        Ok(())
                    } else {
                        Err(ServeError::Verification(format!(
                            "GET '{key}' returned {} byte(s) that do not match the \
                             {} byte(s) this client PUT",
                            got.len(),
                            expected.len()
                        )))
                    }
                })
                .map_err(|e| format!("client {idx} op {n} get: {e}"))
            }
            Op::Verify => {
                let key = {
                    let pick = rng.gen_range(0..stored.len());
                    stored[pick].0.clone()
                };
                with_backpressure(&mut client, &mut out.overloaded_retries, |c| {
                    c.verify(&key)
                })
                .and_then(expect_ok)
                .map(|_| ())
                .map_err(|e| format!("client {idx} op {n} verify: {e}"))
            }
            _ => with_backpressure(&mut client, &mut out.overloaded_retries, |c| c.scrub())
                .and_then(expect_ok)
                .map(|_| ())
                .map_err(|e| format!("client {idx} op {n} scrub: {e}")),
        };
        out.latencies
            .push((class, started.elapsed().as_nanos() as u64));
        if let Err(msg) = result {
            fail(&mut out, msg);
        }
    }
    out
}

/// Run a campaign: spawn the clients, drive the mix, aggregate.
pub fn run(cfg: &LoadgenConfig) -> LoadgenReport {
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|idx| scope.spawn(move || run_client(cfg, idx)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| ClientOutcome {
                    latencies: Vec::new(),
                    overloaded_retries: 0,
                    failures: vec!["client thread panicked".to_string()],
                    failure_count: 1,
                })
            })
            .collect()
    });
    let elapsed_ns = started.elapsed().as_nanos() as u64;

    let mut report = LoadgenReport {
        clients: cfg.clients,
        elapsed_ns,
        ..LoadgenReport::default()
    };
    let mut per_op: [(LatClass, Vec<u64>); 6] = [
        (LatClass::Put, Vec::new()),
        (LatClass::Get, Vec::new()),
        (LatClass::Verify, Vec::new()),
        (LatClass::Scrub, Vec::new()),
        (LatClass::StreamPut, Vec::new()),
        (LatClass::StreamGet, Vec::new()),
    ];
    let mut all = Vec::new();
    for outcome in outcomes {
        report.overloaded_retries += outcome.overloaded_retries;
        report.failure_count += outcome.failure_count;
        for f in outcome.failures {
            if report.failures.len() < MAX_FAILURE_SAMPLES {
                report.failures.push(f);
            }
        }
        for (class, ns) in outcome.latencies {
            all.push(ns);
            if let Some((_, bucket)) = per_op.iter_mut().find(|(c, _)| *c == class) {
                bucket.push(ns);
            }
        }
    }
    report.ops_total = all.len() as u64;
    let [(_, puts), (_, gets), (_, verifies), (_, scrubs), (_, stream_puts), (_, stream_gets)] =
        per_op;
    report.puts = OpStats::from_latencies(puts);
    report.gets = OpStats::from_latencies(gets);
    report.verifies = OpStats::from_latencies(verifies);
    report.scrubs = OpStats::from_latencies(scrubs);
    report.stream_puts = OpStats::from_latencies(stream_puts);
    report.stream_gets = OpStats::from_latencies(stream_gets);
    report.mixed = OpStats::from_latencies(all);
    report.throughput_ops_per_sec = if elapsed_ns == 0 {
        0.0
    } else {
        report.ops_total as f64 * 1e9 / elapsed_ns as f64
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_weights_parse_and_pick() {
        let mix = MixWeights::parse("4:8:2:1").unwrap();
        assert_eq!(mix.put, 4);
        assert_eq!(mix.get, 8);
        assert!(MixWeights::parse("1:2:3").is_none());
        assert!(MixWeights::parse("0:0:0:0").is_none());
        assert!(MixWeights::parse("a:b:c:d").is_none());
        let mut rng = StdRng::seed_from_u64(1);
        let only_puts = MixWeights {
            put: 1,
            get: 0,
            verify: 0,
            scrub: 0,
        };
        for _ in 0..32 {
            assert_eq!(only_puts.pick(&mut rng), Op::Put);
        }
    }

    #[test]
    fn percentiles_are_sane() {
        let st = OpStats::from_latencies((1..=100).collect());
        assert_eq!(st.count, 100);
        assert_eq!(st.p50_ns, 51);
        assert_eq!(st.p99_ns, 99);
        assert_eq!(OpStats::from_latencies(Vec::new()), OpStats::default());
    }
}
