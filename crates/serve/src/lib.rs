//! # daspos-serve — the multi-tenant preservation service daemon
//!
//! The DASPOS preservation model is a *service*, not a library: a
//! community of analysts deposits and retrieves archives from a central,
//! always-on store the way CERN's EOS or the HEPData repository serve
//! whole experiments. This crate is that daemon, layered on the
//! replicated [`Vault`](daspos_vault::Vault):
//!
//! - [`proto`] — the DPRQ/DPRS framed wire protocol. Every frame body is
//!   wrapped in the tier codec's DPSL fnv64 seal, so the fault campaign
//!   attacks service frames with the same machinery (and the same
//!   "detected or harmless" guarantee) as archived tier files.
//! - [`server`] — [`Service`] (admission-controlled op handling over one
//!   shared vault, per-tenant namespaces, graceful drain) and [`Server`]
//!   (the TCP thread-per-connection front-end plus a background scrubber
//!   that yields to foreground traffic).
//! - [`client`] — the blocking [`ServeClient`].
//! - [`loadgen`] — deterministic concurrent load generation with
//!   byte-identity deep verification and p50/p99 latency reporting.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use bytes::Bytes;
//! use daspos_obs::Obs;
//! use daspos_serve::{client::expect_ok, ServeClient, ServeConfig, Server, Service};
//! use daspos_vault::{MemoryBackend, ObjectKind, StorageBackend, Vault};
//!
//! let vault = Vault::builder()
//!     .backends(vec![
//!         Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>,
//!         Arc::new(MemoryBackend::new()),
//!     ])
//!     .build()
//!     .unwrap();
//! let service = Arc::new(Service::new(vault, &ServeConfig::default(), Obs::disabled()));
//! let server = Server::start(service, "127.0.0.1:0", Duration::from_millis(20)).unwrap();
//! let mut client = ServeClient::connect(&server.addr().to_string(), "cms").unwrap();
//! expect_ok(client.put("aod.dpef", ObjectKind::Opaque, &Bytes::from_static(b"bytes")).unwrap())
//!     .unwrap();
//! client.shutdown_server().unwrap();
//! server.join();
//! ```

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{expect_ok, ServeClient};
pub use loadgen::{LoadgenConfig, LoadgenReport, MixWeights, OpStats};
pub use proto::{Op, ProtoError, Request, Response, Status};
pub use server::{Chaos, ServeConfig, ServeError, Server, Service};

use std::sync::Arc;
use std::time::Duration;

use daspos_obs::Obs;
use daspos_vault::{MemoryBackend, StorageBackend, Vault};

/// End-to-end smoke: an in-process server over a fresh 2-replica
/// memory vault, a short concurrent loadgen burst, zero tolerated
/// failures. This is the tier-1 `daspos-cli serve --selftest` body.
pub fn selftest() -> Result<String, ServeError> {
    let vault = Vault::builder()
        .backends(vec![
            Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>,
            Arc::new(MemoryBackend::new()),
        ])
        .build()
        .expect("two backends were supplied");
    let service = Arc::new(Service::new(
        vault,
        &ServeConfig::default(),
        Obs::disabled(),
    ));
    let server = Server::start(service.clone(), "127.0.0.1:0", Duration::from_millis(5))?;
    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        clients: 8,
        ops_per_client: 12,
        tenants: 3,
        seed: 2013,
        payload_bytes: 128,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&cfg);
    service.request_shutdown();
    server.join();
    if !report.ok() {
        return Err(ServeError::Verification(format!(
            "selftest campaign failed:\n{}",
            report.to_text()
        )));
    }
    // The background scrubber (5 ms cadence above, running throughout
    // the burst) must never stall a foreground op for a full object, so
    // the mixed tail has to stay within 20× of the median. The median is
    // floored at 25 µs so a sub-microsecond p50 on a fast box does not
    // make the bound meaninglessly tight.
    let bound = 20 * report.mixed.p50_ns.max(25_000);
    if report.mixed.p99_ns >= bound {
        return Err(ServeError::Verification(format!(
            "scrub stall: mixed p99 {} ns >= 20x-median bound {} ns\n{}",
            report.mixed.p99_ns,
            bound,
            report.to_text()
        )));
    }
    Ok(report.to_text())
}

#[cfg(test)]
mod tests {
    #[test]
    fn selftest_round_trips_a_concurrent_burst() {
        let text = super::selftest().expect("selftest must pass");
        assert!(text.contains("zero failures"), "got: {text}");
    }
}
