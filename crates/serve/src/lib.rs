//! # daspos-serve — the multi-tenant preservation service daemon
//!
//! The DASPOS preservation model is a *service*, not a library: a
//! community of analysts deposits and retrieves archives from a central,
//! always-on store the way CERN's EOS or the HEPData repository serve
//! whole experiments. This crate is that daemon, layered on the
//! replicated [`Vault`](daspos_vault::Vault):
//!
//! - [`proto`] — the DPRQ/DPRS framed wire protocol. Every frame body is
//!   wrapped in the tier codec's DPSL fnv64 seal, so the fault campaign
//!   attacks service frames with the same machinery (and the same
//!   "detected or harmless" guarantee) as archived tier files.
//! - [`stream`] — multi-frame streamed transfers: chunk payload codecs
//!   and the `DPSM` manifest that publishes a chunked object atomically.
//!   Objects beyond the 16 MiB frame cap round-trip byte-identically
//!   with O(chunk) peak memory on both ends.
//! - [`server`] — [`Service`] (admission-controlled op handling over one
//!   shared vault, per-tenant namespaces and [`Quota`]s, graceful drain)
//!   and [`Server`] (a fixed worker pool multiplexing every accepted
//!   connection — idle connections pin no thread — plus a background
//!   scrubber that yields to foreground traffic).
//! - [`client`] — the blocking [`ServeClient`], configured through
//!   [`ServeClient::builder`].
//! - [`loadgen`] — deterministic concurrent load generation with
//!   byte-identity deep verification and p50/p99 latency reporting,
//!   including streamed large-object traffic.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use bytes::Bytes;
//! use daspos_obs::Obs;
//! use daspos_serve::{client::expect_ok, ServeClient, ServeConfig, Server, Service};
//! use daspos_vault::{MemoryBackend, ObjectKind, StorageBackend, Vault};
//!
//! let vault = Vault::builder()
//!     .backends(vec![
//!         Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>,
//!         Arc::new(MemoryBackend::new()),
//!     ])
//!     .build()
//!     .unwrap();
//! let service = Arc::new(Service::new(vault, &ServeConfig::default(), Obs::disabled()));
//! let server = Server::start(service, "127.0.0.1:0", Duration::from_millis(20)).unwrap();
//! let mut client = ServeClient::builder("cms")
//!     .op_timeout(Duration::from_secs(5))
//!     .connect(&server.addr().to_string())
//!     .unwrap();
//! expect_ok(client.put("aod.dpef", ObjectKind::Opaque, &Bytes::from_static(b"bytes")).unwrap())
//!     .unwrap();
//! // Objects bigger than one frame stream chunk-by-chunk:
//! let big = Bytes::from(vec![7u8; 20 * 1024 * 1024]);
//! expect_ok(client.put_chunked("aod-full.dpef", ObjectKind::Opaque, &big).unwrap()).unwrap();
//! client.shutdown_server().unwrap();
//! server.join();
//! ```

pub mod client;
pub mod loadgen;
mod mux;
pub mod proto;
pub mod server;
pub mod stream;
pub mod wire;

pub use client::{expect_ok, ClientBuilder, RetryPolicy, ServeClient};
pub use loadgen::{LoadgenConfig, LoadgenReport, MixWeights, OpStats};
pub use proto::{Op, ProtoError, Request, Response, Status};
pub use server::{
    Chaos, Quota, ServeConfig, ServeConfigBuilder, ServeError, Server, Service,
};
pub use stream::StreamInfo;

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use daspos_obs::Obs;
use daspos_vault::{MemoryBackend, ObjectKind, StorageBackend, Vault};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random byte source with O(1) state: the
/// streaming-transfer tests read gigabyte-scale "objects" out of it
/// without ever materializing them.
pub struct PatternReader {
    state: u64,
    remaining: u64,
    stash: [u8; 8],
    stash_len: usize,
}

impl PatternReader {
    /// A `len`-byte deterministic stream seeded by `seed`.
    pub fn new(seed: u64, len: u64) -> PatternReader {
        PatternReader {
            state: seed,
            remaining: len,
            stash: [0; 8],
            stash_len: 0,
        }
    }
}

impl Read for PatternReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (buf.len() as u64).min(self.remaining) as usize;
        for slot in buf.iter_mut().take(n) {
            if self.stash_len == 0 {
                self.stash = splitmix(&mut self.state).to_le_bytes();
                self.stash_len = 8;
            }
            *slot = self.stash[8 - self.stash_len];
            self.stash_len -= 1;
        }
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// The verifying sink twin of [`PatternReader`]: regenerates the same
/// byte stream and compares, holding O(1) state — true byte-identity
/// for arbitrarily large round trips without a reference buffer.
pub struct PatternChecker {
    expect: PatternReader,
    received: u64,
    first_mismatch: Option<u64>,
}

impl PatternChecker {
    /// Expect the stream `PatternReader::new(seed, len)` produces.
    pub fn new(seed: u64, len: u64) -> PatternChecker {
        PatternChecker {
            expect: PatternReader::new(seed, len),
            received: 0,
            first_mismatch: None,
        }
    }

    /// Total bytes written into the checker.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// `Ok` iff exactly `expected_len` bytes arrived and every one
    /// matched the pattern.
    pub fn verify(&self, expected_len: u64) -> Result<(), String> {
        if let Some(off) = self.first_mismatch {
            return Err(format!("byte {off} differs from the pattern"));
        }
        if self.received != expected_len {
            return Err(format!(
                "received {} bytes, expected {expected_len}",
                self.received
            ));
        }
        Ok(())
    }
}

impl Write for PatternChecker {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut want = vec![0u8; buf.len()];
        let n = self.expect.read(&mut want).expect("pattern reads are infallible");
        for (i, (&got, &exp)) in buf.iter().zip(want[..n].iter()).enumerate() {
            if got != exp && self.first_mismatch.is_none() {
                self.first_mismatch = Some(self.received + i as u64);
            }
        }
        if n < buf.len() && self.first_mismatch.is_none() {
            // More bytes than the pattern holds: everything past the
            // end is a mismatch by definition.
            self.first_mismatch = Some(self.received + n as u64);
        }
        self.received += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// End-to-end smoke, parametrized by the streamed-object size so the
/// debug-build unit test stays fast while the tier-1 CLI selftest
/// pushes a full 64 MiB through the chunk pipeline.
pub fn selftest_sized(stream_bytes: u64) -> Result<String, ServeError> {
    const STREAM_CHUNK: usize = 1024 * 1024;
    const CAPPED_QUOTA: u64 = 4096;

    let vault = Vault::builder()
        .backends(vec![
            Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>,
            Arc::new(MemoryBackend::new()),
        ])
        .build()
        .expect("two backends were supplied");
    let cfg = ServeConfig::builder()
        .quota(
            "capped",
            Quota {
                max_bytes: CAPPED_QUOTA,
                max_inflight: 0,
                ops_per_sec: 0,
            },
        )
        .build()?;
    let service = Arc::new(Service::new(vault, &cfg, Obs::disabled()));
    let server = Server::start(service.clone(), "127.0.0.1:0", Duration::from_millis(5))?;
    let addr = server.addr().to_string();

    // 1. The classic concurrent burst with deep verification — now with
    // every sixth PUT streaming a multi-chunk object through the same
    // worker pool the small ops share.
    let lg_cfg = LoadgenConfig {
        addr: addr.clone(),
        clients: 8,
        ops_per_client: 12,
        tenants: 3,
        seed: 2013,
        payload_bytes: 128,
        large_every: 6,
        large_payload_bytes: 96 * 1024,
        chunk_bytes: 16 * 1024,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&lg_cfg);

    // 2. A streamed round trip far beyond the frame cap, byte-verified
    // with O(1) client state; the server-side high-water mark proves
    // staging never buffered more than one chunk.
    let mut archive = ServeClient::builder("archive")
        .chunk_bytes(STREAM_CHUNK)
        .op_timeout(Duration::from_secs(30))
        .connect(&addr)?;
    let mut source = PatternReader::new(0xD45_905, stream_bytes);
    expect_ok(archive.put_stream("full-aod.dpef", ObjectKind::SealedTier, &mut source)?)?;
    let high_water = service.stats().stream_chunk_high_water();
    if high_water > STREAM_CHUNK as u64 {
        service.request_shutdown();
        server.join();
        return Err(ServeError::Verification(format!(
            "server staged a {high_water}-byte chunk; bound is {STREAM_CHUNK}"
        )));
    }
    let mut checker = PatternChecker::new(0xD45_905, stream_bytes);
    expect_ok(archive.get_stream("full-aod.dpef", &mut checker)?)?;
    if let Err(e) = checker.verify(stream_bytes) {
        service.request_shutdown();
        server.join();
        return Err(ServeError::Verification(format!(
            "streamed round trip not byte-identical: {e}"
        )));
    }

    // 3. A forced quota rejection: the capped tenant must bounce with
    // the typed status while everyone above sailed through untouched.
    let mut capped = ServeClient::builder("capped").connect(&addr)?;
    let resp = capped.put(
        "over-budget.bin",
        ObjectKind::Opaque,
        &Bytes::from(vec![0u8; 2 * CAPPED_QUOTA as usize]),
    )?;
    if resp.status != Status::QuotaExceeded {
        service.request_shutdown();
        server.join();
        return Err(ServeError::Verification(format!(
            "capped tenant expected quota-exceeded, got {}: {}",
            resp.status.name(),
            resp.detail
        )));
    }

    service.request_shutdown();
    server.join();
    if !report.ok() {
        return Err(ServeError::Verification(format!(
            "selftest campaign failed:\n{}",
            report.to_text()
        )));
    }
    // The background scrubber (5 ms cadence above, running throughout
    // the burst) must never stall a foreground op for a full object, so
    // the single-frame tails have to stay within 20× of their medians
    // (streamed ops are inherently multi-round-trip and get no such
    // bound). The median is floored at 25 µs so a sub-microsecond p50
    // on a fast box does not make the bound meaninglessly tight.
    for (name, st) in [("put", &report.puts), ("get", &report.gets)] {
        let bound = 20 * st.p50_ns.max(25_000);
        if st.count > 0 && st.p99_ns >= bound {
            return Err(ServeError::Verification(format!(
                "scrub stall: {name} p99 {} ns >= 20x-median bound {bound} ns\n{}",
                st.p99_ns,
                report.to_text()
            )));
        }
    }
    Ok(format!(
        "{}\nstream: {stream_bytes} bytes round-tripped in {STREAM_CHUNK}-byte chunks \
         (server high water {high_water} bytes)\nquota: capped tenant rejected with {}",
        report.to_text(),
        Status::QuotaExceeded.name(),
    ))
}

/// End-to-end smoke: an in-process server over a fresh 2-replica
/// memory vault, a short concurrent loadgen burst, a 64 MiB streamed
/// round trip, and a forced quota rejection — zero tolerated failures.
/// This is the tier-1 `daspos-cli serve --selftest` body.
pub fn selftest() -> Result<String, ServeError> {
    selftest_sized(64 * 1024 * 1024)
}

#[cfg(test)]
mod tests {
    #[test]
    fn selftest_round_trips_a_concurrent_burst() {
        // 24 MiB keeps the debug-build test quick while still crossing
        // the 16 MiB frame cap; the release-build CLI selftest runs the
        // full 64 MiB.
        let text = super::selftest_sized(24 * 1024 * 1024).expect("selftest must pass");
        assert!(text.contains("zero failures"), "got: {text}");
        assert!(text.contains("stream: "), "got: {text}");
        assert!(text.contains("quota: "), "got: {text}");
    }

    #[test]
    fn pattern_reader_and_checker_agree() {
        use std::io::{Read, Write};
        let mut r = super::PatternReader::new(42, 100_000);
        let mut c = super::PatternChecker::new(42, 100_000);
        let mut buf = vec![0u8; 7919];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            c.write_all(&buf[..n]).unwrap();
        }
        c.verify(100_000).unwrap();

        let mut bad = super::PatternChecker::new(42, 10);
        bad.write_all(b"wrongbytes").unwrap();
        assert!(bad.verify(10).is_err());
    }
}
