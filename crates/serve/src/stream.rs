//! Streamed multi-frame transfer: payload codecs and the chunk manifest.
//!
//! Objects larger than one [`MAX_FRAME_BYTES`](crate::proto::MAX_FRAME_BYTES)
//! frame travel as a *stream*: `PutBegin` opens a server-side stream,
//! every `PutChunk` frame carries one chunk (individually fnv-sealed
//! like every frame), and `PutCommit` publishes the object after the
//! server has re-read the staged chunks and verified the whole-object
//! fnv64 digest the client declares. On the vault side a committed
//! stream is one small **manifest** object at the composed key plus one
//! vault object per chunk:
//!
//! ```text
//! {tenant}.{key}                   DPSM manifest (kind = StreamManifest)
//! {tenant}.{key}..g<gen>.c<seq>    chunk objects, generation-addressed
//! ```
//!
//! The generation id makes commits atomic: chunks stage under a fresh
//! generation nobody references, and the single manifest write flips
//! readers over. Orphaned generations (aborted or crashed streams) are
//! invisible to GETs and swept at the next commit to the same key. The
//! `..` separator can never appear in a client-supplied key (see
//! [`storage_key`](crate::proto::storage_key)), so chunk records can
//! never collide with real objects.
//!
//! GET streaming is stateless: `GetBegin` answers the object's chunk
//! geometry and whole-object digest, `GetChunk` serves one chunk, and
//! the client folds the digest incrementally — a concurrent overwrite
//! surfaces as a digest mismatch at the client, never as silent mixing.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use daspos_vault::ObjectKind;

use crate::proto::{ProtoError, MAX_CHUNK_BYTES};

/// Magic of a stream manifest payload: "DASPOS Stream Manifest".
pub const MANIFEST_MAGIC: &[u8; 4] = b"DPSM";

/// Current manifest wire version.
pub const MANIFEST_VERSION: u16 = 1;

/// FNV-1a 64 offset basis — the digest of zero bytes.
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold more bytes into a running FNV-1a 64 state. Because FNV-1a is a
/// sequential byte fold, `fnv64_fold(fnv64_fold(FNV_BASIS, a), b)`
/// equals `codec::fnv64(a ++ b)` — which is what lets both ends verify
/// a multi-gigabyte object digest while ever holding one chunk.
pub fn fnv64_fold(mut h: u64, data: &[u8]) -> u64 {
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The chunk geometry of a streamed object, carried by the `GetBegin`
/// response payload and (with the kind and generation) by the stored
/// manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// Total object payload length in bytes.
    pub total_len: u64,
    /// Bytes per chunk (every chunk but the last is exactly this).
    pub chunk_size: u32,
    /// Number of chunks.
    pub chunks: u32,
    /// fnv64 over the whole object payload.
    pub digest: u64,
}

/// A committed stream's stored manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// The object kind the client declared at `PutBegin`.
    pub kind: ObjectKind,
    /// Chunk geometry and whole-object digest.
    pub info: StreamInfo,
    /// The generation the chunk records live under.
    pub gen: u64,
}

/// The vault key of chunk `seq` of generation `gen` of `composed`.
/// Fixed-width fields keep the namespace collision-free and sortable.
pub fn chunk_key(composed: &str, gen: u64, seq: u32) -> String {
    format!("{composed}..g{gen:016x}.c{seq:08}")
}

/// The prefix every chunk record of `composed` (any generation) shares.
pub fn chunk_prefix(composed: &str) -> String {
    format!("{composed}..g")
}

/// Number of chunks a `total_len`-byte object splits into (zero-byte
/// objects carry zero chunks).
pub fn chunk_count(total_len: u64, chunk_size: u32) -> u32 {
    if total_len == 0 {
        0
    } else {
        total_len.div_ceil(u64::from(chunk_size.max(1))) as u32
    }
}

/// Validate a client-declared chunk size.
pub fn validate_chunk_size(chunk_size: u32) -> Result<(), ProtoError> {
    if chunk_size == 0 || chunk_size as usize > MAX_CHUNK_BYTES {
        return Err(ProtoError::Oversized {
            declared: chunk_size as usize,
            limit: MAX_CHUNK_BYTES,
        });
    }
    Ok(())
}

fn short(buf: &Bytes, n: usize) -> Result<(), ProtoError> {
    if buf.remaining() < n {
        Err(ProtoError::Truncated)
    } else {
        Ok(())
    }
}

/// Encode a `PutBegin`/`GetBegin` request payload (the requested chunk
/// size; 0 in a `GetBegin` asks for the server default).
pub fn encode_begin(chunk_size: u32) -> Bytes {
    Bytes::copy_from_slice(&chunk_size.to_le_bytes())
}

/// Decode a begin payload.
pub fn decode_begin(payload: &Bytes) -> Result<u32, ProtoError> {
    let mut b = payload.clone();
    short(&b, 4)?;
    let chunk_size = b.get_u32_le();
    if !b.is_empty() {
        return Err(ProtoError::TrailingBytes(b.len()));
    }
    Ok(chunk_size)
}

/// Encode a chunk payload (`PutChunk` request / `GetChunk` response):
/// the sequence number followed by the chunk bytes.
pub fn encode_chunk(seq: u32, data: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + data.len());
    out.put_u32_le(seq);
    out.put_slice(data);
    out.freeze()
}

/// Decode a chunk payload into `(seq, data)`. The data slice is a
/// zero-copy view into the frame.
pub fn decode_chunk(payload: &Bytes) -> Result<(u32, Bytes), ProtoError> {
    let mut b = payload.clone();
    short(&b, 4)?;
    let seq = b.get_u32_le();
    if b.len() > MAX_CHUNK_BYTES {
        return Err(ProtoError::Oversized {
            declared: b.len(),
            limit: MAX_CHUNK_BYTES,
        });
    }
    Ok((seq, b))
}

/// Encode a `GetChunk` request payload: the wanted sequence number plus
/// the chunk size echoed from `GetBegin` (which keeps the op stateless
/// for objects stored un-chunked).
pub fn encode_get_chunk(seq: u32, chunk_size: u32) -> Bytes {
    let mut out = BytesMut::with_capacity(8);
    out.put_u32_le(seq);
    out.put_u32_le(chunk_size);
    out.freeze()
}

/// Decode a `GetChunk` request payload into `(seq, chunk_size)`.
pub fn decode_get_chunk(payload: &Bytes) -> Result<(u32, u32), ProtoError> {
    let mut b = payload.clone();
    short(&b, 8)?;
    let seq = b.get_u32_le();
    let chunk_size = b.get_u32_le();
    if !b.is_empty() {
        return Err(ProtoError::TrailingBytes(b.len()));
    }
    Ok((seq, chunk_size))
}

/// Encode a `PutCommit` request payload: the chunk count, total length
/// and whole-object digest the client observed while streaming.
pub fn encode_commit(info: &StreamInfo) -> Bytes {
    let mut out = BytesMut::with_capacity(20);
    out.put_u32_le(info.chunks);
    out.put_u64_le(info.total_len);
    out.put_u64_le(info.digest);
    out.freeze()
}

/// Decode a `PutCommit` payload into `(chunks, total_len, digest)`.
pub fn decode_commit(payload: &Bytes) -> Result<(u32, u64, u64), ProtoError> {
    let mut b = payload.clone();
    short(&b, 20)?;
    let chunks = b.get_u32_le();
    let total_len = b.get_u64_le();
    let digest = b.get_u64_le();
    if !b.is_empty() {
        return Err(ProtoError::TrailingBytes(b.len()));
    }
    Ok((chunks, total_len, digest))
}

/// Encode a `GetBegin` response payload.
pub fn encode_info(info: &StreamInfo) -> Bytes {
    let mut out = BytesMut::with_capacity(24);
    out.put_u64_le(info.total_len);
    out.put_u32_le(info.chunk_size);
    out.put_u32_le(info.chunks);
    out.put_u64_le(info.digest);
    out.freeze()
}

/// Decode a `GetBegin` response payload.
pub fn decode_info(payload: &Bytes) -> Result<StreamInfo, ProtoError> {
    let mut b = payload.clone();
    short(&b, 24)?;
    let info = StreamInfo {
        total_len: b.get_u64_le(),
        chunk_size: b.get_u32_le(),
        chunks: b.get_u32_le(),
        digest: b.get_u64_le(),
    };
    if !b.is_empty() {
        return Err(ProtoError::TrailingBytes(b.len()));
    }
    Ok(info)
}

/// Serialize a manifest into its stored payload form.
pub fn encode_manifest(m: &Manifest) -> Bytes {
    let mut out = BytesMut::with_capacity(4 + 2 + 1 + 24 + 8);
    out.put_slice(MANIFEST_MAGIC);
    out.put_u16_le(MANIFEST_VERSION);
    out.put_u8(m.kind.as_u8());
    out.put_u64_le(m.info.total_len);
    out.put_u32_le(m.info.chunk_size);
    out.put_u32_le(m.info.chunks);
    out.put_u64_le(m.info.digest);
    out.put_u64_le(m.gen);
    out.freeze()
}

/// Parse a stored manifest payload. Defensive like the frame decoders:
/// every field is bounds-checked and trailing bytes are an error.
pub fn decode_manifest(payload: &Bytes) -> Result<Manifest, ProtoError> {
    let mut b = payload.clone();
    short(&b, 4 + 2 + 1)?;
    let magic = b.split_to(4);
    if magic.as_slice() != MANIFEST_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = b.get_u16_le();
    if version != MANIFEST_VERSION {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    let kind_byte = b.get_u8();
    let kind = ObjectKind::from_u8(kind_byte).ok_or(ProtoError::UnknownKind(kind_byte))?;
    short(&b, 24 + 8)?;
    let info = StreamInfo {
        total_len: b.get_u64_le(),
        chunk_size: b.get_u32_le(),
        chunks: b.get_u32_le(),
        digest: b.get_u64_le(),
    };
    let gen = b.get_u64_le();
    if !b.is_empty() {
        return Err(ProtoError::TrailingBytes(b.len()));
    }
    if info.chunk_size == 0 && info.chunks != 0 {
        return Err(ProtoError::Oversized {
            declared: 0,
            limit: MAX_CHUNK_BYTES,
        });
    }
    Ok(Manifest { kind, info, gen })
}

#[cfg(test)]
mod tests {
    use super::*;
    use daspos_tiers::codec::fnv64;

    #[test]
    fn fold_matches_one_shot_fnv64_over_any_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = fnv64(&data);
        assert_eq!(fnv64_fold(FNV_BASIS, &data), whole);
        for cut in [0usize, 1, 7, 128, 256, 257] {
            let folded = fnv64_fold(fnv64_fold(FNV_BASIS, &data[..cut]), &data[cut..]);
            assert_eq!(folded, whole, "split at {cut}");
        }
        assert_eq!(fnv64_fold(FNV_BASIS, &[]), fnv64(&[]));
    }

    #[test]
    fn payload_codecs_round_trip_and_reject_trailing_bytes() {
        let info = StreamInfo {
            total_len: 64 * 1024 * 1024 + 3,
            chunk_size: 4 * 1024 * 1024,
            chunks: 17,
            digest: 0xDEAD_BEEF_0123_4567,
        };
        assert_eq!(decode_begin(&encode_begin(9)).unwrap(), 9);
        assert_eq!(decode_info(&encode_info(&info)).unwrap(), info);
        assert_eq!(
            decode_commit(&encode_commit(&info)).unwrap(),
            (info.chunks, info.total_len, info.digest)
        );
        let (seq, data) = decode_chunk(&encode_chunk(5, b"abc")).unwrap();
        assert_eq!((seq, data.as_slice()), (5, b"abc".as_slice()));
        assert_eq!(decode_get_chunk(&encode_get_chunk(3, 512)).unwrap(), (3, 512));

        let mut long = encode_info(&info).to_vec();
        long.push(0);
        assert!(decode_info(&Bytes::from(long)).is_err());
        assert!(decode_begin(&Bytes::from_static(b"\x01\x00")).is_err());
        assert!(decode_commit(&Bytes::from_static(b"short")).is_err());
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let m = Manifest {
            kind: ObjectKind::SealedTier,
            info: StreamInfo {
                total_len: 1000,
                chunk_size: 256,
                chunks: 4,
                digest: 42,
            },
            gen: 7,
        };
        let wire = encode_manifest(&m);
        assert_eq!(decode_manifest(&wire).unwrap(), m);
        assert!(decode_manifest(&Bytes::from_static(b"NOPE")).is_err());
        let mut bad_kind = wire.to_vec();
        bad_kind[6] = 0xEE;
        assert!(decode_manifest(&Bytes::from(bad_kind)).is_err());
        let mut truncated = wire.to_vec();
        truncated.truncate(wire.len() - 1);
        assert!(decode_manifest(&Bytes::from(truncated)).is_err());
    }

    #[test]
    fn chunk_keys_are_generation_addressed_and_reserved() {
        assert_eq!(
            chunk_key("cms.aod", 1, 0),
            "cms.aod..g0000000000000001.c00000000"
        );
        assert!(chunk_key("cms.aod", 1, 0).starts_with(&chunk_prefix("cms.aod")));
        assert_eq!(chunk_count(0, 1024), 0);
        assert_eq!(chunk_count(1, 1024), 1);
        assert_eq!(chunk_count(1024, 1024), 1);
        assert_eq!(chunk_count(1025, 1024), 2);
        assert!(validate_chunk_size(0).is_err());
        assert!(validate_chunk_size((MAX_CHUNK_BYTES + 1) as u32).is_err());
        validate_chunk_size(1).unwrap();
    }
}
