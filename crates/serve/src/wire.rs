//! Blocking frame I/O over a `TcpStream`.
//!
//! Both ends of the protocol read frames the same way: a 4-byte length
//! prefix, checked against [`MAX_FRAME_BYTES`] before a single body byte
//! is buffered, then the sealed body. Streams are expected to carry a
//! short read timeout (the server uses ~50 ms) so blocked readers can
//! poll their shutdown flag: a timeout with *nothing* read surfaces as
//! [`ReadFrame::Idle`] and hands control back to the caller, while a
//! timeout *mid-frame* keeps draining — a frame that has started to
//! arrive is finished or failed, never half-consumed (that would desync
//! the stream). A reader stalled mid-frame for [`STALL_LIMIT`]
//! consecutive timeouts gives up with an I/O error.

use std::io::{Read, Write};
use std::net::TcpStream;

use bytes::Bytes;

use crate::proto::{ProtoError, MAX_FRAME_BYTES};

/// Consecutive zero-progress timeouts tolerated mid-frame before the
/// connection is declared dead (with a 50 ms poll interval ≈ 10 s).
pub const STALL_LIMIT: u32 = 200;

/// The outcome of one frame-read attempt.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete sealed frame body (length prefix stripped).
    Sealed(Bytes),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// Read timeout with no bytes consumed — poll shutdown and retry.
    Idle,
}

/// A transport-layer failure while reading a frame.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (reset, stall, mid-frame EOF).
    Io(std::io::Error),
    /// The length prefix itself was inadmissible (over the frame cap).
    Proto(ProtoError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failure: {e}"),
            WireError::Proto(e) => write!(f, "wire framing failure: {e}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Fill `buf` completely, riding out timeouts (up to [`STALL_LIMIT`]
/// zero-progress rounds) and `Interrupted`. `allow_idle` makes a timeout
/// before the *first* byte report idleness instead of stalling.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    allow_idle: bool,
) -> Result<Option<()>, WireError> {
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && allow_idle {
                    // Clean EOF between frames; the caller maps this.
                    Ok(None)
                } else {
                    Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )))
                };
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if got == 0 && allow_idle {
                    return Err(WireError::Io(e)); // mapped to Idle by caller
                }
                stalls += 1;
                if stalls >= STALL_LIMIT {
                    return Err(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    )));
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Some(()))
}

/// Read one frame. Requires a read timeout on the stream if the caller
/// wants [`ReadFrame::Idle`] polling; with no timeout this simply blocks.
pub fn read_frame(stream: &mut TcpStream) -> Result<ReadFrame, WireError> {
    let mut prefix = [0u8; 4];
    match read_full(stream, &mut prefix, true) {
        Ok(None) => return Ok(ReadFrame::Eof),
        Ok(Some(())) => {}
        Err(WireError::Io(e)) if is_timeout(&e) => return Ok(ReadFrame::Idle),
        Err(e) => return Err(e),
    }
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(WireError::Proto(ProtoError::Oversized {
            declared,
            limit: MAX_FRAME_BYTES,
        }));
    }
    // Allocation is bounded: `declared` is already under the frame cap.
    let mut raw = vec![0u8; declared];
    read_full(stream, &mut raw, false)?;
    Ok(ReadFrame::Sealed(Bytes::from(raw)))
}

/// Write one whole frame (length prefix included).
pub fn write_frame(stream: &mut TcpStream, frame: &Bytes) -> Result<(), WireError> {
    stream.write_all(frame).map_err(WireError::Io)?;
    stream.flush().map_err(WireError::Io)
}
