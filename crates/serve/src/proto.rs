//! The DPRQ/DPRS framed wire protocol of the preservation service.
//!
//! Every message travels as one length-prefixed frame whose body is a
//! DPSL integrity seal (the same fnv64 envelope the tier files use, so
//! the fault campaign can attack service frames with the exact machinery
//! that attacks archives):
//!
//! ```text
//! frame    := frame_len:u32 sealed
//! sealed   := "DPSL" fnv64(body):u64 body
//! body     := request | response
//! request  := "DPRQ" version:u16 op:u8 kind:u8
//!             tenant_len:u16 tenant key_len:u16 key
//!             payload_len:u32 payload
//! response := "DPRS" version:u16 op:u8 status:u8
//!             detail_len:u16 detail payload_len:u32 payload
//! ```
//!
//! Decoding is defensive in the same way the tier codec is: every
//! declared length is checked against the bytes actually present before
//! anything is sliced (a 30-byte frame claiming a 10 MB payload errors
//! immediately, it does not allocate), frames are capped at
//! [`MAX_FRAME_BYTES`], and trailing garbage after a well-formed body is
//! an error. Because the body is sealed, any single-byte change to a
//! frame in flight surfaces as [`ProtoError::Seal`] before the body is
//! even parsed — the "detected or harmless" guarantee the `serve-frame`
//! faultlab class asserts.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use daspos_tiers::codec::{self, CodecError};
use daspos_vault::{validate_key, ObjectKind};

/// Magic of a request body: "DASPOS Preservation ReQuest".
pub const REQUEST_MAGIC: &[u8; 4] = b"DPRQ";

/// Magic of a response body: "DASPOS Preservation ReSponse".
pub const RESPONSE_MAGIC: &[u8; 4] = b"DPRS";

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on one sealed frame body (seal overhead included). Keeps a
/// hostile length prefix from pinning server memory.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Longest accepted tenant name.
pub const MAX_TENANT_LEN: usize = 64;

/// Largest chunk a streamed PUT/GET may carry in one frame: the frame
/// cap minus generous room for the request envelope and the seal.
pub const MAX_CHUNK_BYTES: usize = MAX_FRAME_BYTES - 4096;

/// Chunk size streamed transfers use when the caller does not choose.
pub const DEFAULT_CHUNK_BYTES: usize = 4 * 1024 * 1024;

/// The operations a client can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Store a payload under `tenant/key`.
    Put = 1,
    /// Fetch the payload stored under `tenant/key`.
    Get = 2,
    /// Integrity-check the object (no repair); payload echoes the report.
    Verify = 3,
    /// Scrub the whole vault (repairing); payload carries the report.
    Scrub = 4,
    /// Server statistics (object count, op counters) as text.
    Stat = 5,
    /// Ask the server to drain in-flight work and exit.
    Shutdown = 6,
    /// Open a streamed multi-frame PUT; the response detail carries the
    /// server-assigned stream id.
    PutBegin = 7,
    /// Append one chunk to an open put-stream (key = stream id).
    PutChunk = 8,
    /// Close an open put-stream: the server re-reads every staged chunk,
    /// folds the object digest and publishes the object atomically.
    PutCommit = 9,
    /// Abandon an open put-stream and reclaim its staged chunks.
    PutAbort = 10,
    /// Open a streamed GET: the response payload describes the object's
    /// chunking (total length, chunk size, chunk count, fnv64 digest).
    GetBegin = 11,
    /// Fetch one chunk of an object by sequence number.
    GetChunk = 12,
}

impl Op {
    /// All ops, in wire order.
    pub const ALL: [Op; 12] = [
        Op::Put,
        Op::Get,
        Op::Verify,
        Op::Scrub,
        Op::Stat,
        Op::Shutdown,
        Op::PutBegin,
        Op::PutChunk,
        Op::PutCommit,
        Op::PutAbort,
        Op::GetBegin,
        Op::GetChunk,
    ];

    /// The wire discriminant.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.as_u8() == v)
    }

    /// Stable lowercase label used in counters (`serve.ops.put`, …) and
    /// loadgen reports.
    pub fn name(self) -> &'static str {
        match self {
            Op::Put => "put",
            Op::Get => "get",
            Op::Verify => "verify",
            Op::Scrub => "scrub",
            Op::Stat => "stat",
            Op::Shutdown => "shutdown",
            Op::PutBegin => "put-begin",
            Op::PutChunk => "put-chunk",
            Op::PutCommit => "put-commit",
            Op::PutAbort => "put-abort",
            Op::GetBegin => "get-begin",
            Op::GetChunk => "get-chunk",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome carried by a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The operation succeeded; the payload (if any) is valid.
    Ok = 0,
    /// No object stored under the tenant/key.
    NotFound = 1,
    /// Copies exist but none passed integrity checks.
    Damaged = 2,
    /// The admission gate rejected the request; retry later.
    Overloaded = 3,
    /// The request was malformed (bad tenant, bad key, unknown op).
    BadRequest = 4,
    /// The server failed internally (storage fault after retries).
    ServerError = 5,
    /// A per-tenant quota (stored bytes, in-flight ops, or ops/sec)
    /// rejected the op. Unlike `Overloaded` this names *this* tenant's
    /// budget: other tenants are unaffected and an immediate retry will
    /// not help until the budget frees.
    QuotaExceeded = 6,
}

impl Status {
    /// All statuses, in wire order.
    pub const ALL: [Status; 7] = [
        Status::Ok,
        Status::NotFound,
        Status::Damaged,
        Status::Overloaded,
        Status::BadRequest,
        Status::ServerError,
        Status::QuotaExceeded,
    ];

    /// The wire discriminant.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Status> {
        Status::ALL.into_iter().find(|s| s.as_u8() == v)
    }

    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NotFound => "not-found",
            Status::Damaged => "damaged",
            Status::Overloaded => "overloaded",
            Status::BadRequest => "bad-request",
            Status::ServerError => "server-error",
            Status::QuotaExceeded => "quota-exceeded",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A protocol-level failure: the frame could not be trusted or parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before the declared structure was complete.
    Truncated,
    /// The body does not start with the expected DPRQ/DPRS magic.
    BadMagic,
    /// The frame speaks a protocol version this build does not.
    UnsupportedVersion {
        /// Version found in the frame.
        found: u16,
    },
    /// The op byte is not a known operation.
    UnknownOp(u8),
    /// The kind byte is not a known object kind.
    UnknownKind(u8),
    /// The status byte is not a known status.
    UnknownStatus(u8),
    /// The tenant name violates the tenant alphabet.
    BadTenant(String),
    /// The object key violates the storage-key alphabet (or the
    /// composed `tenant.key` would).
    BadKey(String),
    /// A declared length exceeds the frame cap.
    Oversized {
        /// Bytes the frame declared.
        declared: usize,
        /// The enforced cap.
        limit: usize,
    },
    /// Well-formed body followed by trailing garbage.
    TrailingBytes(usize),
    /// A tenant/key/detail field is not valid UTF-8.
    BadText,
    /// The DPSL seal around the body failed to verify.
    Seal(CodecError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => f.write_str("frame truncated mid-structure"),
            ProtoError::BadMagic => f.write_str("bad frame magic (not a DPRQ/DPRS body)"),
            ProtoError::UnsupportedVersion { found } => write!(
                f,
                "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
            ),
            ProtoError::UnknownOp(v) => write!(f, "unknown op byte {v:#04x}"),
            ProtoError::UnknownKind(v) => write!(f, "unknown object-kind byte {v:#04x}"),
            ProtoError::UnknownStatus(v) => write!(f, "unknown status byte {v:#04x}"),
            ProtoError::BadTenant(t) => write!(f, "invalid tenant name '{t}'"),
            ProtoError::BadKey(k) => write!(f, "invalid object key '{k}'"),
            ProtoError::Oversized { declared, limit } => {
                write!(f, "declared length {declared} exceeds frame cap {limit}")
            }
            ProtoError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after a complete body")
            }
            ProtoError::BadText => f.write_str("text field is not valid UTF-8"),
            ProtoError::Seal(e) => write!(f, "frame seal rejected: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// Stable short category name, the vocabulary the `serve-frame`
    /// fault class histograms detections under (mirrors
    /// `CodecError::category()` for the seal layer).
    pub fn category(&self) -> &'static str {
        match self {
            ProtoError::Truncated => "framing",
            ProtoError::BadMagic => "magic",
            ProtoError::UnsupportedVersion { .. } => "version",
            ProtoError::UnknownOp(_)
            | ProtoError::UnknownKind(_)
            | ProtoError::UnknownStatus(_)
            | ProtoError::BadTenant(_)
            | ProtoError::BadKey(_)
            | ProtoError::Oversized { .. }
            | ProtoError::TrailingBytes(_)
            | ProtoError::BadText => "structure",
            ProtoError::Seal(e) => e.category().name(),
        }
    }
}

/// Tenants are the namespace axis, so their alphabet is strictly
/// narrower than the storage-key alphabet: lowercase alphanumerics and
/// dashes only, 1–[`MAX_TENANT_LEN`] bytes, **no dots**. The composed
/// storage key is `{tenant}.{key}`; because a tenant can never contain a
/// dot, the first dot always splits the pair back unambiguously.
pub fn validate_tenant(tenant: &str) -> Result<(), ProtoError> {
    let ok = !tenant.is_empty()
        && tenant.len() <= MAX_TENANT_LEN
        && tenant
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(ProtoError::BadTenant(tenant.to_string()))
    }
}

/// Compose the backend storage key for a tenant's object, validating
/// both halves (and the composed key against the backend alphabet).
/// The `..` sequence is reserved: the streaming layer stores an
/// object's chunk records under `{tenant}.{key}..g<gen>.c<seq>`, so a
/// client-supplied key may never contain two consecutive dots.
pub fn storage_key(tenant: &str, key: &str) -> Result<String, ProtoError> {
    validate_tenant(tenant)?;
    if key.is_empty() || key.contains("..") {
        return Err(ProtoError::BadKey(key.to_string()));
    }
    let composed = format!("{tenant}.{key}");
    validate_key(&composed).map_err(|_| ProtoError::BadKey(key.to_string()))?;
    Ok(composed)
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The requested operation.
    pub op: Op,
    /// Object kind (meaningful for `Put`; `Opaque` elsewhere).
    pub kind: ObjectKind,
    /// The tenant namespace the op runs in.
    pub tenant: String,
    /// The object key within the tenant (empty for vault-wide ops).
    pub key: String,
    /// The payload (`Put` bytes; empty elsewhere).
    pub payload: Bytes,
}

impl Request {
    /// A payload-free request (get/verify/scrub/stat/shutdown).
    pub fn control(op: Op, tenant: &str, key: &str) -> Request {
        Request {
            op,
            kind: ObjectKind::Opaque,
            tenant: tenant.to_string(),
            key: key.to_string(),
            payload: Bytes::new(),
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the op this responds to.
    pub op: Op,
    /// The outcome.
    pub status: Status,
    /// Human-readable diagnostics (error reasons, report text).
    pub detail: String,
    /// The payload (`Get` bytes; empty or report text elsewhere).
    pub payload: Bytes,
}

impl Response {
    /// A payload-free response.
    pub fn status_only(op: Op, status: Status, detail: impl Into<String>) -> Response {
        Response {
            op,
            status,
            detail: detail.into(),
            payload: Bytes::new(),
        }
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), ProtoError> {
    if buf.remaining() < n {
        Err(ProtoError::Truncated)
    } else {
        Ok(())
    }
}

/// Read a length-prefixed field, clamping the declared length by the
/// bytes actually remaining *before* slicing — a forged length cannot
/// drive an allocation.
fn take(buf: &mut Bytes, declared: usize) -> Result<Bytes, ProtoError> {
    if declared > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized {
            declared,
            limit: MAX_FRAME_BYTES,
        });
    }
    need(buf, declared)?;
    Ok(buf.split_to(declared))
}

fn take_text(buf: &mut Bytes, declared: usize) -> Result<String, ProtoError> {
    let raw = take(buf, declared)?;
    String::from_utf8(raw.to_vec()).map_err(|_| ProtoError::BadText)
}

/// Serialize and seal a request into one wire frame (length prefix
/// included).
pub fn encode_request(req: &Request) -> Bytes {
    let mut body = BytesMut::with_capacity(
        16 + req.tenant.len() + req.key.len() + req.payload.len(),
    );
    body.put_slice(REQUEST_MAGIC);
    body.put_u16_le(PROTOCOL_VERSION);
    body.put_u8(req.op.as_u8());
    body.put_u8(req.kind.as_u8());
    body.put_u16_le(req.tenant.len() as u16);
    body.put_slice(req.tenant.as_bytes());
    body.put_u16_le(req.key.len() as u16);
    body.put_slice(req.key.as_bytes());
    body.put_u32_le(req.payload.len() as u32);
    body.put_slice(&req.payload);
    frame(&body.freeze())
}

/// Serialize and seal a response into one wire frame (length prefix
/// included).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut body =
        BytesMut::with_capacity(16 + resp.detail.len() + resp.payload.len());
    body.put_slice(RESPONSE_MAGIC);
    body.put_u16_le(PROTOCOL_VERSION);
    body.put_u8(resp.op.as_u8());
    body.put_u8(resp.status.as_u8());
    body.put_u16_le(resp.detail.len() as u16);
    body.put_slice(resp.detail.as_bytes());
    body.put_u32_le(resp.payload.len() as u32);
    body.put_slice(&resp.payload);
    frame(&body.freeze())
}

/// Seal a body and prepend the u32 frame-length prefix.
fn frame(body: &Bytes) -> Bytes {
    let sealed = codec::seal(body);
    let mut out = BytesMut::with_capacity(4 + sealed.len());
    out.put_u32_le(sealed.len() as u32);
    out.put_slice(&sealed);
    out.freeze()
}

/// Unseal a frame body (the bytes *after* the length prefix) and hand
/// back the plain body for parsing.
fn unseal_body(sealed: &Bytes) -> Result<Bytes, ProtoError> {
    if sealed.len() > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized {
            declared: sealed.len(),
            limit: MAX_FRAME_BYTES,
        });
    }
    codec::unseal(sealed).map_err(ProtoError::Seal)
}

fn decode_prologue(
    body: &mut Bytes,
    magic: &[u8; 4],
) -> Result<(u8, u8), ProtoError> {
    need(body, 8)?;
    let got = body.split_to(4);
    if got.as_slice() != magic {
        return Err(ProtoError::BadMagic);
    }
    let version = body.get_u16_le();
    if version != PROTOCOL_VERSION {
        return Err(ProtoError::UnsupportedVersion { found: version });
    }
    Ok((body.get_u8(), body.get_u8()))
}

/// Parse a sealed request frame body. Validates the seal, the structure,
/// the tenant/key alphabets, and that nothing trails the body.
pub fn decode_request(sealed: &Bytes) -> Result<Request, ProtoError> {
    let mut body = unseal_body(sealed)?;
    let (op_byte, kind_byte) = decode_prologue(&mut body, REQUEST_MAGIC)?;
    let op = Op::from_u8(op_byte).ok_or(ProtoError::UnknownOp(op_byte))?;
    let kind = ObjectKind::from_u8(kind_byte).ok_or(ProtoError::UnknownKind(kind_byte))?;
    need(&body, 2)?;
    let tenant_len = body.get_u16_le() as usize;
    let tenant = take_text(&mut body, tenant_len)?;
    need(&body, 2)?;
    let key_len = body.get_u16_le() as usize;
    let key = take_text(&mut body, key_len)?;
    need(&body, 4)?;
    let payload_len = body.get_u32_le() as usize;
    let payload = take(&mut body, payload_len)?;
    if !body.is_empty() {
        return Err(ProtoError::TrailingBytes(body.len()));
    }
    validate_tenant(&tenant)?;
    if op != Op::Shutdown && op != Op::Stat && op != Op::Scrub {
        // Keyed ops must name a storable object.
        storage_key(&tenant, &key)?;
    }
    Ok(Request {
        op,
        kind,
        tenant,
        key,
        payload,
    })
}

/// Parse a sealed response frame body.
pub fn decode_response(sealed: &Bytes) -> Result<Response, ProtoError> {
    let mut body = unseal_body(sealed)?;
    let (op_byte, status_byte) = decode_prologue(&mut body, RESPONSE_MAGIC)?;
    let op = Op::from_u8(op_byte).ok_or(ProtoError::UnknownOp(op_byte))?;
    let status =
        Status::from_u8(status_byte).ok_or(ProtoError::UnknownStatus(status_byte))?;
    need(&body, 2)?;
    let detail_len = body.get_u16_le() as usize;
    let detail = take_text(&mut body, detail_len)?;
    need(&body, 4)?;
    let payload_len = body.get_u32_le() as usize;
    let payload = take(&mut body, payload_len)?;
    if !body.is_empty() {
        return Err(ProtoError::TrailingBytes(body.len()));
    }
    Ok(Response {
        op,
        status,
        detail,
        payload,
    })
}

/// Split one wire frame into its sealed body, checking the length prefix
/// against the cap and the bytes present. Returns the sealed body and
/// the total frame size consumed. Used by tests and the fault class; the
/// live server reads the prefix straight off the socket.
pub fn split_frame(wire: &Bytes) -> Result<(Bytes, usize), ProtoError> {
    let mut b = wire.clone();
    need(&b, 4)?;
    let declared = b.get_u32_le() as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized {
            declared,
            limit: MAX_FRAME_BYTES,
        });
    }
    need(&b, declared)?;
    Ok((b.split_to(declared), 4 + declared))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            op: Op::Put,
            kind: ObjectKind::SealedTier,
            tenant: "cms-higgs".to_string(),
            key: "aod-0001.dpef".to_string(),
            payload: Bytes::from_static(b"sealed tier bytes"),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let wire = encode_request(&req);
        let (sealed, used) = split_frame(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(decode_request(&sealed).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            op: Op::Get,
            status: Status::Ok,
            detail: "kind=sealed-tier".to_string(),
            payload: Bytes::from_static(b"object bytes"),
        };
        let wire = encode_response(&resp);
        let (sealed, _) = split_frame(&wire).unwrap();
        assert_eq!(decode_response(&sealed).unwrap(), resp);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let wire = encode_request(&sample_request());
        let (sealed, _) = split_frame(&wire).unwrap();
        for i in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.to_vec();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_request(&Bytes::from(bad)).is_err(),
                    "flip bit {bit} of byte {i} must not decode"
                );
            }
        }
    }

    #[test]
    fn truncations_are_detected() {
        let wire = encode_request(&sample_request());
        let (sealed, _) = split_frame(&wire).unwrap();
        for cut in 0..sealed.len() {
            let bad = sealed.slice(0..cut);
            assert!(decode_request(&bad).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn forged_lengths_do_not_allocate_or_decode() {
        // Re-seal a body whose payload length claims 10 MB on a tiny
        // frame: the seal verifies (we forged it honestly) so the parser
        // itself must catch the lie.
        let mut body = BytesMut::new();
        body.put_slice(REQUEST_MAGIC);
        body.put_u16_le(PROTOCOL_VERSION);
        body.put_u8(Op::Put.as_u8());
        body.put_u8(0);
        body.put_u16_le(1);
        body.put_slice(b"t");
        body.put_u16_le(1);
        body.put_slice(b"k");
        body.put_u32_le(10_000_000);
        body.put_slice(b"tiny");
        let sealed = codec::seal(&body.freeze());
        assert_eq!(
            decode_request(&sealed),
            Err(ProtoError::Truncated),
            "declared 10MB on 4 bytes must error, not allocate"
        );
    }

    #[test]
    fn oversized_frame_prefix_is_rejected() {
        let mut wire = BytesMut::new();
        wire.put_u32_le((MAX_FRAME_BYTES + 1) as u32);
        let err = split_frame(&wire.freeze()).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { .. }));
    }

    #[test]
    fn tenant_alphabet_is_enforced() {
        for good in ["cms", "atlas-run2", "t0", "a-b-c-9"] {
            validate_tenant(good).unwrap();
        }
        for bad in ["", "CMS", "with.dot", "under_score", "sp ace", &"x".repeat(65)] {
            assert!(validate_tenant(bad).is_err(), "tenant {bad:?} must fail");
        }
    }

    #[test]
    fn storage_key_composes_and_splits_unambiguously() {
        assert_eq!(storage_key("cms", "aod.dpef").unwrap(), "cms.aod.dpef");
        // A tenant can never contain a dot, so the first dot always
        // recovers the tenant.
        let composed = storage_key("atlas-run2", "x.y.z").unwrap();
        let (tenant, key) = composed.split_once('.').unwrap();
        assert_eq!((tenant, key), ("atlas-run2", "x.y.z"));
        assert!(storage_key("cms", "").is_err());
        assert!(storage_key("cms", "bad/slash").is_err());
        assert!(storage_key("", "k").is_err());
    }

    #[test]
    fn double_dot_keys_are_reserved_for_the_streaming_layer() {
        assert!(storage_key("cms", "a..b").is_err());
        assert!(storage_key("cms", "a..g1.c0").is_err());
        assert!(storage_key("cms", "..x").is_err());
        // A single interior dot stays legal.
        storage_key("cms", "a.b").unwrap();
    }

    #[test]
    fn stream_ops_round_trip_and_carry_distinct_discriminants() {
        let mut seen = std::collections::BTreeSet::new();
        for op in Op::ALL {
            assert!(seen.insert(op.as_u8()), "duplicate discriminant for {op}");
            assert_eq!(Op::from_u8(op.as_u8()), Some(op));
            let req = Request {
                op,
                kind: ObjectKind::Opaque,
                tenant: "cms".to_string(),
                key: "42".to_string(),
                payload: Bytes::from_static(b"\x01\x00\x00\x00chunk"),
            };
            let wire = encode_request(&req);
            let (sealed, _) = split_frame(&wire).unwrap();
            assert_eq!(decode_request(&sealed).unwrap(), req);
        }
        assert_eq!(Op::ALL.len(), 12);
        assert_eq!(Status::ALL.len(), 7);
        assert_eq!(Status::from_u8(6), Some(Status::QuotaExceeded));
        assert_eq!(Status::QuotaExceeded.name(), "quota-exceeded");
    }

    #[test]
    fn wrong_version_and_unknown_bytes_are_typed() {
        let mut body = BytesMut::new();
        body.put_slice(REQUEST_MAGIC);
        body.put_u16_le(99);
        body.put_u8(1);
        body.put_u8(0);
        let sealed = codec::seal(&body.freeze());
        assert_eq!(
            decode_request(&sealed),
            Err(ProtoError::UnsupportedVersion { found: 99 })
        );

        let mut req = sample_request();
        req.op = Op::Put;
        let wire = encode_request(&req);
        let (sealed, _) = split_frame(&wire).unwrap();
        // Rebuild with an unknown op byte, sealed honestly.
        let mut body = codec::unseal(&sealed).unwrap().to_vec();
        body[6] = 0xEE;
        let resealed = codec::seal(&Bytes::from(body));
        assert_eq!(
            decode_request(&resealed),
            Err(ProtoError::UnknownOp(0xEE))
        );
    }

    #[test]
    fn categories_cover_the_failure_taxonomy() {
        assert_eq!(ProtoError::Truncated.category(), "framing");
        assert_eq!(ProtoError::BadMagic.category(), "magic");
        assert_eq!(
            ProtoError::UnsupportedVersion { found: 9 }.category(),
            "version"
        );
        assert_eq!(ProtoError::UnknownOp(7).category(), "structure");
        assert_eq!(
            ProtoError::Seal(CodecError::SealMismatch {
                stored: 1,
                actual: 2
            })
            .category(),
            "integrity"
        );
    }
}
