//! The multi-tenant preservation service: admission-controlled op
//! handling over a shared [`Vault`], plus the TCP front-end.
//!
//! The design splits cleanly in two:
//!
//! - [`Service`] — the transport-free core. It owns the vault, the
//!   admission gate (a bounded in-flight-op counter; requests over the
//!   bound get a typed `Overloaded` response instead of queueing), the
//!   shutdown flag, and the op handlers. [`Service::handle_wire`] takes
//!   one sealed frame body and returns one encoded response frame, which
//!   is exactly the surface the `serve-frame` fault class attacks
//!   in-process: any mutation must come back as a typed error response
//!   without panicking or touching tenant state.
//! - [`Server`] — the TCP loop. A nonblocking accept thread hands each
//!   connection to its own handler thread (thread-per-connection over
//!   the shared service), and a background scrubber walks one object per
//!   tick, *yielding* whenever foreground ops are in flight
//!   (`serve.scrub.yields`).
//!
//! Graceful shutdown: the `Shutdown` op (or [`Service::request_shutdown`])
//! flips the flag; the accept loop stops taking connections, every
//! handler finishes and answers the request it is currently processing —
//! accepted work is never dropped — and then closes; [`Server::join`]
//! reaps all of it.

use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use daspos_obs::Obs;
use daspos_vault::{Vault, VaultError};

use crate::proto::{
    decode_request, encode_response, storage_key, Op, ProtoError, Request, Response, Status,
};
use crate::wire::{self, ReadFrame, WireError};

/// Deterministic fault hooks for exit-code and failure-path testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// Flip one payload byte of every successful GET *before* the
    /// response is sealed: the frame arrives intact, so only a client's
    /// deep verification (byte-comparing against what it stored) can
    /// catch it.
    FlipGet,
}

impl Chaos {
    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Chaos> {
        match s {
            "flip-get" => Some(Chaos::FlipGet),
            _ => None,
        }
    }
}

/// Tuning for a [`Service`] / [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum ops processed concurrently before the admission gate
    /// answers `Overloaded`.
    pub max_inflight: usize,
    /// Background scrub cadence; `Duration::ZERO` disables the scrubber.
    pub scrub_interval: Duration,
    /// Optional fault hook.
    pub chaos: Option<Chaos>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_inflight: 64,
            scrub_interval: Duration::from_millis(20),
            chaos: None,
        }
    }
}

/// A serve-layer failure (transport, backpressure, or a remote error
/// status a caller chose to surface as an error).
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS-level reason.
        reason: String,
    },
    /// A socket-level failure.
    Io(String),
    /// The peer sent a frame that failed protocol validation.
    Proto(ProtoError),
    /// The server's admission gate rejected the op.
    Overloaded {
        /// The rejected op.
        op: Op,
        /// Server-provided detail.
        detail: String,
    },
    /// The server answered with a non-OK, non-overloaded status.
    Remote {
        /// The op that failed.
        op: Op,
        /// The status the server returned.
        status: Status,
        /// Server-provided detail.
        detail: String,
    },
    /// A response decoded fine but failed deep verification
    /// (byte-identity against what the client stored).
    Verification(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, reason } => write!(f, "cannot bind {addr}: {reason}"),
            ServeError::Io(msg) => write!(f, "serve i/o failure: {msg}"),
            ServeError::Proto(e) => write!(f, "serve protocol failure: {e}"),
            ServeError::Overloaded { op, detail } => {
                write!(f, "server overloaded (op {op}): {detail}")
            }
            ServeError::Remote { op, status, detail } => {
                write!(f, "server rejected {op}: {status}: {detail}")
            }
            ServeError::Verification(msg) => write!(f, "deep verification failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        match e {
            WireError::Io(e) => ServeError::Io(e.to_string()),
            WireError::Proto(e) => ServeError::Proto(e),
        }
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> ServeError {
        ServeError::Proto(e)
    }
}

/// Cumulative op counters, readable without the metrics registry.
#[derive(Debug, Default)]
pub struct ServiceStats {
    ops: AtomicU64,
    rejected: AtomicU64,
    scrub_steps: AtomicU64,
    scrub_yields: AtomicU64,
}

/// The transport-free service core: vault + admission gate + handlers.
pub struct Service {
    vault: Vault,
    obs: Obs,
    max_inflight: usize,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    chaos: Option<Chaos>,
    scrub_cursor: Mutex<usize>,
    stats: ServiceStats,
}

/// RAII slot in the admission gate.
struct Admission<'a>(&'a AtomicUsize);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Service {
    /// Wrap a vault in a service. The vault's own `Obs` keeps working;
    /// `obs` here carries the serve-layer spans and counters.
    pub fn new(vault: Vault, cfg: &ServeConfig, obs: Obs) -> Service {
        Service {
            vault,
            obs,
            max_inflight: cfg.max_inflight.max(1),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            chaos: cfg.chaos,
            scrub_cursor: Mutex::new(0),
            stats: ServiceStats::default(),
        }
    }

    /// The shared vault (tests seed corruption through replicas, not
    /// through this).
    pub fn vault(&self) -> &Vault {
        &self.vault
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Ops currently being processed.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask every loop holding this service to drain and exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn counter(&self, name: &str, n: u64) {
        if let Some(reg) = self.obs.registry() {
            reg.add(name, n);
        }
    }

    fn try_admit(&self) -> Option<Admission<'_>> {
        let admitted = self
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if n < self.max_inflight {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if admitted {
            Some(Admission(&self.inflight))
        } else {
            None
        }
    }

    /// Handle one sealed request frame body end-to-end: decode, admit,
    /// execute, encode. Returns the encoded response *frame* plus
    /// whether the connection should close (protocol errors desync the
    /// stream, so they answer once and hang up). Never panics on
    /// malformed input — that is the `serve-frame` campaign invariant.
    pub fn handle_wire(&self, sealed: &Bytes) -> (Bytes, bool) {
        match decode_request(sealed) {
            Ok(req) => {
                let resp = self.handle(&req);
                (encode_response(&resp), false)
            }
            Err(e) => {
                let resp = Response::status_only(
                    Op::Stat,
                    Status::BadRequest,
                    format!("{} [{}]", e, e.category()),
                );
                (encode_response(&resp), true)
            }
        }
    }

    /// Execute one decoded request under the admission gate.
    pub fn handle(&self, req: &Request) -> Response {
        // Shutdown must stay deliverable even at full load, or a
        // saturated server could never be stopped cleanly.
        let _slot = if req.op == Op::Shutdown {
            None
        } else {
            match self.try_admit() {
                Some(slot) => Some(slot),
                None => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    self.counter("serve.rejected", 1);
                    return Response::status_only(
                        req.op,
                        Status::Overloaded,
                        format!("admission gate full ({} in flight)", self.max_inflight),
                    );
                }
            }
        };
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        self.counter(&format!("serve.ops.{}", req.op.name()), 1);
        let mut span = self
            .obs
            .tracer
            .span_fmt(format_args!("serve/{}", req.op.name()));
        span.field("tenant", &req.tenant);
        if !req.key.is_empty() {
            span.field("key", &req.key);
        }
        let resp = self.dispatch(req);
        span.field("status", resp.status.name());
        span.finish();
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.op {
            Op::Put => self.op_put(req),
            Op::Get => self.op_get(req),
            Op::Verify => self.op_verify(req),
            Op::Scrub => self.op_scrub(req),
            Op::Stat => self.op_stat(req),
            Op::Shutdown => {
                self.request_shutdown();
                Response::status_only(Op::Shutdown, Status::Ok, "draining")
            }
        }
    }

    fn vault_failure(op: Op, e: &VaultError) -> Response {
        let status = match e {
            VaultError::NotFound(_) => Status::NotFound,
            VaultError::Damaged { .. } => Status::Damaged,
            _ => Status::ServerError,
        };
        Response::status_only(op, status, e.to_string())
    }

    fn op_put(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Response::status_only(Op::Put, Status::BadRequest, e.to_string()),
        };
        match self.vault.put(&skey, req.kind, &req.payload) {
            Ok(()) => Response::status_only(Op::Put, Status::Ok, req.kind.name()),
            Err(e) => Self::vault_failure(Op::Put, &e),
        }
    }

    fn op_get(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Response::status_only(Op::Get, Status::BadRequest, e.to_string()),
        };
        match self.vault.get(&skey) {
            Ok((kind, payload)) => {
                let payload = match self.chaos {
                    Some(Chaos::FlipGet) if !payload.is_empty() => {
                        let mut bad = payload.to_vec();
                        bad[0] ^= 0x01;
                        Bytes::from(bad)
                    }
                    _ => payload,
                };
                Response {
                    op: Op::Get,
                    status: Status::Ok,
                    detail: kind.name().to_string(),
                    payload,
                }
            }
            Err(e) => Self::vault_failure(Op::Get, &e),
        }
    }

    fn op_verify(&self, req: &Request) -> Response {
        if req.key.is_empty() {
            return match self.vault.verify() {
                Ok(report) => {
                    let status = if report.corrupt + report.missing == 0 && report.lost.is_empty() {
                        Status::Ok
                    } else {
                        Status::Damaged
                    };
                    Response::status_only(Op::Verify, status, report.to_text())
                }
                Err(e) => Self::vault_failure(Op::Verify, &e),
            };
        }
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Response::status_only(Op::Verify, Status::BadRequest, e.to_string()),
        };
        match self.vault.verify_object(&skey) {
            Ok(report) => {
                let status = if report.corrupt + report.missing == 0 && report.lost.is_empty() {
                    Status::Ok
                } else {
                    Status::Damaged
                };
                Response::status_only(Op::Verify, status, report.to_text())
            }
            Err(e) => Self::vault_failure(Op::Verify, &e),
        }
    }

    fn op_scrub(&self, _req: &Request) -> Response {
        match self.vault.scrub() {
            Ok(report) => {
                let status = if report.clean() {
                    Status::Ok
                } else {
                    Status::Damaged
                };
                Response::status_only(Op::Scrub, status, report.to_text())
            }
            Err(e) => Self::vault_failure(Op::Scrub, &e),
        }
    }

    fn op_stat(&self, req: &Request) -> Response {
        let prefix = format!("{}.", req.tenant);
        let (tenant_objects, total) = match self.vault.keys() {
            Ok(keys) => (
                keys.iter().filter(|k| k.starts_with(&prefix)).count(),
                keys.len(),
            ),
            Err(e) => return Self::vault_failure(Op::Stat, &e),
        };
        Response::status_only(
            Op::Stat,
            Status::Ok,
            format!(
                "tenant={} objects={} total_objects={} replicas={} inflight={} ops={} rejected={}",
                req.tenant,
                tenant_objects,
                total,
                self.vault.replica_count(),
                self.inflight(),
                self.stats.ops(),
                self.stats.rejected(),
            ),
        )
    }

    /// One background-scrub step: if any foreground op is in flight,
    /// yield (count it, touch nothing); otherwise scrub the next object
    /// in round-robin order. Returns whether an object was scrubbed.
    ///
    /// The tick re-checks the admission gate *between* replica
    /// classifications, not just at tick start: a foreground op arriving
    /// mid-object makes the scrubber abandon the object (counted as a
    /// yield) instead of stalling that op behind a full
    /// `replicas × deep-verify` pass — the `serve_mixed` p99 tail.
    pub fn scrub_step(&self) -> Result<bool, VaultError> {
        if self.inflight() > 0 {
            self.stats.scrub_yields.fetch_add(1, Ordering::Relaxed);
            self.counter("serve.scrub.yields", 1);
            return Ok(false);
        }
        let keys = self.vault.keys()?;
        if keys.is_empty() {
            return Ok(false);
        }
        let key = {
            let mut cursor = self.scrub_cursor.lock().unwrap_or_else(|e| e.into_inner());
            let key = keys[*cursor % keys.len()].clone();
            *cursor = (*cursor + 1) % keys.len();
            key
        };
        match self
            .vault
            .scrub_object_while(&key, &|| self.inflight() == 0)?
        {
            None => {
                self.stats.scrub_yields.fetch_add(1, Ordering::Relaxed);
                self.counter("serve.scrub.yields", 1);
                Ok(false)
            }
            Some(_) => {
                self.stats.scrub_steps.fetch_add(1, Ordering::Relaxed);
                self.counter("serve.scrub.objects", 1);
                Ok(true)
            }
        }
    }
}

impl ServiceStats {
    /// Ops admitted and executed.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Ops rejected by the admission gate.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Objects scrubbed by the background scrubber.
    pub fn scrub_steps(&self) -> u64 {
        self.scrub_steps.load(Ordering::Relaxed)
    }

    /// Scrub ticks that yielded to foreground traffic.
    pub fn scrub_yields(&self) -> u64 {
        self.scrub_yields.load(Ordering::Relaxed)
    }
}

/// How often blocked socket reads and the accept loop re-check the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The TCP front-end over a shared [`Service`].
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    accept: Option<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// accept loop and, if `scrub_interval` is nonzero, the scrubber.
    pub fn start(
        service: Arc<Service>,
        addr: &str,
        scrub_interval: Duration,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Bind {
            addr: addr.to_string(),
            reason: e.to_string(),
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let service = service.clone();
            let conns = conns.clone();
            std::thread::spawn(move || accept_loop(listener, service, conns))
        };
        let scrubber = if scrub_interval.is_zero() {
            None
        } else {
            let service = service.clone();
            Some(std::thread::spawn(move || {
                while !service.shutdown_requested() {
                    std::thread::sleep(scrub_interval);
                    // Scrub failures must not kill the daemon; the next
                    // tick (or a client-requested scrub) retries.
                    let _ = service.scrub_step();
                }
            }))
        };
        Ok(Server {
            addr: local,
            service,
            accept: Some(accept),
            scrubber,
            conns,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Block until shutdown has been requested and every loop has
    /// drained: the accept thread, all connection handlers (each
    /// finishes the request it is processing), and the scrubber.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let drained = {
                let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *conns)
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
        if let Some(h) = self.scrubber.take() {
            let _ = h.join();
        }
    }

    /// Request shutdown and [`join`](Server::join).
    pub fn stop(self) {
        self.service.request_shutdown();
        self.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !service.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = service.clone();
                let handle = std::thread::spawn(move || handle_conn(service, stream));
                conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn handle_conn(service: Arc<Service>, mut stream: TcpStream) {
    // Accepted sockets must poll the shutdown flag, so reads time out.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    loop {
        match wire::read_frame(&mut stream) {
            Ok(ReadFrame::Idle) => {
                if service.shutdown_requested() {
                    break;
                }
            }
            Ok(ReadFrame::Eof) => break,
            Ok(ReadFrame::Sealed(sealed)) => {
                let (frame, close) = service.handle_wire(&sealed);
                if wire::write_frame(&mut stream, &frame).is_err() || close {
                    break;
                }
                if service.shutdown_requested() {
                    break;
                }
            }
            Err(WireError::Proto(e)) => {
                // The length prefix itself was hostile; answer once and
                // hang up — the stream cannot be resynchronized.
                let resp = Response::status_only(
                    Op::Stat,
                    Status::BadRequest,
                    format!("{} [{}]", e, e.category()),
                );
                let _ = wire::write_frame(&mut stream, &encode_response(&resp));
                break;
            }
            Err(WireError::Io(_)) => break,
        }
    }
}
