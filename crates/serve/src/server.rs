//! The multi-tenant preservation service: admission-controlled op
//! handling over a shared [`Vault`], plus the TCP front-end.
//!
//! The design splits cleanly in two:
//!
//! - [`Service`] — the transport-free core. It owns the vault, the
//!   admission gates (a bounded global in-flight counter answering
//!   `Overloaded`, plus per-tenant [`Quota`]s — stored bytes, in-flight
//!   ops, an ops/sec token bucket — answering `QuotaExceeded`), the
//!   put-stream table for multi-frame transfers, the shutdown flag, and
//!   the op handlers. [`Service::handle_wire`] takes one sealed frame
//!   body and returns one encoded response frame, which is exactly the
//!   surface the `serve-frame` fault class attacks in-process: any
//!   mutation must come back as a typed error response without
//!   panicking or touching tenant state.
//! - [`Server`] — the TCP loop. A nonblocking accept thread adopts each
//!   connection into a shared ready queue; a fixed pool of
//!   [`pool_size`](ServeConfig::pool_size) workers cycles through the
//!   queue, draining readable bytes, answering complete frames, and
//!   requeueing the connection. Idle connections cost no thread, so N
//!   connections ≫ pool size serve correctly. A background scrubber
//!   walks one object per tick, *yielding* whenever foreground ops are
//!   in flight (`serve.scrub.yields`).
//!
//! Streamed transfers (`PutBegin`/`PutChunk`/`PutCommit`, chunked GET)
//! stage chunk records under a per-stream generation and publish with a
//! single manifest write — see [`crate::stream`] for the wire formats
//! and the commit-time digest re-verification that bounds server memory
//! to O(chunk) regardless of object size.
//!
//! Graceful shutdown: the `Shutdown` op (or [`Service::request_shutdown`])
//! flips the flag; the accept loop stops taking connections, every
//! worker answers the frames already buffered on the connections it
//! drains — accepted work is never dropped — and then exits;
//! [`Server::join`] reaps all of it.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use daspos_obs::Obs;
use daspos_vault::{ObjectKind, Vault, VaultError};

use crate::mux::Conn;
use crate::proto::{
    decode_request, encode_response, storage_key, validate_tenant, Op, ProtoError, Request,
    Response, Status, DEFAULT_CHUNK_BYTES,
};
use crate::stream::{
    self, chunk_key, chunk_prefix, decode_manifest, encode_manifest, fnv64_fold, Manifest,
    StreamInfo, FNV_BASIS,
};
use crate::wire::WireError;

/// Largest chunked object a plain (single-frame) `Get` will reassemble
/// inline; anything bigger is answered `BadRequest` pointing the caller
/// at the streamed GET ops, so one lazy client cannot balloon server
/// memory.
const GET_INLINE_LIMIT: u64 = 8 * 1024 * 1024;

/// Deterministic fault hooks for exit-code and failure-path testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// Flip one payload byte of every successful GET *before* the
    /// response is sealed: the frame arrives intact, so only a client's
    /// deep verification (byte-comparing against what it stored) can
    /// catch it.
    FlipGet,
}

impl Chaos {
    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Chaos> {
        match s {
            "flip-get" => Some(Chaos::FlipGet),
            _ => None,
        }
    }
}

/// Per-tenant resource limits. A field of `0` means *unlimited* for
/// that axis, so `Quota::default()` constrains nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quota {
    /// Logical bytes a tenant may hold (stored objects plus staged
    /// stream chunks). Object *payload* bytes are counted; replication
    /// and envelope overhead are the operator's concern, not the
    /// tenant's.
    pub max_bytes: u64,
    /// Concurrent ops the tenant may have in flight.
    pub max_inflight: u32,
    /// Sustained ops/sec via a token bucket whose burst capacity equals
    /// the rate (the bucket starts full).
    pub ops_per_sec: u32,
}

impl Quota {
    /// No limits on any axis.
    pub const UNLIMITED: Quota = Quota {
        max_bytes: 0,
        max_inflight: 0,
        ops_per_sec: 0,
    };

    /// Whether every axis is unlimited.
    pub fn is_unlimited(&self) -> bool {
        *self == Quota::UNLIMITED
    }

    /// Parse the CLI form `BYTES:INFLIGHT:OPS_PER_SEC` (each `0` =
    /// unlimited), e.g. `1073741824:8:200`.
    pub fn parse(s: &str) -> Option<Quota> {
        let mut parts = s.split(':');
        let max_bytes = parts.next()?.trim().parse().ok()?;
        let max_inflight = parts.next()?.trim().parse().ok()?;
        let ops_per_sec = parts.next()?.trim().parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Quota {
            max_bytes,
            max_inflight,
            ops_per_sec,
        })
    }
}

/// Tuning for a [`Service`] / [`Server`]. Construct via
/// [`ServeConfig::builder`], which validates the combination, or use
/// `Default` for the stock settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    max_inflight: usize,
    pool_size: usize,
    max_streams: usize,
    scrub_interval: Duration,
    chaos: Option<Chaos>,
    default_quota: Quota,
    tenant_quotas: BTreeMap<String, Quota>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_inflight: 64,
            pool_size: 4,
            max_streams: 32,
            scrub_interval: Duration::from_millis(20),
            chaos: None,
            default_quota: Quota::UNLIMITED,
            tenant_quotas: BTreeMap::new(),
        }
    }
}

impl ServeConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: ServeConfig::default(),
        }
    }

    /// Maximum ops processed concurrently before the admission gate
    /// answers `Overloaded`.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Worker threads multiplexing the connection set.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Concurrent open put-streams before `PutBegin` answers
    /// `Overloaded`.
    pub fn max_streams(&self) -> usize {
        self.max_streams
    }

    /// Background scrub cadence; `Duration::ZERO` disables the scrubber.
    pub fn scrub_interval(&self) -> Duration {
        self.scrub_interval
    }

    /// Optional fault hook.
    pub fn chaos(&self) -> Option<Chaos> {
        self.chaos
    }

    /// The quota applied to tenants without an explicit entry.
    pub fn default_quota(&self) -> Quota {
        self.default_quota
    }

    /// The quota governing `tenant`.
    pub fn quota_for(&self, tenant: &str) -> Quota {
        self.tenant_quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// Validating builder for [`ServeConfig`]; every invalid combination is
/// caught at [`build`](ServeConfigBuilder::build) time, not at first
/// request.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Admission-gate bound (must be ≥ 1).
    pub fn max_inflight(mut self, n: usize) -> ServeConfigBuilder {
        self.cfg.max_inflight = n;
        self
    }

    /// Worker-pool size (must be ≥ 1).
    pub fn pool_size(mut self, n: usize) -> ServeConfigBuilder {
        self.cfg.pool_size = n;
        self
    }

    /// Open put-stream bound (must be ≥ 1).
    pub fn max_streams(mut self, n: usize) -> ServeConfigBuilder {
        self.cfg.max_streams = n;
        self
    }

    /// Scrub cadence; `Duration::ZERO` disables the scrubber.
    pub fn scrub_interval(mut self, d: Duration) -> ServeConfigBuilder {
        self.cfg.scrub_interval = d;
        self
    }

    /// Install a deterministic fault hook.
    pub fn chaos(mut self, chaos: Chaos) -> ServeConfigBuilder {
        self.cfg.chaos = Some(chaos);
        self
    }

    /// Quota applied to tenants without an explicit entry.
    pub fn default_quota(mut self, q: Quota) -> ServeConfigBuilder {
        self.cfg.default_quota = q;
        self
    }

    /// Per-tenant quota override (tenant name validated at build time).
    pub fn quota(mut self, tenant: &str, q: Quota) -> ServeConfigBuilder {
        self.cfg.tenant_quotas.insert(tenant.to_string(), q);
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        let cfg = self.cfg;
        if cfg.max_inflight == 0 {
            return Err(ServeError::Config(
                "max-inflight must be at least 1".to_string(),
            ));
        }
        if cfg.pool_size == 0 {
            return Err(ServeError::Config(
                "worker pool size must be at least 1".to_string(),
            ));
        }
        if cfg.max_streams == 0 {
            return Err(ServeError::Config(
                "max open streams must be at least 1".to_string(),
            ));
        }
        for tenant in cfg.tenant_quotas.keys() {
            if let Err(e) = validate_tenant(tenant) {
                return Err(ServeError::Config(format!(
                    "quota tenant {tenant:?} is invalid: {e}"
                )));
            }
        }
        Ok(cfg)
    }
}

/// A serve-layer failure (configuration, transport, backpressure, or a
/// remote error status a caller chose to surface as an error).
#[derive(Debug)]
pub enum ServeError {
    /// An invalid configuration was rejected before anything started.
    Config(String),
    /// The listener could not bind.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS-level reason.
        reason: String,
    },
    /// A socket-level failure.
    Io(String),
    /// The peer sent a frame that failed protocol validation.
    Proto(ProtoError),
    /// The server's admission gate rejected the op.
    Overloaded {
        /// The rejected op.
        op: Op,
        /// Server-provided detail.
        detail: String,
    },
    /// A per-tenant quota rejected the op; retrying will not help until
    /// the tenant frees budget (other tenants are unaffected).
    QuotaExceeded {
        /// The rejected op.
        op: Op,
        /// Server-provided detail naming the exhausted quota.
        detail: String,
    },
    /// The server answered with a non-OK, non-backpressure status.
    Remote {
        /// The op that failed.
        op: Op,
        /// The status the server returned.
        status: Status,
        /// Server-provided detail.
        detail: String,
    },
    /// A response decoded fine but failed deep verification
    /// (byte-identity against what the client stored).
    Verification(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Bind { addr, reason } => write!(f, "cannot bind {addr}: {reason}"),
            ServeError::Io(msg) => write!(f, "serve i/o failure: {msg}"),
            ServeError::Proto(e) => write!(f, "serve protocol failure: {e}"),
            ServeError::Overloaded { op, detail } => {
                write!(f, "server overloaded (op {op}): {detail}")
            }
            ServeError::QuotaExceeded { op, detail } => {
                write!(f, "tenant quota exceeded (op {op}): {detail}")
            }
            ServeError::Remote { op, status, detail } => {
                write!(f, "server rejected {op}: {status}: {detail}")
            }
            ServeError::Verification(msg) => write!(f, "deep verification failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        match e {
            WireError::Io(e) => ServeError::Io(e.to_string()),
            WireError::Proto(e) => ServeError::Proto(e),
        }
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> ServeError {
        ServeError::Proto(e)
    }
}

/// Cumulative op counters, readable without the metrics registry.
#[derive(Debug, Default)]
pub struct ServiceStats {
    ops: AtomicU64,
    rejected: AtomicU64,
    quota_rejected: AtomicU64,
    scrub_steps: AtomicU64,
    scrub_yields: AtomicU64,
    streams_opened: AtomicU64,
    streams_committed: AtomicU64,
    streams_aborted: AtomicU64,
    stream_chunk_high_water: AtomicU64,
}

impl ServiceStats {
    /// Ops admitted and executed.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Ops rejected by the global admission gate.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Ops rejected by a per-tenant quota.
    pub fn quota_rejected(&self) -> u64 {
        self.quota_rejected.load(Ordering::Relaxed)
    }

    /// Objects scrubbed by the background scrubber.
    pub fn scrub_steps(&self) -> u64 {
        self.scrub_steps.load(Ordering::Relaxed)
    }

    /// Scrub ticks that yielded to foreground traffic.
    pub fn scrub_yields(&self) -> u64 {
        self.scrub_yields.load(Ordering::Relaxed)
    }

    /// Put-streams opened.
    pub fn streams_opened(&self) -> u64 {
        self.streams_opened.load(Ordering::Relaxed)
    }

    /// Put-streams committed (object published).
    pub fn streams_committed(&self) -> u64 {
        self.streams_committed.load(Ordering::Relaxed)
    }

    /// Put-streams aborted (by request or by a failed commit).
    pub fn streams_aborted(&self) -> u64 {
        self.streams_aborted.load(Ordering::Relaxed)
    }

    /// Largest single staged chunk, in bytes — the server-side peak
    /// buffering proof: streaming a 64 MiB object must leave this at
    /// the chunk size, not the object size.
    pub fn stream_chunk_high_water(&self) -> u64 {
        self.stream_chunk_high_water.load(Ordering::Relaxed)
    }
}

/// An open multi-frame put: where chunks stage and what the next one
/// must look like.
struct PutStream {
    tenant: String,
    composed: String,
    kind: ObjectKind,
    chunk_size: u32,
    gen: u64,
    next_seq: u32,
    staged_bytes: u64,
    /// A short (final) chunk has been staged; nothing may follow it.
    short_seen: bool,
}

/// Mutable per-tenant quota accounting, all under one lock so stored
/// and staged bytes can never be observed mid-move.
struct TenantState {
    stored: u64,
    staged: u64,
    inflight: u32,
    tokens: f64,
    last_refill: Instant,
}

#[derive(Default)]
struct Ledger {
    tenants: HashMap<String, TenantState>,
    /// Logical size of every object this service wrote, by composed
    /// key — what lets an overwrite charge only the delta.
    sizes: HashMap<String, u64>,
}

impl Ledger {
    fn tenant_mut(&mut self, tenant: &str, quota: &Quota) -> &mut TenantState {
        self.tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                stored: 0,
                staged: 0,
                inflight: 0,
                tokens: f64::from(quota.ops_per_sec),
                last_refill: Instant::now(),
            })
    }
}

/// The transport-free service core: vault + admission gates + stream
/// table + handlers.
pub struct Service {
    vault: Vault,
    obs: Obs,
    config: ServeConfig,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    scrub_cursor: Mutex<usize>,
    stats: ServiceStats,
    next_stream: AtomicU64,
    streams: Mutex<HashMap<u64, PutStream>>,
    ledger: Mutex<Ledger>,
}

/// RAII slot in the global admission gate.
struct Admission<'a>(&'a AtomicUsize);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII slot in a tenant's in-flight quota.
struct TenantSlot<'a> {
    service: &'a Service,
    tenant: &'a str,
}

impl Drop for TenantSlot<'_> {
    fn drop(&mut self) {
        let mut led = self.service.ledger.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(st) = led.tenants.get_mut(self.tenant) {
            st.inflight = st.inflight.saturating_sub(1);
        }
    }
}

impl Service {
    /// Wrap a vault in a service. The vault's own `Obs` keeps working;
    /// `obs` here carries the serve-layer spans and counters.
    pub fn new(vault: Vault, cfg: &ServeConfig, obs: Obs) -> Service {
        Service {
            vault,
            obs,
            config: cfg.clone(),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            scrub_cursor: Mutex::new(0),
            stats: ServiceStats::default(),
            next_stream: AtomicU64::new(1),
            streams: Mutex::new(HashMap::new()),
            ledger: Mutex::new(Ledger::default()),
        }
    }

    /// The shared vault (tests seed corruption through replicas, not
    /// through this).
    pub fn vault(&self) -> &Vault {
        &self.vault
    }

    /// The config this service was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Ops currently being processed.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Put-streams currently open.
    pub fn open_streams(&self) -> usize {
        self.streams.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Ask every loop holding this service to drain and exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn counter(&self, name: &str, n: u64) {
        if let Some(reg) = self.obs.registry() {
            reg.add(name, n);
        }
    }

    fn try_admit(&self) -> Option<Admission<'_>> {
        let admitted = self
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if n < self.config.max_inflight() {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if admitted {
            Some(Admission(&self.inflight))
        } else {
            None
        }
    }

    /// Per-tenant admission: charge the token bucket, then claim an
    /// in-flight slot. Byte quotas are charged where bytes actually
    /// move (put / chunk / commit), not here.
    fn admit_tenant<'a>(&'a self, tenant: &'a str) -> Result<Option<TenantSlot<'a>>, String> {
        let quota = self.config.quota_for(tenant);
        if quota.ops_per_sec == 0 && quota.max_inflight == 0 {
            return Ok(None);
        }
        let mut led = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let st = led.tenant_mut(tenant, &quota);
        if quota.ops_per_sec > 0 {
            let now = Instant::now();
            let rate = f64::from(quota.ops_per_sec);
            st.tokens = (st.tokens + now.duration_since(st.last_refill).as_secs_f64() * rate)
                .min(rate);
            st.last_refill = now;
            if st.tokens < 1.0 {
                return Err(format!(
                    "tenant {tenant}: ops/sec quota exhausted ({} ops/s)",
                    quota.ops_per_sec
                ));
            }
            st.tokens -= 1.0;
        }
        if quota.max_inflight > 0 {
            if st.inflight >= quota.max_inflight {
                return Err(format!(
                    "tenant {tenant}: in-flight quota exhausted ({} ops)",
                    quota.max_inflight
                ));
            }
            st.inflight += 1;
            return Ok(Some(TenantSlot {
                service: self,
                tenant,
            }));
        }
        Ok(None)
    }

    /// Would storing `new_len` bytes at `composed` push the tenant over
    /// its byte quota? (`None` = fits.)
    fn bytes_check(&self, tenant: &str, composed: Option<&str>, new_len: u64) -> Option<String> {
        let quota = self.config.quota_for(tenant);
        if quota.max_bytes == 0 {
            return None;
        }
        let mut led = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let old = composed
            .and_then(|c| led.sizes.get(c).copied())
            .unwrap_or(0);
        let st = led.tenant_mut(tenant, &quota);
        let projected = st.stored.saturating_sub(old) + st.staged + new_len;
        if projected > quota.max_bytes {
            return Some(format!(
                "tenant {tenant}: byte quota exhausted ({projected} of {} bytes)",
                quota.max_bytes
            ));
        }
        None
    }

    /// Record a successful whole-object write of `new_len` bytes.
    fn settle_stored(&self, tenant: &str, composed: &str, new_len: u64) {
        let quota = self.config.quota_for(tenant);
        let mut led = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let old = led.sizes.insert(composed.to_string(), new_len).unwrap_or(0);
        let st = led.tenant_mut(tenant, &quota);
        st.stored = st.stored.saturating_sub(old) + new_len;
    }

    /// Record a successfully staged chunk.
    fn settle_staged(&self, tenant: &str, n: u64) {
        let quota = self.config.quota_for(tenant);
        let mut led = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let st = led.tenant_mut(tenant, &quota);
        st.staged += n;
    }

    /// Release a stream's staged bytes (commit moves them to stored,
    /// abort just drops them).
    fn release_staged(&self, tenant: &str, n: u64) {
        let quota = self.config.quota_for(tenant);
        let mut led = self.ledger.lock().unwrap_or_else(|e| e.into_inner());
        let st = led.tenant_mut(tenant, &quota);
        st.staged = st.staged.saturating_sub(n);
    }

    /// Handle one sealed request frame body end-to-end: decode, admit,
    /// execute, encode. Returns the encoded response *frame* plus
    /// whether the connection should close (protocol errors desync the
    /// stream, so they answer once and hang up). Never panics on
    /// malformed input — that is the `serve-frame` campaign invariant.
    pub fn handle_wire(&self, sealed: &Bytes) -> (Bytes, bool) {
        match decode_request(sealed) {
            Ok(req) => {
                let resp = self.handle(&req);
                (encode_response(&resp), false)
            }
            Err(e) => {
                let resp = Response::status_only(
                    Op::Stat,
                    Status::BadRequest,
                    format!("{} [{}]", e, e.category()),
                );
                (encode_response(&resp), true)
            }
        }
    }

    /// Execute one decoded request under the admission gates.
    pub fn handle(&self, req: &Request) -> Response {
        // Shutdown must stay deliverable even at full load, or a
        // saturated server could never be stopped cleanly.
        let _slot = if req.op == Op::Shutdown {
            None
        } else {
            match self.try_admit() {
                Some(slot) => Some(slot),
                None => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    self.counter("serve.rejected", 1);
                    return Response::status_only(
                        req.op,
                        Status::Overloaded,
                        format!(
                            "admission gate full ({} in flight)",
                            self.config.max_inflight()
                        ),
                    );
                }
            }
        };
        let _tenant_slot = if req.op == Op::Shutdown {
            None
        } else {
            match self.admit_tenant(&req.tenant) {
                Ok(slot) => slot,
                Err(detail) => {
                    self.stats.quota_rejected.fetch_add(1, Ordering::Relaxed);
                    self.counter("serve.quota.rejected", 1);
                    return Response::status_only(req.op, Status::QuotaExceeded, detail);
                }
            }
        };
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        self.counter(&format!("serve.ops.{}", req.op.name()), 1);
        let mut span = self
            .obs
            .tracer
            .span_fmt(format_args!("serve/{}", req.op.name()));
        span.field("tenant", &req.tenant);
        if !req.key.is_empty() {
            span.field("key", &req.key);
        }
        let resp = self.dispatch(req);
        span.field("status", resp.status.name());
        span.finish();
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.op {
            Op::Put => self.op_put(req),
            Op::Get => self.op_get(req),
            Op::Verify => self.op_verify(req),
            Op::Scrub => self.op_scrub(req),
            Op::Stat => self.op_stat(req),
            Op::PutBegin => self.op_put_begin(req),
            Op::PutChunk => self.op_put_chunk(req),
            Op::PutCommit => self.op_put_commit(req),
            Op::PutAbort => self.op_put_abort(req),
            Op::GetBegin => self.op_get_begin(req),
            Op::GetChunk => self.op_get_chunk(req),
            Op::Shutdown => {
                self.request_shutdown();
                Response::status_only(Op::Shutdown, Status::Ok, "draining")
            }
        }
    }

    fn vault_failure(op: Op, e: &VaultError) -> Response {
        let status = match e {
            VaultError::NotFound(_) => Status::NotFound,
            VaultError::Damaged { .. } => Status::Damaged,
            _ => Status::ServerError,
        };
        Response::status_only(op, status, e.to_string())
    }

    fn bad(op: Op, detail: impl Into<String>) -> Response {
        Response::status_only(op, Status::BadRequest, detail)
    }

    fn op_put(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Self::bad(Op::Put, e.to_string()),
        };
        if let Some(detail) = self.bytes_check(&req.tenant, Some(&skey), req.payload.len() as u64)
        {
            self.stats.quota_rejected.fetch_add(1, Ordering::Relaxed);
            self.counter("serve.quota.rejected", 1);
            return Response::status_only(Op::Put, Status::QuotaExceeded, detail);
        }
        match self.vault.put(&skey, req.kind, &req.payload) {
            Ok(()) => {
                self.settle_stored(&req.tenant, &skey, req.payload.len() as u64);
                Response::status_only(Op::Put, Status::Ok, req.kind.name())
            }
            Err(e) => Self::vault_failure(Op::Put, &e),
        }
    }

    fn op_get(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Self::bad(Op::Get, e.to_string()),
        };
        match self.vault.get(&skey) {
            Ok((ObjectKind::StreamManifest, payload)) => self.inline_chunked_get(&skey, &payload),
            Ok((kind, payload)) => {
                let payload = match self.config.chaos() {
                    Some(Chaos::FlipGet) if !payload.is_empty() => {
                        let mut bad = payload.to_vec();
                        bad[0] ^= 0x01;
                        Bytes::from(bad)
                    }
                    _ => payload,
                };
                Response {
                    op: Op::Get,
                    status: Status::Ok,
                    detail: kind.name().to_string(),
                    payload,
                }
            }
            Err(e) => Self::vault_failure(Op::Get, &e),
        }
    }

    /// A plain GET landed on a chunk manifest: reassemble small objects
    /// transparently, refuse big ones (bounded server memory).
    fn inline_chunked_get(&self, composed: &str, manifest_bytes: &Bytes) -> Response {
        let m = match decode_manifest(manifest_bytes) {
            Ok(m) => m,
            Err(e) => {
                return Response::status_only(
                    Op::Get,
                    Status::Damaged,
                    format!("stored stream manifest corrupt: {e}"),
                )
            }
        };
        if m.info.total_len > GET_INLINE_LIMIT {
            return Self::bad(
                Op::Get,
                format!(
                    "object is a {}-byte chunked stream; fetch it with the streamed get ops",
                    m.info.total_len
                ),
            );
        }
        let mut out = BytesMut::with_capacity(m.info.total_len as usize);
        for seq in 0..m.info.chunks {
            match self.vault.get(&chunk_key(composed, m.gen, seq)) {
                Ok((_, data)) => out.put_slice(&data),
                Err(e) => return Self::vault_failure(Op::Get, &e),
            }
        }
        if out.len() as u64 != m.info.total_len || fnv64_fold(FNV_BASIS, &out) != m.info.digest {
            return Response::status_only(
                Op::Get,
                Status::Damaged,
                "chunked object failed digest verification during reassembly",
            );
        }
        Response {
            op: Op::Get,
            status: Status::Ok,
            detail: m.kind.name().to_string(),
            payload: out.freeze(),
        }
    }

    fn op_put_begin(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Self::bad(Op::PutBegin, e.to_string()),
        };
        let chunk_size = match stream::decode_begin(&req.payload) {
            Ok(cs) => cs,
            Err(e) => return Self::bad(Op::PutBegin, e.to_string()),
        };
        if let Err(e) = stream::validate_chunk_size(chunk_size) {
            return Self::bad(Op::PutBegin, e.to_string());
        }
        let id = self.next_stream.fetch_add(1, Ordering::Relaxed);
        {
            let mut streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
            if streams.len() >= self.config.max_streams() {
                return Response::status_only(
                    Op::PutBegin,
                    Status::Overloaded,
                    format!("stream table full ({} open)", self.config.max_streams()),
                );
            }
            streams.insert(
                id,
                PutStream {
                    tenant: req.tenant.clone(),
                    composed: skey,
                    kind: req.kind,
                    chunk_size,
                    gen: id,
                    next_seq: 0,
                    staged_bytes: 0,
                    short_seen: false,
                },
            );
        }
        self.stats.streams_opened.fetch_add(1, Ordering::Relaxed);
        self.counter("serve.stream.begin", 1);
        Response::status_only(Op::PutBegin, Status::Ok, id.to_string())
    }

    /// Claim the stream named by `req.key` out of the table for the
    /// duration of one op (staging writes must not serialize unrelated
    /// streams behind the table lock). Returns the stream or the error
    /// response.
    fn claim_stream(&self, op: Op, req: &Request) -> Result<(u64, PutStream), Response> {
        let id = match req.key.parse::<u64>() {
            Ok(id) => id,
            Err(_) => return Err(Self::bad(op, format!("{:?} is not a stream id", req.key))),
        };
        let mut streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        match streams.get(&id) {
            None => Err(Self::bad(op, format!("no open stream {id}"))),
            Some(st) if st.tenant != req.tenant => Err(Self::bad(
                op,
                format!("stream {id} belongs to another tenant"),
            )),
            Some(_) => {
                let st = streams.remove(&id).expect("checked above");
                Ok((id, st))
            }
        }
    }

    fn op_put_chunk(&self, req: &Request) -> Response {
        let (id, mut st) = match self.claim_stream(Op::PutChunk, req) {
            Ok(claimed) => claimed,
            Err(resp) => return resp,
        };
        let resp = self.stage_chunk(&mut st, req);
        // Every outcome leaves the stream open — the client decides
        // whether to abort after an error.
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, st);
        resp
    }

    fn stage_chunk(&self, st: &mut PutStream, req: &Request) -> Response {
        let (seq, data) = match stream::decode_chunk(&req.payload) {
            Ok(parts) => parts,
            Err(e) => return Self::bad(Op::PutChunk, e.to_string()),
        };
        if seq != st.next_seq {
            return Self::bad(
                Op::PutChunk,
                format!("out-of-order chunk: expected {}, got {seq}", st.next_seq),
            );
        }
        if st.short_seen {
            return Self::bad(Op::PutChunk, "chunk after a short (final) chunk");
        }
        if data.is_empty() {
            return Self::bad(Op::PutChunk, "empty chunk");
        }
        if data.len() > st.chunk_size as usize {
            return Self::bad(
                Op::PutChunk,
                format!(
                    "chunk of {} bytes exceeds the declared chunk size {}",
                    data.len(),
                    st.chunk_size
                ),
            );
        }
        if let Some(detail) = self.bytes_check(&req.tenant, None, data.len() as u64) {
            self.stats.quota_rejected.fetch_add(1, Ordering::Relaxed);
            self.counter("serve.quota.rejected", 1);
            return Response::status_only(Op::PutChunk, Status::QuotaExceeded, detail);
        }
        match self
            .vault
            .put(&chunk_key(&st.composed, st.gen, seq), ObjectKind::Opaque, &data)
        {
            Ok(()) => {
                st.next_seq += 1;
                st.staged_bytes += data.len() as u64;
                if (data.len() as u32) < st.chunk_size {
                    st.short_seen = true;
                }
                self.settle_staged(&req.tenant, data.len() as u64);
                self.stats
                    .stream_chunk_high_water
                    .fetch_max(data.len() as u64, Ordering::Relaxed);
                self.counter("serve.stream.chunks", 1);
                Response::status_only(Op::PutChunk, Status::Ok, format!("chunk {seq} staged"))
            }
            Err(e) => Self::vault_failure(Op::PutChunk, &e),
        }
    }

    fn op_put_commit(&self, req: &Request) -> Response {
        let (chunks, total_len, digest) = match stream::decode_commit(&req.payload) {
            Ok(parts) => parts,
            Err(e) => return Self::bad(Op::PutCommit, e.to_string()),
        };
        let (_id, st) = match self.claim_stream(Op::PutCommit, req) {
            Ok(claimed) => claimed,
            Err(resp) => return resp,
        };
        // From here the stream is consumed: a failed commit aborts it
        // and reclaims its staged chunks.
        if chunks != st.next_seq {
            let detail = format!(
                "chunk count mismatch: {} staged, commit declares {chunks}",
                st.next_seq
            );
            self.abort_stream(&st);
            return Self::bad(Op::PutCommit, detail);
        }
        if total_len != st.staged_bytes {
            let detail = format!(
                "length mismatch: {} bytes staged, commit declares {total_len}",
                st.staged_bytes
            );
            self.abort_stream(&st);
            return Self::bad(Op::PutCommit, detail);
        }
        // Re-read the staged chunks in order, folding the whole-object
        // digest — O(chunk) memory no matter how large the object.
        let mut fold = FNV_BASIS;
        for seq in 0..chunks {
            match self.vault.get(&chunk_key(&st.composed, st.gen, seq)) {
                Ok((_, data)) => fold = fnv64_fold(fold, &data),
                Err(e) => {
                    self.abort_stream(&st);
                    return Self::vault_failure(Op::PutCommit, &e);
                }
            }
        }
        if fold != digest {
            self.abort_stream(&st);
            return Response::status_only(
                Op::PutCommit,
                Status::Damaged,
                format!(
                    "stream digest mismatch: staged {fold:016x}, client declared {digest:016x}"
                ),
            );
        }
        let manifest = Manifest {
            kind: st.kind,
            info: StreamInfo {
                total_len,
                chunk_size: st.chunk_size,
                chunks,
                digest,
            },
            gen: st.gen,
        };
        if let Err(e) = self.vault.put(
            &st.composed,
            ObjectKind::StreamManifest,
            &encode_manifest(&manifest),
        ) {
            self.abort_stream(&st);
            return Self::vault_failure(Op::PutCommit, &e);
        }
        // Staged bytes become stored bytes; the manifest flip just
        // orphaned any older generation, so sweep it.
        self.release_staged(&st.tenant, st.staged_bytes);
        self.settle_stored(&st.tenant, &st.composed, total_len);
        self.sweep_other_generations(&st.composed, st.gen);
        self.stats.streams_committed.fetch_add(1, Ordering::Relaxed);
        self.counter("serve.stream.commits", 1);
        Response::status_only(Op::PutCommit, Status::Ok, st.kind.name())
    }

    fn op_put_abort(&self, req: &Request) -> Response {
        let (id, st) = match self.claim_stream(Op::PutAbort, req) {
            Ok(claimed) => claimed,
            Err(resp) => return resp,
        };
        self.abort_stream(&st);
        Response::status_only(Op::PutAbort, Status::Ok, format!("stream {id} aborted"))
    }

    /// Reclaim a consumed stream's staged chunks and byte budget.
    fn abort_stream(&self, st: &PutStream) {
        for seq in 0..st.next_seq {
            let _ = self.vault.delete(&chunk_key(&st.composed, st.gen, seq));
        }
        self.release_staged(&st.tenant, st.staged_bytes);
        self.stats.streams_aborted.fetch_add(1, Ordering::Relaxed);
        self.counter("serve.stream.aborts", 1);
    }

    /// Delete chunk records of `composed` under any generation other
    /// than `keep` — except generations belonging to still-open streams
    /// racing toward the same key.
    fn sweep_other_generations(&self, composed: &str, keep: u64) {
        let live: Vec<u64> = {
            let streams = self.streams.lock().unwrap_or_else(|e| e.into_inner());
            streams
                .values()
                .filter(|s| s.composed == composed)
                .map(|s| s.gen)
                .collect()
        };
        let prefix = chunk_prefix(composed);
        let keeps: Vec<String> = std::iter::once(keep)
            .chain(live)
            .map(|g| format!("{composed}..g{g:016x}.c"))
            .collect();
        let Ok(keys) = self.vault.keys() else { return };
        for key in keys {
            if key.starts_with(&prefix) && !keeps.iter().any(|k| key.starts_with(k.as_str())) {
                let _ = self.vault.delete(&key);
            }
        }
    }

    fn op_get_begin(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Self::bad(Op::GetBegin, e.to_string()),
        };
        let preferred = match stream::decode_begin(&req.payload) {
            Ok(p) => p,
            Err(e) => return Self::bad(Op::GetBegin, e.to_string()),
        };
        match self.vault.get(&skey) {
            Ok((ObjectKind::StreamManifest, payload)) => match decode_manifest(&payload) {
                Ok(m) => Response {
                    op: Op::GetBegin,
                    status: Status::Ok,
                    detail: m.kind.name().to_string(),
                    payload: stream::encode_info(&m.info),
                },
                Err(e) => Response::status_only(
                    Op::GetBegin,
                    Status::Damaged,
                    format!("stored stream manifest corrupt: {e}"),
                ),
            },
            Ok((kind, payload)) => {
                // Plain objects stream too: slice them virtually at the
                // caller's preferred chunk size.
                let chunk_size = if preferred == 0 {
                    DEFAULT_CHUNK_BYTES as u32
                } else {
                    preferred
                };
                if let Err(e) = stream::validate_chunk_size(chunk_size) {
                    return Self::bad(Op::GetBegin, e.to_string());
                }
                let info = StreamInfo {
                    total_len: payload.len() as u64,
                    chunk_size,
                    chunks: stream::chunk_count(payload.len() as u64, chunk_size),
                    digest: fnv64_fold(FNV_BASIS, &payload),
                };
                Response {
                    op: Op::GetBegin,
                    status: Status::Ok,
                    detail: kind.name().to_string(),
                    payload: stream::encode_info(&info),
                }
            }
            Err(e) => Self::vault_failure(Op::GetBegin, &e),
        }
    }

    fn op_get_chunk(&self, req: &Request) -> Response {
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Self::bad(Op::GetChunk, e.to_string()),
        };
        let (seq, chunk_size) = match stream::decode_get_chunk(&req.payload) {
            Ok(parts) => parts,
            Err(e) => return Self::bad(Op::GetChunk, e.to_string()),
        };
        match self.vault.get(&skey) {
            Ok((ObjectKind::StreamManifest, payload)) => {
                let m = match decode_manifest(&payload) {
                    Ok(m) => m,
                    Err(e) => {
                        return Response::status_only(
                            Op::GetChunk,
                            Status::Damaged,
                            format!("stored stream manifest corrupt: {e}"),
                        )
                    }
                };
                if chunk_size != m.info.chunk_size {
                    return Self::bad(
                        Op::GetChunk,
                        format!(
                            "chunk size {chunk_size} does not match stored geometry {}; \
                             the object changed — restart with get-begin",
                            m.info.chunk_size
                        ),
                    );
                }
                if seq >= m.info.chunks {
                    return Self::bad(
                        Op::GetChunk,
                        format!("chunk {seq} out of range ({} chunks)", m.info.chunks),
                    );
                }
                match self.vault.get(&chunk_key(&skey, m.gen, seq)) {
                    Ok((_, data)) => {
                        let start = u64::from(seq) * u64::from(m.info.chunk_size);
                        let expected =
                            (m.info.total_len - start).min(u64::from(m.info.chunk_size));
                        if data.len() as u64 != expected {
                            return Response::status_only(
                                Op::GetChunk,
                                Status::Damaged,
                                format!(
                                    "chunk {seq} is {} bytes, manifest expects {expected}",
                                    data.len()
                                ),
                            );
                        }
                        Response {
                            op: Op::GetChunk,
                            status: Status::Ok,
                            detail: m.kind.name().to_string(),
                            payload: stream::encode_chunk(seq, &data),
                        }
                    }
                    Err(e) => Self::vault_failure(Op::GetChunk, &e),
                }
            }
            Ok((kind, payload)) => {
                if stream::validate_chunk_size(chunk_size).is_err() {
                    return Self::bad(Op::GetChunk, format!("bad chunk size {chunk_size}"));
                }
                let start = u64::from(seq) * u64::from(chunk_size);
                if start >= payload.len() as u64 {
                    return Self::bad(
                        Op::GetChunk,
                        format!("chunk {seq} out of range ({} bytes)", payload.len()),
                    );
                }
                let end = (start + u64::from(chunk_size)).min(payload.len() as u64);
                Response {
                    op: Op::GetChunk,
                    status: Status::Ok,
                    detail: kind.name().to_string(),
                    payload: stream::encode_chunk(
                        seq,
                        &payload[start as usize..end as usize],
                    ),
                }
            }
            Err(e) => Self::vault_failure(Op::GetChunk, &e),
        }
    }

    fn op_verify(&self, req: &Request) -> Response {
        if req.key.is_empty() {
            return match self.vault.verify() {
                Ok(report) => {
                    let status = if report.corrupt + report.missing == 0 && report.lost.is_empty() {
                        Status::Ok
                    } else {
                        Status::Damaged
                    };
                    Response::status_only(Op::Verify, status, report.to_text())
                }
                Err(e) => Self::vault_failure(Op::Verify, &e),
            };
        }
        let skey = match storage_key(&req.tenant, &req.key) {
            Ok(k) => k,
            Err(e) => return Self::bad(Op::Verify, e.to_string()),
        };
        match self.vault.verify_object(&skey) {
            Ok(report) => {
                let status = if report.corrupt + report.missing == 0 && report.lost.is_empty() {
                    Status::Ok
                } else {
                    Status::Damaged
                };
                Response::status_only(Op::Verify, status, report.to_text())
            }
            Err(e) => Self::vault_failure(Op::Verify, &e),
        }
    }

    fn op_scrub(&self, _req: &Request) -> Response {
        match self.vault.scrub() {
            Ok(report) => {
                let status = if report.clean() {
                    Status::Ok
                } else {
                    Status::Damaged
                };
                Response::status_only(Op::Scrub, status, report.to_text())
            }
            Err(e) => Self::vault_failure(Op::Scrub, &e),
        }
    }

    fn op_stat(&self, req: &Request) -> Response {
        let prefix = format!("{}.", req.tenant);
        // Chunk records (the `..` namespace) are bookkeeping, not
        // tenant-visible objects.
        let (tenant_objects, total) = match self.vault.keys() {
            Ok(keys) => (
                keys.iter()
                    .filter(|k| k.starts_with(&prefix) && !k.contains(".."))
                    .count(),
                keys.len(),
            ),
            Err(e) => return Self::vault_failure(Op::Stat, &e),
        };
        Response::status_only(
            Op::Stat,
            Status::Ok,
            format!(
                "tenant={} objects={} total_objects={} replicas={} inflight={} ops={} \
                 rejected={} quota_rejected={} open_streams={}",
                req.tenant,
                tenant_objects,
                total,
                self.vault.replica_count(),
                self.inflight(),
                self.stats.ops(),
                self.stats.rejected(),
                self.stats.quota_rejected(),
                self.open_streams(),
            ),
        )
    }

    /// One background-scrub step: if any foreground op is in flight,
    /// yield (count it, touch nothing); otherwise scrub the next object
    /// in round-robin order. Returns whether an object was scrubbed.
    ///
    /// The tick re-checks the admission gate *between* replica
    /// classifications, not just at tick start: a foreground op arriving
    /// mid-object makes the scrubber abandon the object (counted as a
    /// yield) instead of stalling that op behind a full
    /// `replicas × deep-verify` pass — the `serve_mixed` p99 tail.
    pub fn scrub_step(&self) -> Result<bool, VaultError> {
        if self.inflight() > 0 {
            self.stats.scrub_yields.fetch_add(1, Ordering::Relaxed);
            self.counter("serve.scrub.yields", 1);
            return Ok(false);
        }
        let keys = self.vault.keys()?;
        if keys.is_empty() {
            return Ok(false);
        }
        let key = {
            let mut cursor = self.scrub_cursor.lock().unwrap_or_else(|e| e.into_inner());
            let key = keys[*cursor % keys.len()].clone();
            *cursor = (*cursor + 1) % keys.len();
            key
        };
        match self
            .vault
            .scrub_object_while(&key, &|| self.inflight() == 0)?
        {
            None => {
                self.stats.scrub_yields.fetch_add(1, Ordering::Relaxed);
                self.counter("serve.scrub.yields", 1);
                Ok(false)
            }
            Some(_) => {
                self.stats.scrub_steps.fetch_add(1, Ordering::Relaxed);
                self.counter("serve.scrub.objects", 1);
                Ok(true)
            }
        }
    }
}

/// Unproductive passes a worker spends merely yielding before it starts
/// sleeping. While frames are actively being traded the gaps between
/// requests are microseconds; yielding through them keeps pickup latency
/// near the blocking-read baseline instead of paying a timer sleep per
/// round trip.
const IDLE_SPIN_PASSES: u32 = 64;

/// Fastest nap a worker takes once the spin phase is exhausted.
const IDLE_NAP_MIN: Duration = Duration::from_micros(50);

/// Longest idle nap (the wake-up latency floor for the first request
/// after a quiet period).
const IDLE_NAP_MAX: Duration = Duration::from_millis(2);

/// Back off `passes` consecutive unproductive passes: yield through the
/// hot window, then sleep on an exponential ladder up to
/// [`IDLE_NAP_MAX`] so a fully idle pool costs ~nothing.
fn idle_wait(passes: u32) {
    if passes <= IDLE_SPIN_PASSES {
        std::thread::yield_now();
    } else {
        let exp = (passes - IDLE_SPIN_PASSES).min(6);
        let nap = IDLE_NAP_MIN.saturating_mul(1u32 << (exp - 1));
        std::thread::sleep(nap.min(IDLE_NAP_MAX));
    }
}

/// The TCP front-end over a shared [`Service`]: a fixed worker pool
/// multiplexing every accepted connection through one ready queue.
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    accept: Option<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// accept loop, the worker pool, and, if `scrub_interval` is
    /// nonzero, the scrubber.
    pub fn start(
        service: Arc<Service>,
        addr: &str,
        scrub_interval: Duration,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Bind {
            addr: addr.to_string(),
            reason: e.to_string(),
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;

        let queue: Arc<Mutex<VecDeque<Conn>>> = Arc::new(Mutex::new(VecDeque::new()));
        // Bumped whenever any worker makes progress anywhere; lets idle
        // workers back off exponentially without missing a busy period.
        let epoch = Arc::new(AtomicU64::new(0));

        let accept = {
            let service = service.clone();
            let queue = queue.clone();
            let epoch = epoch.clone();
            std::thread::spawn(move || accept_loop(listener, service, queue, epoch))
        };
        let workers = (0..service.config().pool_size())
            .map(|_| {
                let service = service.clone();
                let queue = queue.clone();
                let epoch = epoch.clone();
                std::thread::spawn(move || worker_loop(service, queue, epoch))
            })
            .collect();
        let scrubber = if scrub_interval.is_zero() {
            None
        } else {
            let service = service.clone();
            Some(std::thread::spawn(move || {
                while !service.shutdown_requested() {
                    std::thread::sleep(scrub_interval);
                    // Scrub failures must not kill the daemon; the next
                    // tick (or a client-requested scrub) retries.
                    let _ = service.scrub_step();
                }
            }))
        };
        Ok(Server {
            addr: local,
            service,
            accept: Some(accept),
            scrubber,
            workers,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Block until shutdown has been requested and every loop has
    /// drained: the accept thread, the worker pool (each worker answers
    /// the frames already buffered on the connections it drains), and
    /// the scrubber.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.scrubber.take() {
            let _ = h.join();
        }
    }

    /// Request shutdown and [`join`](Server::join).
    pub fn stop(self) {
        self.service.request_shutdown();
        self.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    queue: Arc<Mutex<VecDeque<Conn>>>,
    epoch: Arc<AtomicU64>,
) {
    while !service.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Ok(conn) = Conn::new(stream) {
                    queue
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push_back(conn);
                    epoch.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// One pool worker: pop a connection, service whatever is ready on it,
/// put it back. A connection mid-op pins this worker only for that op;
/// idle connections just cycle through, so the pool holds arbitrarily
/// many of them.
fn worker_loop(service: Arc<Service>, queue: Arc<Mutex<VecDeque<Conn>>>, epoch: Arc<AtomicU64>) {
    let mut scratch = vec![0u8; 64 * 1024];
    let mut idle_passes = 0u32;
    let mut seen_epoch = u64::MAX;
    loop {
        let popped = queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        let Some(mut conn) = popped else {
            if service.shutdown_requested() {
                break;
            }
            idle_passes = idle_passes.saturating_add(1);
            idle_wait(idle_passes);
            continue;
        };
        let (progress, mut closed) = conn.fill(&mut scratch);
        let mut worked = progress;
        if !closed {
            loop {
                match conn.next_frame() {
                    Ok(None) => break,
                    Ok(Some(sealed)) => {
                        worked = true;
                        let (frame, close) = service.handle_wire(&sealed);
                        if conn.write_frame(&frame).is_err() || close {
                            closed = true;
                            break;
                        }
                    }
                    Err(e) => {
                        // The length prefix itself was hostile; answer
                        // once and hang up — the byte stream cannot be
                        // resynchronized.
                        let resp = Response::status_only(
                            Op::Stat,
                            Status::BadRequest,
                            format!("{} [{}]", e, e.category()),
                        );
                        let _ = conn.write_frame(&encode_response(&resp));
                        closed = true;
                        break;
                    }
                }
            }
        }
        if closed || service.shutdown_requested() {
            // Buffered frames were just answered; accepted work is
            // never dropped on shutdown.
            drop(conn);
        } else {
            queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(conn);
        }
        if worked {
            epoch.fetch_add(1, Ordering::Relaxed);
            idle_passes = 0;
        } else {
            // Nothing ready on that connection. Only back off if nobody
            // else made progress either — otherwise keep spinning fast,
            // there is load in the system.
            let now = epoch.load(Ordering::Relaxed);
            if now != seen_epoch {
                seen_epoch = now;
                idle_passes = 0;
                // Someone is making progress; stay hot but hand the
                // core over — on a small machine a non-yielding sweep
                // starves the very clients it is polling for.
                std::thread::yield_now();
            } else {
                idle_passes = idle_passes.saturating_add(1);
                idle_wait(idle_passes);
            }
        }
    }
}
