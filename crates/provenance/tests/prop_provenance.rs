//! Property tests: provenance-graph invariants and text round-trips.

use daspos_hep::ids::DatasetId;
use daspos_provenance::graph::{StepBuilder, StepKind};
use daspos_provenance::{text, Platform, ProvenanceGraph, SoftwareStack, SoftwareVersion};
use proptest::prelude::*;

fn stack() -> SoftwareStack {
    SoftwareStack::on_current(vec![SoftwareVersion::new("daspos", 1, 0, 0)])
}

/// A random linear-ish derivation plan: each step consumes a previously
/// produced dataset (by index) and produces a fresh one.
fn arb_plan() -> impl Strategy<Value = Vec<usize>> {
    // plan[i] = index (into datasets 0..=i) of the step's input.
    prop::collection::vec(0usize..1000, 1..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, r)| r % (i + 1))
            .collect()
    })
}

fn build(plan: &[usize]) -> (ProvenanceGraph, Vec<DatasetId>) {
    let g = ProvenanceGraph::new();
    let root = DatasetId(1);
    g.declare_root(root);
    let mut datasets = vec![root];
    for (i, &input_idx) in plan.iter().enumerate() {
        let output = DatasetId(2 + i as u64);
        g.record(
            StepBuilder::new(StepKind::SkimSlim, format!("step-{i}"), stack())
                .input(datasets[input_idx])
                .output(output),
        )
        .expect("plan is well-formed");
        datasets.push(output);
    }
    (g, datasets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lineage_always_reaches_the_root(plan in arb_plan()) {
        let (g, datasets) = build(&plan);
        for ds in &datasets[1..] {
            let lineage = g.lineage(*ds).expect("known dataset");
            prop_assert!(!lineage.is_empty());
            // The earliest step in every lineage consumes the root.
            prop_assert!(
                lineage.iter().any(|s| s.inputs.contains(&datasets[0])),
                "lineage of {ds} never touches the root"
            );
        }
        prop_assert!(g.orphans().is_empty());
        prop_assert_eq!(g.completeness(), 1.0);
    }

    #[test]
    fn descendants_and_lineage_are_consistent(plan in arb_plan()) {
        let (g, datasets) = build(&plan);
        let all_desc = g.descendants(datasets[0]).expect("root known");
        // Every non-root dataset descends from the root…
        prop_assert_eq!(all_desc.len(), datasets.len() - 1);
        // …and membership is mutual: if b descends from a, a's producer
        // chain appears in b's lineage.
        for (i, ds) in datasets.iter().enumerate().skip(1) {
            let lineage_steps = g.lineage(*ds).expect("lineage");
            prop_assert!(lineage_steps.len() <= plan.len());
            prop_assert!(lineage_steps.iter().all(|s| !s.outputs.is_empty()));
            let _ = i;
        }
    }

    #[test]
    fn text_round_trip_preserves_everything(plan in arb_plan()) {
        let (g, datasets) = build(&plan);
        let restored = text::from_text(&text::to_text(&g)).expect("parses");
        prop_assert_eq!(restored.step_count(), g.step_count());
        prop_assert_eq!(restored.dataset_count(), g.dataset_count());
        prop_assert_eq!(restored.roots(), g.roots());
        for ds in &datasets[1..] {
            let a = g.lineage(*ds).expect("orig");
            let b = restored.lineage(*ds).expect("restored");
            prop_assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn software_stack_round_trip(
        names in prop::collection::vec("[a-z][a-z0-9]{0,12}", 0..6),
        versions in prop::collection::vec((0u32..99, 0u32..99, 0u32..99, prop::bool::ANY), 6),
        platform in "[a-z0-9-]{1,16}"
    ) {
        let packages = names
            .iter()
            .zip(&versions)
            .map(|(n, (ma, mi, pa, ext))| {
                let v = SoftwareVersion::new(n, *ma, *mi, *pa);
                if *ext { v.external() } else { v }
            })
            .collect();
        let stack = SoftwareStack {
            platform: Platform(platform),
            packages,
        };
        prop_assert_eq!(SoftwareStack::parse(&stack.render()), Some(stack));
    }

    #[test]
    fn migration_preserves_compatibility(plan in arb_plan()) {
        let (_, _) = build(&plan);
        let stack = stack();
        let migrated = stack.migrated_to(Platform::successor());
        for (old, new) in stack.packages.iter().zip(&migrated.packages) {
            prop_assert!(old.compatible_with(new));
        }
        prop_assert!(!migrated.runs_on(&Platform::current()));
    }
}
