//! Text serialization of the provenance graph.
//!
//! Archives store the graph alongside the data. One line per record:
//!
//! ```text
//! # daspos-provenance v1
//! root ds-1
//! step step-1 reconstruction cond=data-2013 seed=- sw=slc6-x86_64|daspos-1.0.0 in=ds-1 out=ds-2 cfg=reco(atlas)
//! ```
//!
//! `cfg=` is always the last field so configuration strings may contain
//! spaces.

use daspos_hep::ids::{DatasetId, StepId};

use crate::graph::{ProvenanceGraph, StepBuilder, StepKind, StepRecord};
use crate::software::SoftwareStack;

/// Header line of the text form.
pub const HEADER: &str = "# daspos-provenance v1";

fn render_step(s: &StepRecord) -> String {
    let ins = s
        .inputs
        .iter()
        .map(DatasetId::as_string)
        .collect::<Vec<_>>()
        .join(",");
    let outs = s
        .outputs
        .iter()
        .map(DatasetId::as_string)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "step {} {} cond={} seed={} sw={} in={} out={} cfg={}",
        s.id,
        s.kind.name(),
        s.conditions_tag.as_deref().unwrap_or("-"),
        s.seed.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string()),
        s.software.render(),
        if ins.is_empty() { "-".to_string() } else { ins },
        if outs.is_empty() { "-".to_string() } else { outs },
        s.config,
    )
}

/// Serialize the whole graph.
pub fn to_text(graph: &ProvenanceGraph) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for root in graph.roots() {
        out.push_str(&format!("root {root}\n"));
    }
    for step in graph.all_steps() {
        out.push_str(&render_step(&step));
        out.push('\n');
    }
    out
}

/// Parse failure description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "provenance text error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TextError {}

fn parse_ds_list(s: &str) -> Option<Vec<DatasetId>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(DatasetId::parse).collect()
}

/// Restore a graph from its text form. Step ids are *not* preserved (the
/// graph reallocates); ordering and topology are.
pub fn from_text(text: &str) -> Result<ProvenanceGraph, TextError> {
    let err = |line: usize, reason: &str| TextError {
        line,
        reason: reason.to_string(),
    };
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header != HEADER {
        return Err(err(1, "bad header"));
    }
    let graph = ProvenanceGraph::new();
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(root) = line.strip_prefix("root ") {
            let ds = DatasetId::parse(root.trim())
                .ok_or_else(|| err(line_no, "bad root dataset id"))?;
            graph.declare_root(ds);
            continue;
        }
        let body = line
            .strip_prefix("step ")
            .ok_or_else(|| err(line_no, "expected 'root' or 'step'"))?;
        // cfg= is last and may contain anything.
        let (head, cfg) = body
            .split_once(" cfg=")
            .ok_or_else(|| err(line_no, "missing cfg="))?;
        let mut parts = head.split(' ');
        let _step_id = parts
            .next()
            .and_then(StepId::parse)
            .ok_or_else(|| err(line_no, "bad step id"))?;
        let kind = parts
            .next()
            .and_then(StepKind::parse)
            .ok_or_else(|| err(line_no, "bad step kind"))?;
        let mut cond = None;
        let mut seed = None;
        let mut software = None;
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        for field in parts {
            if let Some(v) = field.strip_prefix("cond=") {
                if v != "-" {
                    cond = Some(v.to_string());
                }
            } else if let Some(v) = field.strip_prefix("seed=") {
                if v != "-" {
                    seed = Some(
                        v.parse()
                            .map_err(|_| err(line_no, "bad seed"))?,
                    );
                }
            } else if let Some(v) = field.strip_prefix("sw=") {
                software =
                    Some(SoftwareStack::parse(v).ok_or_else(|| err(line_no, "bad software"))?);
            } else if let Some(v) = field.strip_prefix("in=") {
                inputs = parse_ds_list(v).ok_or_else(|| err(line_no, "bad inputs"))?;
            } else if let Some(v) = field.strip_prefix("out=") {
                outputs = parse_ds_list(v).ok_or_else(|| err(line_no, "bad outputs"))?;
            } else {
                return Err(err(line_no, &format!("unknown field '{field}'")));
            }
        }
        let software = software.ok_or_else(|| err(line_no, "missing sw="))?;
        let mut builder = StepBuilder::new(kind, cfg, software);
        if let Some(c) = cond {
            builder = builder.conditions(c);
        }
        if let Some(s) = seed {
            builder = builder.seed(s);
        }
        for ds in inputs {
            builder = builder.input(ds);
        }
        for ds in outputs {
            builder = builder.output(ds);
        }
        graph
            .record(builder)
            .map_err(|e| err(line_no, &e.to_string()))?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::SoftwareVersion;

    fn stack() -> SoftwareStack {
        SoftwareStack::on_current(vec![SoftwareVersion::new("daspos", 1, 0, 0)])
    }

    fn sample_graph() -> ProvenanceGraph {
        let g = ProvenanceGraph::new();
        g.declare_root(DatasetId(1));
        g.record(
            StepBuilder::new(StepKind::Reconstruction, "reco(atlas) with spaces", stack())
                .conditions("data-2013")
                .seed(42)
                .input(DatasetId(1))
                .output(DatasetId(2)),
        )
        .unwrap();
        g.record(
            StepBuilder::new(StepKind::Ntupling, "schema:met,m_ll", stack())
                .input(DatasetId(2))
                .output(DatasetId(3)),
        )
        .unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_topology_and_records() {
        let g = sample_graph();
        let text = to_text(&g);
        let back = from_text(&text).unwrap();
        assert_eq!(back.step_count(), g.step_count());
        assert_eq!(back.dataset_count(), g.dataset_count());
        assert_eq!(back.roots(), g.roots());
        let lineage = back.lineage(DatasetId(3)).unwrap();
        assert_eq!(lineage.len(), 2);
        assert_eq!(lineage[1].config, "reco(atlas) with spaces");
        assert_eq!(lineage[1].seed, Some(42));
        assert_eq!(lineage[1].conditions_tag.as_deref(), Some("data-2013"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "wrong header\n",
            "# daspos-provenance v1\nbogus line\n",
            "# daspos-provenance v1\nroot nonsense\n",
            "# daspos-provenance v1\nstep step-1 reconstruction cond=- seed=- in=- out=- cfg=x\n", // missing sw
        ] {
            assert!(from_text(bad).is_err(), "'{bad}' should fail");
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = sample_graph();
        let mut text = to_text(&g);
        text.push_str("\n# a trailing comment\n\n");
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = ProvenanceGraph::new();
        let back = from_text(&to_text(&g)).unwrap();
        assert_eq!(back.step_count(), 0);
        assert_eq!(back.dataset_count(), 0);
    }
}
