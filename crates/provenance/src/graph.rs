//! The provenance graph.
//!
//! A bipartite DAG: **step** nodes (one execution of a processing stage,
//! with its full configuration) connect the **datasets** they consumed to
//! the datasets they produced. Acyclicity holds by construction — a step
//! may only consume datasets that already exist, and every dataset has at
//! most one producer.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use daspos_hep::ids::{DatasetId, IdAllocator, StepId};
use parking_lot::RwLock;

use crate::software::SoftwareStack;

/// What kind of processing a step performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Monte Carlo generation.
    Generation,
    /// Detector simulation.
    Simulation,
    /// Reconstruction (RAW → RECO/AOD).
    Reconstruction,
    /// Skimming/slimming derivation.
    SkimSlim,
    /// Ntuple production.
    Ntupling,
    /// Final analysis execution.
    Analysis,
}

impl StepKind {
    /// Stable name for serialization.
    pub fn name(&self) -> &'static str {
        match self {
            StepKind::Generation => "generation",
            StepKind::Simulation => "simulation",
            StepKind::Reconstruction => "reconstruction",
            StepKind::SkimSlim => "skimslim",
            StepKind::Ntupling => "ntupling",
            StepKind::Analysis => "analysis",
        }
    }

    /// Inverse of [`StepKind::name`].
    pub fn parse(s: &str) -> Option<StepKind> {
        Some(match s {
            "generation" => StepKind::Generation,
            "simulation" => StepKind::Simulation,
            "reconstruction" => StepKind::Reconstruction,
            "skimslim" => StepKind::SkimSlim,
            "ntupling" => StepKind::Ntupling,
            "analysis" => StepKind::Analysis,
            _ => return None,
        })
    }
}

/// The full record of one processing-step execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Graph id of the step.
    pub id: StepId,
    /// What the step did.
    pub kind: StepKind,
    /// Human-readable configuration description (e.g. the generator
    /// config line, or a skim selection's text form).
    pub config: String,
    /// The software stack the step ran with.
    pub software: SoftwareStack,
    /// The conditions global tag used, when any.
    pub conditions_tag: Option<String>,
    /// The master seed, for stochastic stages.
    pub seed: Option<u64>,
    /// Datasets consumed.
    pub inputs: Vec<DatasetId>,
    /// Datasets produced.
    pub outputs: Vec<DatasetId>,
}

/// Provenance failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProvenanceError {
    /// A step referenced an input dataset the graph has never seen.
    UnknownInput(DatasetId),
    /// A dataset was declared as output of two different steps.
    DuplicateProducer {
        /// The dataset with two producers.
        dataset: DatasetId,
        /// Its already-recorded producer.
        existing: StepId,
    },
    /// Query target does not exist in the graph.
    UnknownDataset(DatasetId),
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::UnknownInput(d) => write!(f, "unknown input dataset {d}"),
            ProvenanceError::DuplicateProducer { dataset, existing } => {
                write!(f, "dataset {dataset} already produced by {existing}")
            }
            ProvenanceError::UnknownDataset(d) => write!(f, "dataset {d} not in graph"),
        }
    }
}

impl std::error::Error for ProvenanceError {}

/// A builder for step records.
#[derive(Debug, Clone)]
pub struct StepBuilder {
    kind: StepKind,
    config: String,
    software: SoftwareStack,
    conditions_tag: Option<String>,
    seed: Option<u64>,
    inputs: Vec<DatasetId>,
    outputs: Vec<DatasetId>,
}

impl StepBuilder {
    /// Start a record for a step of the given kind and configuration.
    pub fn new(kind: StepKind, config: impl Into<String>, software: SoftwareStack) -> Self {
        StepBuilder {
            kind,
            config: config.into(),
            software,
            conditions_tag: None,
            seed: None,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Record the conditions tag used.
    pub fn conditions(mut self, tag: impl Into<String>) -> Self {
        self.conditions_tag = Some(tag.into());
        self
    }

    /// Record the master seed used.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Add an input dataset.
    pub fn input(mut self, ds: DatasetId) -> Self {
        self.inputs.push(ds);
        self
    }

    /// Add an output dataset.
    pub fn output(mut self, ds: DatasetId) -> Self {
        self.outputs.push(ds);
        self
    }
}

#[derive(Debug, Default)]
struct GraphInner {
    steps: BTreeMap<StepId, StepRecord>,
    /// dataset → producing step (at most one).
    producer: BTreeMap<DatasetId, StepId>,
    /// dataset → consuming steps.
    consumers: BTreeMap<DatasetId, Vec<StepId>>,
    /// every dataset ever mentioned.
    datasets: BTreeSet<DatasetId>,
    /// datasets force-referenced without provenance (orphan imports).
    orphan_marks: BTreeSet<DatasetId>,
}

/// The thread-safe provenance graph.
#[derive(Debug, Default)]
pub struct ProvenanceGraph {
    inner: RwLock<GraphInner>,
    step_ids: IdAllocator,
}

impl ProvenanceGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProvenanceGraph::default()
    }

    /// Declare a dataset that enters the system without a recorded
    /// producer (real detector data, or an import with lost provenance).
    pub fn declare_root(&self, ds: DatasetId) {
        self.inner.write().datasets.insert(ds);
    }

    /// Record a step execution. Inputs must already exist; outputs must
    /// not already have a producer.
    pub fn record(&self, builder: StepBuilder) -> Result<StepId, ProvenanceError> {
        let mut g = self.inner.write();
        for input in &builder.inputs {
            if !g.datasets.contains(input) {
                return Err(ProvenanceError::UnknownInput(*input));
            }
        }
        for output in &builder.outputs {
            if let Some(existing) = g.producer.get(output) {
                return Err(ProvenanceError::DuplicateProducer {
                    dataset: *output,
                    existing: *existing,
                });
            }
        }
        let id = StepId(self.step_ids.allocate());
        for input in &builder.inputs {
            g.consumers.entry(*input).or_default().push(id);
        }
        for output in &builder.outputs {
            g.producer.insert(*output, id);
            g.datasets.insert(*output);
        }
        g.steps.insert(
            id,
            StepRecord {
                id,
                kind: builder.kind,
                config: builder.config,
                software: builder.software,
                conditions_tag: builder.conditions_tag,
                seed: builder.seed,
                inputs: builder.inputs,
                outputs: builder.outputs,
            },
        );
        Ok(id)
    }

    /// The step that produced a dataset, if recorded.
    pub fn producer_of(&self, ds: DatasetId) -> Option<StepRecord> {
        let g = self.inner.read();
        g.producer.get(&ds).and_then(|s| g.steps.get(s)).cloned()
    }

    /// Full lineage of a dataset: every ancestor step, ordered from the
    /// dataset's producer back to the roots.
    pub fn lineage(&self, ds: DatasetId) -> Result<Vec<StepRecord>, ProvenanceError> {
        let g = self.inner.read();
        if !g.datasets.contains(&ds) {
            return Err(ProvenanceError::UnknownDataset(ds));
        }
        let mut out = Vec::new();
        let mut seen_steps = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(ds);
        while let Some(d) = queue.pop_front() {
            if let Some(step_id) = g.producer.get(&d) {
                if seen_steps.insert(*step_id) {
                    let step = &g.steps[step_id];
                    out.push(step.clone());
                    for input in &step.inputs {
                        queue.push_back(*input);
                    }
                }
            }
        }
        Ok(out)
    }

    /// All datasets derived (transitively) from `ds`.
    pub fn descendants(&self, ds: DatasetId) -> Result<Vec<DatasetId>, ProvenanceError> {
        let g = self.inner.read();
        if !g.datasets.contains(&ds) {
            return Err(ProvenanceError::UnknownDataset(ds));
        }
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(ds);
        while let Some(d) = queue.pop_front() {
            for step_id in g.consumers.get(&d).into_iter().flatten() {
                for output in &g.steps[step_id].outputs {
                    if out.insert(*output) {
                        queue.push_back(*output);
                    }
                }
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Datasets with no recorded producer that are NOT declared roots:
    /// the "parentage … may not be included" failure the report warns of.
    /// A dataset becomes an orphan when it is referenced as a step input
    /// via [`ProvenanceGraph::reference_unchecked`].
    pub fn orphans(&self) -> Vec<DatasetId> {
        let g = self.inner.read();
        g.datasets
            .iter()
            .filter(|d| !g.producer.contains_key(d) && !g.roots_contains(d))
            .copied()
            .collect()
    }

    /// Force-register a dataset reference without provenance (simulates a
    /// processing system that does not record parentage).
    pub fn reference_unchecked(&self, ds: DatasetId) {
        let mut g = self.inner.write();
        g.datasets.insert(ds);
        g.orphan_marks.insert(ds);
    }

    /// Completeness: the fraction of known datasets whose lineage reaches
    /// only declared roots or recorded producers (i.e. not orphans).
    pub fn completeness(&self) -> f64 {
        let g = self.inner.read();
        let total = g.datasets.len();
        if total == 0 {
            return 1.0;
        }
        let orphaned = g
            .datasets
            .iter()
            .filter(|d| !g.producer.contains_key(d) && !g.roots_contains(d))
            .count();
        (total - orphaned) as f64 / total as f64
    }

    /// Number of recorded steps.
    pub fn step_count(&self) -> usize {
        self.inner.read().steps.len()
    }

    /// Number of known datasets.
    pub fn dataset_count(&self) -> usize {
        self.inner.read().datasets.len()
    }

    /// Every recorded step, ordered by id.
    pub fn all_steps(&self) -> Vec<StepRecord> {
        self.inner.read().steps.values().cloned().collect()
    }

    /// Declared roots (datasets allowed to have no producer).
    pub fn roots(&self) -> Vec<DatasetId> {
        let g = self.inner.read();
        g.datasets
            .iter()
            .filter(|d| !g.producer.contains_key(d) && g.roots_contains(d))
            .copied()
            .collect()
    }
}

impl GraphInner {
    /// A dataset counts as a root when it was declared via `declare_root`
    /// (i.e. it is known but was never force-marked as an orphan import).
    fn roots_contains(&self, ds: &DatasetId) -> bool {
        self.datasets.contains(ds) && !self.orphan_marks.contains(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::SoftwareVersion;

    fn stack() -> SoftwareStack {
        SoftwareStack::on_current(vec![SoftwareVersion::new("daspos", 1, 0, 0)])
    }

    fn graph_with_chain() -> (ProvenanceGraph, DatasetId, DatasetId, DatasetId) {
        let g = ProvenanceGraph::new();
        let raw = DatasetId(1);
        let aod = DatasetId(2);
        let ntup = DatasetId(3);
        g.declare_root(raw);
        g.record(
            StepBuilder::new(StepKind::Reconstruction, "reco(atlas)", stack())
                .conditions("data-2013")
                .input(raw)
                .output(aod),
        )
        .unwrap();
        g.record(
            StepBuilder::new(StepKind::Ntupling, "schema:met,m_ll", stack())
                .input(aod)
                .output(ntup),
        )
        .unwrap();
        (g, raw, aod, ntup)
    }

    #[test]
    fn lineage_walks_to_root() {
        let (g, _raw, aod, ntup) = graph_with_chain();
        let lineage = g.lineage(ntup).unwrap();
        assert_eq!(lineage.len(), 2);
        assert_eq!(lineage[0].kind, StepKind::Ntupling);
        assert_eq!(lineage[1].kind, StepKind::Reconstruction);
        assert_eq!(lineage[1].conditions_tag.as_deref(), Some("data-2013"));
        assert_eq!(g.lineage(aod).unwrap().len(), 1);
    }

    #[test]
    fn descendants_walk_forward() {
        let (g, raw, aod, ntup) = graph_with_chain();
        let desc = g.descendants(raw).unwrap();
        assert_eq!(desc, vec![aod, ntup]);
        assert!(g.descendants(ntup).unwrap().is_empty());
    }

    #[test]
    fn unknown_input_rejected() {
        let g = ProvenanceGraph::new();
        let err = g
            .record(
                StepBuilder::new(StepKind::Analysis, "x", stack())
                    .input(DatasetId(42))
                    .output(DatasetId(43)),
            )
            .unwrap_err();
        assert_eq!(err, ProvenanceError::UnknownInput(DatasetId(42)));
    }

    #[test]
    fn duplicate_producer_rejected() {
        let g = ProvenanceGraph::new();
        g.declare_root(DatasetId(1));
        g.record(
            StepBuilder::new(StepKind::Reconstruction, "a", stack())
                .input(DatasetId(1))
                .output(DatasetId(2)),
        )
        .unwrap();
        let err = g
            .record(
                StepBuilder::new(StepKind::Reconstruction, "b", stack())
                    .input(DatasetId(1))
                    .output(DatasetId(2)),
            )
            .unwrap_err();
        assert!(matches!(err, ProvenanceError::DuplicateProducer { .. }));
    }

    #[test]
    fn orphans_and_completeness() {
        let (g, ..) = graph_with_chain();
        assert!(g.orphans().is_empty());
        assert_eq!(g.completeness(), 1.0);
        // An import without parentage appears.
        g.reference_unchecked(DatasetId(99));
        assert_eq!(g.orphans(), vec![DatasetId(99)]);
        assert!((g.completeness() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn roots_listed() {
        let (g, raw, ..) = graph_with_chain();
        assert_eq!(g.roots(), vec![raw]);
    }

    #[test]
    fn unknown_dataset_queries_error() {
        let g = ProvenanceGraph::new();
        assert!(g.lineage(DatasetId(7)).is_err());
        assert!(g.descendants(DatasetId(7)).is_err());
    }

    #[test]
    fn diamond_lineage_deduplicates_steps() {
        // raw → (stepA) → a; raw → (stepB) → b; a,b → (merge) → m.
        let g = ProvenanceGraph::new();
        let raw = DatasetId(1);
        g.declare_root(raw);
        g.record(
            StepBuilder::new(StepKind::SkimSlim, "a", stack())
                .input(raw)
                .output(DatasetId(2)),
        )
        .unwrap();
        g.record(
            StepBuilder::new(StepKind::SkimSlim, "b", stack())
                .input(raw)
                .output(DatasetId(3)),
        )
        .unwrap();
        g.record(
            StepBuilder::new(StepKind::Analysis, "merge", stack())
                .input(DatasetId(2))
                .input(DatasetId(3))
                .output(DatasetId(4)),
        )
        .unwrap();
        let lineage = g.lineage(DatasetId(4)).unwrap();
        assert_eq!(lineage.len(), 3);
        assert_eq!(g.step_count(), 3);
        assert_eq!(g.dataset_count(), 4);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let g = Arc::new(ProvenanceGraph::new());
        for i in 0..8 {
            g.declare_root(DatasetId(i));
        }
        let mut handles = Vec::new();
        for t in 0u64..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for i in 0..20u64 {
                    g.record(
                        StepBuilder::new(StepKind::SkimSlim, format!("t{t}i{i}"),
                            SoftwareStack::on_current(vec![]))
                            .input(DatasetId(t))
                            .output(DatasetId(1000 + t * 100 + i)),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(g.step_count(), 160);
    }
}
