//! # daspos-provenance — the external provenance capture structure
//!
//! The report's workflow analysis (§3.2) flags provenance retention as an
//! open problem: *"Depending on how the processing is done, the parentage
//! and computing (producer) description of a given file may not be
//! included. If this is the case, and the workflow is to be preserved, an
//! external structure to capture that provenance chain will need to be
//! created."*
//!
//! This crate is that external structure:
//!
//! * [`software`] — versioned software-stack descriptions (name, version,
//!   platform), the handle the migration experiment (P1) turns,
//! * [`graph`] — the provenance graph proper: processing-step nodes with
//!   their configuration, conditions tag, seed and software stack,
//!   connected to the datasets they consume and produce; lineage queries,
//!   orphan detection and completeness scoring,
//! * [`text`] — a line-oriented text serialization so the graph itself is
//!   archivable.

pub mod graph;
pub mod software;
pub mod text;

pub use graph::{ProvenanceError, ProvenanceGraph, StepKind, StepRecord};
pub use software::{Platform, SoftwareStack, SoftwareVersion};
