//! Software-stack descriptions.
//!
//! Appendix A of the report asks each experiment to document, per data
//! lifecycle stage, *"the software package(s) required to access and
//! analyze the data"*, whether each is external, and *"which version of
//! the software is required"*. [`SoftwareStack`] is that answer as data.

use std::fmt;

/// The computing platform a software build targets. The RECAST risk the
/// report discusses — *"the full experimental code base must be migrated
/// to new computing platforms when such transitions become necessary"* —
/// is modelled as platform mismatches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Platform(pub String);

impl Platform {
    /// The platform current productions run on.
    pub fn current() -> Platform {
        Platform("slc6-x86_64".to_string())
    }

    /// A successor platform for migration experiments.
    pub fn successor() -> Platform {
        Platform("el9-aarch64".to_string())
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One versioned software package.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SoftwareVersion {
    /// Package name (e.g. `"daspos-reco"`).
    pub name: String,
    /// Version triple.
    pub major: u32,
    /// Minor version.
    pub minor: u32,
    /// Patch version.
    pub patch: u32,
    /// Whether the package is external to the experiment's own code base
    /// (Appendix A §5.6A distinguishes these).
    pub external: bool,
}

impl SoftwareVersion {
    /// Construct a package version.
    pub fn new(name: &str, major: u32, minor: u32, patch: u32) -> Self {
        SoftwareVersion {
            name: name.to_string(),
            major,
            minor,
            patch,
            external: false,
        }
    }

    /// Mark the package external.
    pub fn external(mut self) -> Self {
        self.external = true;
        self
    }

    /// Two versions are interface-compatible when they share a major
    /// version.
    pub fn compatible_with(&self, other: &SoftwareVersion) -> bool {
        self.name == other.name && self.major == other.major
    }

    /// Canonical `name-x.y.z[+ext]` rendering.
    pub fn render(&self) -> String {
        format!(
            "{}-{}.{}.{}{}",
            self.name,
            self.major,
            self.minor,
            self.patch,
            if self.external { "+ext" } else { "" }
        )
    }

    /// Parse the canonical rendering.
    pub fn parse(s: &str) -> Option<SoftwareVersion> {
        let (body, external) = match s.strip_suffix("+ext") {
            Some(b) => (b, true),
            None => (s, false),
        };
        let (name, version) = body.rsplit_once('-')?;
        let mut parts = version.split('.');
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next()?.parse().ok()?;
        let patch = parts.next()?.parse().ok()?;
        if parts.next().is_some() || name.is_empty() {
            return None;
        }
        Some(SoftwareVersion {
            name: name.to_string(),
            major,
            minor,
            patch,
            external,
        })
    }
}

impl fmt::Display for SoftwareVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A complete software stack for one processing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareStack {
    /// The platform the stack was built for.
    pub platform: Platform,
    /// The packages, experiment code and externals alike.
    pub packages: Vec<SoftwareVersion>,
}

impl SoftwareStack {
    /// A stack on the current platform.
    pub fn on_current(packages: Vec<SoftwareVersion>) -> Self {
        SoftwareStack {
            platform: Platform::current(),
            packages,
        }
    }

    /// True when this stack can run on `platform` as-is.
    pub fn runs_on(&self, platform: &Platform) -> bool {
        self.platform == *platform
    }

    /// A migrated copy targeting a new platform (a *rebuild*: versions
    /// keep their majors so configs stay compatible, patch is bumped).
    pub fn migrated_to(&self, platform: Platform) -> SoftwareStack {
        SoftwareStack {
            platform,
            packages: self
                .packages
                .iter()
                .map(|p| SoftwareVersion {
                    patch: p.patch + 1,
                    ..p.clone()
                })
                .collect(),
        }
    }

    /// Packages external to the experiment code base.
    pub fn externals(&self) -> impl Iterator<Item = &SoftwareVersion> {
        self.packages.iter().filter(|p| p.external)
    }

    /// Canonical one-line rendering: `platform|pkg1;pkg2;…`.
    pub fn render(&self) -> String {
        let pkgs = self
            .packages
            .iter()
            .map(SoftwareVersion::render)
            .collect::<Vec<_>>()
            .join(";");
        format!("{}|{}", self.platform, pkgs)
    }

    /// Parse the canonical rendering.
    pub fn parse(s: &str) -> Option<SoftwareStack> {
        let (platform, pkgs) = s.split_once('|')?;
        let packages = pkgs
            .split(';')
            .filter(|p| !p.is_empty())
            .map(SoftwareVersion::parse)
            .collect::<Option<Vec<_>>>()?;
        Some(SoftwareStack {
            platform: Platform(platform.to_string()),
            packages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_render_parse_round_trip() {
        let v = SoftwareVersion::new("daspos-reco", 2, 4, 1);
        assert_eq!(SoftwareVersion::parse(&v.render()), Some(v.clone()));
        let e = SoftwareVersion::new("root-like", 6, 30, 2).external();
        assert_eq!(e.render(), "root-like-6.30.2+ext");
        assert_eq!(SoftwareVersion::parse(&e.render()), Some(e));
    }

    #[test]
    fn version_parse_rejects_malformed() {
        for bad in ["", "noversion", "x-1.2", "x-1.2.3.4", "-1.2.3", "x-a.b.c"] {
            assert!(SoftwareVersion::parse(bad).is_none(), "'{bad}' should fail");
        }
    }

    #[test]
    fn compatibility_is_major_based() {
        let a = SoftwareVersion::new("reco", 2, 0, 0);
        let b = SoftwareVersion::new("reco", 2, 9, 5);
        let c = SoftwareVersion::new("reco", 3, 0, 0);
        let d = SoftwareVersion::new("other", 2, 0, 0);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        assert!(!a.compatible_with(&d));
    }

    #[test]
    fn stack_platform_gating() {
        let stack = SoftwareStack::on_current(vec![SoftwareVersion::new("gen", 1, 0, 0)]);
        assert!(stack.runs_on(&Platform::current()));
        assert!(!stack.runs_on(&Platform::successor()));
    }

    #[test]
    fn migration_keeps_majors() {
        let stack = SoftwareStack::on_current(vec![
            SoftwareVersion::new("gen", 1, 2, 3),
            SoftwareVersion::new("root-like", 6, 30, 2).external(),
        ]);
        let migrated = stack.migrated_to(Platform::successor());
        assert!(migrated.runs_on(&Platform::successor()));
        for (old, new) in stack.packages.iter().zip(&migrated.packages) {
            assert!(old.compatible_with(new));
            assert_eq!(new.patch, old.patch + 1);
        }
    }

    #[test]
    fn stack_render_parse_round_trip() {
        let stack = SoftwareStack::on_current(vec![
            SoftwareVersion::new("gen", 1, 2, 3),
            SoftwareVersion::new("conditions-db", 4, 0, 0).external(),
        ]);
        assert_eq!(SoftwareStack::parse(&stack.render()), Some(stack));
    }

    #[test]
    fn externals_filter() {
        let stack = SoftwareStack::on_current(vec![
            SoftwareVersion::new("gen", 1, 0, 0),
            SoftwareVersion::new("grid", 9, 0, 0).external(),
        ]);
        let ext: Vec<_> = stack.externals().collect();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].name, "grid");
    }
}
