//! Property-based tests for four-vector algebra and histograms.

use daspos_hep::fourvec::{delta_phi, FourVector};
use daspos_hep::hist::Hist1D;
use daspos_hep::stats::RunningStats;
use proptest::prelude::*;

fn arb_fourvec() -> impl Strategy<Value = FourVector> {
    (
        1.0e-3..500.0f64,  // pt
        -4.5..4.5f64,      // eta
        -3.1..3.1f64,      // phi
        0.0..200.0f64,     // mass
    )
        .prop_map(|(pt, eta, phi, m)| FourVector::from_pt_eta_phi_m(pt, eta, phi, m))
}

proptest! {
    #[test]
    fn addition_is_commutative(a in arb_fourvec(), b in arb_fourvec()) {
        let ab = a + b;
        let ba = b + a;
        prop_assert!((ab.px - ba.px).abs() < 1e-9);
        prop_assert!((ab.e - ba.e).abs() < 1e-9);
    }

    #[test]
    fn mass_is_nonnegative_and_matches_construction(
        pt in 0.1..300.0f64, eta in -4.0..4.0f64, phi in -3.0..3.0f64, m in 0.0..150.0f64
    ) {
        let v = FourVector::from_pt_eta_phi_m(pt, eta, phi, m);
        prop_assert!(v.mass() >= 0.0);
        // Relative tolerance: the construction goes through large cancellations at high eta.
        let scale = v.e.max(1.0);
        prop_assert!((v.mass() - m).abs() < 1e-6 * scale, "m = {}, got {}", m, v.mass());
    }

    #[test]
    fn boost_preserves_minkowski_norm(v in arb_fourvec(), bx in -0.9..0.9f64, by in -0.4..0.4f64) {
        if bx * bx + by * by < 0.99 {
            let b = v.boosted(bx, by, 0.0).unwrap();
            let scale = v.e.max(1.0) * v.e.max(1.0);
            prop_assert!((b.m2() - v.m2()).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn delta_phi_is_wrapped_and_antisymmetric(p1 in -10.0..10.0f64, p2 in -10.0..10.0f64) {
        let d = delta_phi(p1, p2);
        prop_assert!(d > -std::f64::consts::PI - 1e-12);
        prop_assert!(d <= std::f64::consts::PI + 1e-12);
        let r = delta_phi(p2, p1);
        // Antisymmetric up to the branch point at exactly pi.
        prop_assert!((d + r).abs() < 1e-9 || (d + r).abs() > 2.0 * std::f64::consts::PI - 1e-9);
    }

    #[test]
    fn delta_r_triangle_inequality(a in arb_fourvec(), b in arb_fourvec(), c in arb_fourvec()) {
        prop_assert!(a.delta_r(&c) <= a.delta_r(&b) + b.delta_r(&c) + 1e-9);
    }

    #[test]
    fn hist_merge_commutes(xs in prop::collection::vec(-2.0..12.0f64, 0..200), split in 0usize..200) {
        let mut h1 = Hist1D::new("a", 20, 0.0, 10.0).unwrap();
        let mut h2 = Hist1D::new("a", 20, 0.0, 10.0).unwrap();
        let split = split.min(xs.len());
        for &x in &xs[..split] { h1.fill(x); }
        for &x in &xs[split..] { h2.fill(x); }
        let mut m12 = h1.clone();
        m12.merge(&h2).unwrap();
        let mut m21 = h2.clone();
        m21.merge(&h1).unwrap();
        prop_assert!(m12.identical_to(&m21));
        prop_assert_eq!(m12.entries(), xs.len() as u64);
    }

    #[test]
    fn hist_integral_counts_everything(xs in prop::collection::vec(-5.0..15.0f64, 0..300)) {
        let mut h = Hist1D::new("all", 10, 0.0, 10.0).unwrap();
        for &x in &xs { h.fill(x); }
        prop_assert!((h.integral_with_flows() - xs.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_matches_sequential(
        xs in prop::collection::vec(-100.0..100.0f64, 1..100),
        ys in prop::collection::vec(-100.0..100.0f64, 1..100)
    ) {
        let mut whole = RunningStats::new();
        for &x in xs.iter().chain(&ys) { whole.push(x); }
        let mut a = RunningStats::new();
        for &x in &xs { a.push(x); }
        let mut b = RunningStats::new();
        for &y in &ys { b.push(y); }
        a.merge(&b);
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn seed_streams_independent_of_order(master in any::<u64>(), i in 0u64..10_000, j in 0u64..10_000) {
        use daspos_hep::SeedSequence;
        let s = SeedSequence::new(master);
        let a_then_b = (s.event("gen", i), s.event("gen", j));
        let b_then_a = (s.event("gen", j), s.event("gen", i));
        prop_assert_eq!(a_then_b.0, b_then_a.1);
        prop_assert_eq!(a_then_b.1, b_then_a.0);
        if i != j {
            prop_assert_ne!(a_then_b.0, a_then_b.1);
        }
    }
}
