//! Relativistic four-vector algebra.
//!
//! [`FourVector`] is the workhorse of every kinematic computation in the
//! toolkit: generator-level momenta, reconstructed candidate momenta, and
//! the derived observables (pT, η, φ, invariant masses) that analyses cut
//! on. It is a `Copy` type of four `f64`s so that per-event work allocates
//! nothing.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::error::HepError;

/// A four-momentum (px, py, pz, E) in GeV with the metric (+,−,−,−).
///
/// The same type doubles as a four-position (x, y, z, ct) where needed;
/// the algebra is identical.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FourVector {
    /// x-component of the momentum (GeV).
    pub px: f64,
    /// y-component of the momentum (GeV).
    pub py: f64,
    /// z-component of the momentum (GeV) — along the beam axis.
    pub pz: f64,
    /// Energy (GeV).
    pub e: f64,
}

impl FourVector {
    /// The zero vector.
    pub const ZERO: FourVector = FourVector {
        px: 0.0,
        py: 0.0,
        pz: 0.0,
        e: 0.0,
    };

    /// Construct from Cartesian components.
    #[inline]
    pub fn new(px: f64, py: f64, pz: f64, e: f64) -> Self {
        FourVector { px, py, pz, e }
    }

    /// Construct from transverse momentum, pseudorapidity, azimuth and mass:
    /// the coordinates in which detector acceptance is naturally expressed.
    pub fn from_pt_eta_phi_m(pt: f64, eta: f64, phi: f64, m: f64) -> Self {
        let px = pt * phi.cos();
        let py = pt * phi.sin();
        let pz = pt * eta.sinh();
        let p2 = px * px + py * py + pz * pz;
        let e = (p2 + m * m).sqrt();
        FourVector { px, py, pz, e }
    }

    /// Construct from transverse momentum, pseudorapidity, azimuth and
    /// energy (used when the energy is measured directly, e.g. in a
    /// calorimeter).
    pub fn from_pt_eta_phi_e(pt: f64, eta: f64, phi: f64, e: f64) -> Self {
        FourVector {
            px: pt * phi.cos(),
            py: pt * phi.sin(),
            pz: pt * eta.sinh(),
            e,
        }
    }

    /// Construct a massive particle at rest.
    #[inline]
    pub fn at_rest(mass: f64) -> Self {
        FourVector::new(0.0, 0.0, 0.0, mass)
    }

    /// Magnitude of the three-momentum (GeV).
    #[inline]
    pub fn p(&self) -> f64 {
        (self.px * self.px + self.py * self.py + self.pz * self.pz).sqrt()
    }

    /// Transverse momentum pT (GeV).
    #[inline]
    pub fn pt(&self) -> f64 {
        (self.px * self.px + self.py * self.py).sqrt()
    }

    /// Transverse energy ET = E·sinθ.
    #[inline]
    pub fn et(&self) -> f64 {
        let p = self.p();
        if p == 0.0 {
            0.0
        } else {
            self.e * self.pt() / p
        }
    }

    /// Azimuthal angle φ ∈ (−π, π].
    #[inline]
    pub fn phi(&self) -> f64 {
        if self.px == 0.0 && self.py == 0.0 {
            0.0
        } else {
            self.py.atan2(self.px)
        }
    }

    /// Pseudorapidity η = −ln tan(θ/2). Returns ±∞ along the beam axis.
    #[inline]
    pub fn eta(&self) -> f64 {
        let pt = self.pt();
        if pt == 0.0 {
            if self.pz > 0.0 {
                f64::INFINITY
            } else if self.pz < 0.0 {
                f64::NEG_INFINITY
            } else {
                0.0
            }
        } else {
            (self.pz / pt).asinh()
        }
    }

    /// True rapidity y = ½ ln((E+pz)/(E−pz)).
    #[inline]
    pub fn rapidity(&self) -> f64 {
        0.5 * ((self.e + self.pz) / (self.e - self.pz)).ln()
    }

    /// Polar angle θ from the +z axis, in radians.
    #[inline]
    pub fn theta(&self) -> f64 {
        let pt = self.pt();
        pt.atan2(self.pz)
    }

    /// Invariant mass squared m² = E² − |p|² (may be negative for
    /// spacelike vectors produced by resolution smearing).
    #[inline]
    pub fn m2(&self) -> f64 {
        self.e * self.e
            - self.px * self.px
            - self.py * self.py
            - self.pz * self.pz
    }

    /// Invariant mass, clamped to zero for slightly spacelike vectors.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.m2().max(0.0).sqrt()
    }

    /// Minkowski inner product a·b = E_a E_b − p_a·p_b.
    #[inline]
    pub fn dot(&self, other: &FourVector) -> f64 {
        self.e * other.e
            - self.px * other.px
            - self.py * other.py
            - self.pz * other.pz
    }

    /// β = |p|/E of the particle. Returns 0 for a zero vector.
    #[inline]
    pub fn beta(&self) -> f64 {
        if self.e == 0.0 {
            0.0
        } else {
            self.p() / self.e
        }
    }

    /// Lorentz factor γ = E/m. Errors for non-timelike vectors.
    pub fn gamma(&self) -> Result<f64, HepError> {
        let m2 = self.m2();
        if m2 <= 0.0 {
            Err(HepError::NotTimelike { m2 })
        } else {
            Ok(self.e / m2.sqrt())
        }
    }

    /// Angular separation ΔR = √(Δη² + Δφ²), the standard cone metric for
    /// jet clustering and isolation.
    pub fn delta_r(&self, other: &FourVector) -> f64 {
        let deta = self.eta() - other.eta();
        let dphi = delta_phi(self.phi(), other.phi());
        (deta * deta + dphi * dphi).sqrt()
    }

    /// Boost this vector by velocity (bx, by, bz) (in units of c).
    ///
    /// Returns an error when |β| ≥ 1.
    pub fn boosted(&self, bx: f64, by: f64, bz: f64) -> Result<FourVector, HepError> {
        let b2 = bx * bx + by * by + bz * bz;
        if b2 >= 1.0 {
            return Err(HepError::InvalidParameter {
                name: "beta2",
                value: b2,
            });
        }
        if b2 == 0.0 {
            return Ok(*self);
        }
        let gamma = 1.0 / (1.0 - b2).sqrt();
        let bp = bx * self.px + by * self.py + bz * self.pz;
        let gamma2 = (gamma - 1.0) / b2;
        Ok(FourVector {
            px: self.px + gamma2 * bp * bx + gamma * bx * self.e,
            py: self.py + gamma2 * bp * by + gamma * by * self.e,
            pz: self.pz + gamma2 * bp * bz + gamma * bz * self.e,
            e: gamma * (self.e + bp),
        })
    }

    /// Boost `self` into the rest frame of `frame` (which must be timelike).
    pub fn boosted_to_rest_frame_of(&self, frame: &FourVector) -> Result<FourVector, HepError> {
        let m2 = frame.m2();
        if m2 <= 0.0 {
            return Err(HepError::NotTimelike { m2 });
        }
        self.boosted(
            -frame.px / frame.e,
            -frame.py / frame.e,
            -frame.pz / frame.e,
        )
    }

    /// Boost `self` (defined in the rest frame of `frame`) into the lab
    /// frame where `frame` has its given momentum.
    pub fn boosted_from_rest_frame_of(&self, frame: &FourVector) -> Result<FourVector, HepError> {
        let m2 = frame.m2();
        if m2 <= 0.0 {
            return Err(HepError::NotTimelike { m2 });
        }
        self.boosted(frame.px / frame.e, frame.py / frame.e, frame.pz / frame.e)
    }

    /// Scale the three-momentum (and energy for a massless treatment) by
    /// `k`, used by calibration corrections.
    #[inline]
    pub fn scaled(&self, k: f64) -> FourVector {
        FourVector {
            px: self.px * k,
            py: self.py * k,
            pz: self.pz * k,
            e: self.e * k,
        }
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.px.is_finite() && self.py.is_finite() && self.pz.is_finite() && self.e.is_finite()
    }
}

/// Signed azimuthal difference wrapped to (−π, π].
#[inline]
pub fn delta_phi(phi1: f64, phi2: f64) -> f64 {
    let mut d = phi1 - phi2;
    while d > std::f64::consts::PI {
        d -= 2.0 * std::f64::consts::PI;
    }
    while d <= -std::f64::consts::PI {
        d += 2.0 * std::f64::consts::PI;
    }
    d
}

/// Invariant mass of a collection of four-vectors.
pub fn invariant_mass<'a, I>(vectors: I) -> f64
where
    I: IntoIterator<Item = &'a FourVector>,
{
    let total: FourVector = vectors.into_iter().copied().fold(FourVector::ZERO, |a, b| a + b);
    total.mass()
}

impl Add for FourVector {
    type Output = FourVector;
    #[inline]
    fn add(self, rhs: FourVector) -> FourVector {
        FourVector {
            px: self.px + rhs.px,
            py: self.py + rhs.py,
            pz: self.pz + rhs.pz,
            e: self.e + rhs.e,
        }
    }
}

impl AddAssign for FourVector {
    #[inline]
    fn add_assign(&mut self, rhs: FourVector) {
        self.px += rhs.px;
        self.py += rhs.py;
        self.pz += rhs.pz;
        self.e += rhs.e;
    }
}

impl Sub for FourVector {
    type Output = FourVector;
    #[inline]
    fn sub(self, rhs: FourVector) -> FourVector {
        FourVector {
            px: self.px - rhs.px,
            py: self.py - rhs.py,
            pz: self.pz - rhs.pz,
            e: self.e - rhs.e,
        }
    }
}

impl SubAssign for FourVector {
    #[inline]
    fn sub_assign(&mut self, rhs: FourVector) {
        self.px -= rhs.px;
        self.py -= rhs.py;
        self.pz -= rhs.pz;
        self.e -= rhs.e;
    }
}

impl Neg for FourVector {
    type Output = FourVector;
    #[inline]
    fn neg(self) -> FourVector {
        FourVector {
            px: -self.px,
            py: -self.py,
            pz: -self.pz,
            e: -self.e,
        }
    }
}

impl Mul<f64> for FourVector {
    type Output = FourVector;
    #[inline]
    fn mul(self, k: f64) -> FourVector {
        self.scaled(k)
    }
}

impl std::iter::Sum for FourVector {
    fn sum<I: Iterator<Item = FourVector>>(iter: I) -> FourVector {
        iter.fold(FourVector::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn pt_eta_phi_round_trip() {
        let v = FourVector::from_pt_eta_phi_m(25.0, 1.2, 0.7, 0.105);
        assert!((v.pt() - 25.0).abs() < EPS);
        assert!((v.eta() - 1.2).abs() < EPS);
        assert!((v.phi() - 0.7).abs() < EPS);
        assert!((v.mass() - 0.105).abs() < 1e-6);
    }

    #[test]
    fn mass_of_z_to_mumu() {
        // Back-to-back muons from a Z at rest reconstruct the Z mass.
        let m_z = 91.1876;
        let p = (m_z * m_z / 4.0 - 0.105_f64 * 0.105).sqrt();
        let mu1 = FourVector::new(p, 0.0, 0.0, m_z / 2.0);
        let mu2 = FourVector::new(-p, 0.0, 0.0, m_z / 2.0);
        assert!((invariant_mass([&mu1, &mu2]) - m_z).abs() < 1e-6);
    }

    #[test]
    fn boost_to_rest_frame_gives_mass_energy() {
        let v = FourVector::from_pt_eta_phi_m(40.0, -0.8, 2.1, 91.2);
        let rest = v.boosted_to_rest_frame_of(&v).unwrap();
        assert!(rest.p() < 1e-6, "residual momentum {}", rest.p());
        assert!((rest.e - 91.2).abs() < 1e-6);
    }

    #[test]
    fn boost_round_trip_identity() {
        let frame = FourVector::from_pt_eta_phi_m(30.0, 0.5, -1.0, 91.2);
        let v = FourVector::from_pt_eta_phi_m(12.0, -1.5, 0.3, 0.0);
        let there = v.boosted_to_rest_frame_of(&frame).unwrap();
        let back = there.boosted_from_rest_frame_of(&frame).unwrap();
        assert!((back.px - v.px).abs() < 1e-9);
        assert!((back.py - v.py).abs() < 1e-9);
        assert!((back.pz - v.pz).abs() < 1e-9);
        assert!((back.e - v.e).abs() < 1e-9);
    }

    #[test]
    fn boost_preserves_invariant_mass() {
        let v = FourVector::from_pt_eta_phi_m(15.0, 0.2, 1.0, 1.865);
        let b = v.boosted(0.3, -0.2, 0.5).unwrap();
        assert!((b.mass() - v.mass()).abs() < 1e-9);
    }

    #[test]
    fn superluminal_boost_is_rejected() {
        let v = FourVector::at_rest(1.0);
        assert!(matches!(
            v.boosted(0.8, 0.8, 0.0),
            Err(HepError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn delta_phi_wraps() {
        assert!((delta_phi(3.0, -3.0) - (6.0 - 2.0 * std::f64::consts::PI)).abs() < EPS);
        assert!(delta_phi(0.1, 0.2) < 0.0);
        let d = delta_phi(-3.1, 3.1);
        assert!(d.abs() < 0.1 + 1e-9, "wrapped difference {d}");
    }

    #[test]
    fn delta_r_of_identical_is_zero() {
        let v = FourVector::from_pt_eta_phi_m(10.0, 0.4, -0.9, 0.0);
        assert_eq!(v.delta_r(&v), 0.0);
    }

    #[test]
    fn eta_along_beam_is_infinite() {
        let v = FourVector::new(0.0, 0.0, 10.0, 10.0);
        assert!(v.eta().is_infinite() && v.eta() > 0.0);
        let w = FourVector::new(0.0, 0.0, -10.0, 10.0);
        assert!(w.eta().is_infinite() && w.eta() < 0.0);
    }

    #[test]
    fn rapidity_equals_eta_for_massless() {
        let v = FourVector::from_pt_eta_phi_m(20.0, 1.7, 0.0, 0.0);
        assert!((v.rapidity() - v.eta()).abs() < 1e-9);
    }

    #[test]
    fn gamma_rejects_massless() {
        let v = FourVector::from_pt_eta_phi_m(20.0, 0.0, 0.0, 0.0);
        assert!(matches!(v.gamma(), Err(HepError::NotTimelike { .. })));
    }

    #[test]
    fn arithmetic_identities() {
        let a = FourVector::new(1.0, 2.0, 3.0, 4.0);
        let b = FourVector::new(-0.5, 1.0, 0.0, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        assert_eq!(a * 2.0, a + a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_iterator() {
        let parts = [
            FourVector::new(1.0, 0.0, 0.0, 2.0),
            FourVector::new(0.0, 1.0, 0.0, 2.0),
        ];
        let total: FourVector = parts.iter().copied().sum();
        assert_eq!(total, FourVector::new(1.0, 1.0, 0.0, 4.0));
    }

    #[test]
    fn et_of_central_particle_equals_e() {
        // At eta = 0 the particle is fully transverse: ET = E.
        let v = FourVector::from_pt_eta_phi_e(30.0, 0.0, 1.0, 30.0);
        assert!((v.et() - v.e).abs() < 1e-9);
    }
}
