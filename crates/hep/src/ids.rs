//! Opaque identifier newtypes shared across the toolkit.
//!
//! Every catalogued object — datasets, files, processing steps, analyses,
//! archives — is addressed by a typed id so that a provenance edge cannot
//! accidentally point at the wrong kind of object. The ids are small `Copy`
//! values; string names live in the catalogs, not in the ids.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl $name {
            /// Render as the canonical `prefix-N` string used in reports
            /// and provenance records.
            pub fn as_string(&self) -> String {
                format!("{}-{}", $prefix, self.0)
            }

            /// Parse the canonical `prefix-N` form back into an id.
            pub fn parse(s: &str) -> Option<Self> {
                let rest = s.strip_prefix($prefix)?.strip_prefix('-')?;
                rest.parse().ok().map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}-{}", $prefix, self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a dataset (a named collection of event files at one tier).
    DatasetId,
    "ds"
);
id_newtype!(
    /// Identifies a single file within a dataset.
    FileId,
    "file"
);
id_newtype!(
    /// Identifies one execution of a processing step (a provenance node).
    StepId,
    "step"
);
id_newtype!(
    /// Identifies a preserved analysis in the RIVET-like registry.
    AnalysisId,
    "ana"
);
id_newtype!(
    /// Identifies a preservation archive container.
    ArchiveId,
    "arc"
);
id_newtype!(
    /// Identifies a RECAST reanalysis request.
    RequestId,
    "req"
);
id_newtype!(
    /// Identifies a record in the reactions database.
    RecordId,
    "rec"
);

/// A process-wide monotonically increasing id source.
///
/// Catalogs use one `IdAllocator` each so that ids are unique within a
/// catalog without any global coordination. Allocation is lock-free.
#[derive(Debug, Default)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    /// An allocator starting at 1 (0 is reserved as a sentinel in
    /// serialized records).
    pub fn new() -> Self {
        IdAllocator {
            next: AtomicU64::new(1),
        }
    }

    /// An allocator resuming from a known next value (used when a catalog
    /// is restored from an archive).
    pub fn starting_at(next: u64) -> Self {
        IdAllocator {
            next: AtomicU64::new(next),
        }
    }

    /// Hand out the next raw id.
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// The value the next call to [`IdAllocator::allocate`] would return.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let ds = DatasetId(42);
        assert_eq!(ds.to_string(), "ds-42");
        assert_eq!(DatasetId::parse("ds-42"), Some(ds));
        assert_eq!(DatasetId::parse("file-42"), None);
        assert_eq!(DatasetId::parse("ds-"), None);
        assert_eq!(DatasetId::parse("ds-x"), None);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; we just confirm values carry
        // their prefixes.
        assert_eq!(FileId(1).to_string(), "file-1");
        assert_eq!(StepId(1).to_string(), "step-1");
        assert_eq!(AnalysisId(7).to_string(), "ana-7");
        assert_eq!(ArchiveId(7).to_string(), "arc-7");
        assert_eq!(RequestId(9).to_string(), "req-9");
        assert_eq!(RecordId(9).to_string(), "rec-9");
    }

    #[test]
    fn allocator_is_monotonic_and_unique() {
        let alloc = IdAllocator::new();
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(alloc.peek(), 3);
    }

    #[test]
    fn allocator_resume() {
        let alloc = IdAllocator::starting_at(100);
        assert_eq!(alloc.allocate(), 100);
    }

    #[test]
    fn allocator_concurrent_uniqueness() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let alloc = Arc::new(IdAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let alloc = Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.allocate()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().expect("thread panicked") {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 4000);
    }
}
