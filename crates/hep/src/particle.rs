//! Particle identities and truth-level particles.
//!
//! Particle species are identified by their PDG Monte Carlo numbering
//! scheme codes, the universal identifier across HEP event formats
//! (HepMC, the experiments' EDMs, RIVET analyses). [`PdgId`] is a newtype
//! over the raw `i32` with lookups for the species this toolkit generates.

use std::fmt;

use crate::error::HepError;
use crate::fourvec::FourVector;
use crate::units;

/// Electric charge in units of e, stored as thirds to stay exact for
/// quarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Charge(pub i8);

impl Charge {
    /// Charge in units of the elementary charge.
    #[inline]
    pub fn as_units(&self) -> f64 {
        f64::from(self.0) / 3.0
    }

    /// True for charge zero.
    #[inline]
    pub fn is_neutral(&self) -> bool {
        self.0 == 0
    }
}

/// A PDG Monte Carlo particle numbering scheme identifier.
///
/// Negative values denote antiparticles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PdgId(pub i32);

// Species table for the particles produced by daspos-gen:
// (pdg, name, mass GeV, 3*charge, lifetime ns)
const SPECIES: &[(i32, &str, f64, i8, f64)] = &[
    (1, "d", 0.0047, -1, f64::INFINITY),
    (2, "u", 0.0022, 2, f64::INFINITY),
    (3, "s", 0.095, -1, f64::INFINITY),
    (4, "c", 1.27, 2, f64::INFINITY),
    (5, "b", 4.18, -1, f64::INFINITY),
    (6, "t", 172.76, 2, 4.6e-16),
    (11, "e-", 0.000511, -3, f64::INFINITY),
    (12, "nu_e", 0.0, 0, f64::INFINITY),
    (13, "mu-", 0.10566, -3, 2.197e3 * 1.0e-9 * 1.0e9), // 2197 ns
    (14, "nu_mu", 0.0, 0, f64::INFINITY),
    (15, "tau-", 1.77686, -3, 2.903e-4),
    (16, "nu_tau", 0.0, 0, f64::INFINITY),
    (21, "g", 0.0, 0, f64::INFINITY),
    (22, "gamma", 0.0, 0, f64::INFINITY),
    (23, "Z0", 91.1876, 0, 2.638e-16),
    (24, "W+", 80.379, 3, 3.158e-16),
    (25, "H0", 125.25, 0, 1.62e-13),
    (111, "pi0", 0.13498, 0, 8.43e-8),
    (211, "pi+", 0.13957, 3, 26.03),
    (310, "K0S", 0.49761, 0, 0.08954),
    (130, "K0L", 0.49761, 0, 51.16),
    (321, "K+", 0.49368, 3, 12.38),
    (421, "D0", 1.86484, 0, 4.101e-4),
    (411, "D+", 1.86966, 3, 1.033e-3),
    (2212, "p", 0.93827, 3, f64::INFINITY),
    (2112, "n", 0.93957, 0, 8.784e11),
    (3122, "Lambda0", 1.11568, 0, 0.2632),
];

impl PdgId {
    /// The electron.
    pub const ELECTRON: PdgId = PdgId(11);
    /// The muon.
    pub const MUON: PdgId = PdgId(13);
    /// The tau lepton.
    pub const TAU: PdgId = PdgId(15);
    /// The photon.
    pub const PHOTON: PdgId = PdgId(22);
    /// The Z boson.
    pub const Z0: PdgId = PdgId(23);
    /// The W+ boson.
    pub const W_PLUS: PdgId = PdgId(24);
    /// The Higgs boson.
    pub const HIGGS: PdgId = PdgId(25);
    /// The gluon.
    pub const GLUON: PdgId = PdgId(21);
    /// The charged pion π+.
    pub const PI_PLUS: PdgId = PdgId(211);
    /// The neutral pion π0.
    pub const PI_ZERO: PdgId = PdgId(111);
    /// The short-lived neutral kaon K0S (the ALICE V0 masterclass species).
    pub const K0_SHORT: PdgId = PdgId(310);
    /// The charged kaon K+.
    pub const K_PLUS: PdgId = PdgId(321);
    /// The D0 meson (the LHCb lifetime masterclass species).
    pub const D0: PdgId = PdgId(421);
    /// The proton.
    pub const PROTON: PdgId = PdgId(2212);
    /// The Λ0 baryon.
    pub const LAMBDA: PdgId = PdgId(3122);

    /// The antiparticle of this species.
    #[inline]
    pub fn antiparticle(&self) -> PdgId {
        // Self-conjugate species keep their code.
        match self.0.abs() {
            21 | 22 | 23 | 25 | 111 | 310 | 130 => *self,
            _ => PdgId(-self.0),
        }
    }

    fn entry(&self) -> Option<&'static (i32, &'static str, f64, i8, f64)> {
        let abs = self.0.abs();
        SPECIES.iter().find(|(id, ..)| *id == abs)
    }

    /// True when the species is known to the toolkit's table.
    pub fn is_known(&self) -> bool {
        self.entry().is_some()
    }

    /// Rest mass in GeV.
    pub fn mass(&self) -> Result<f64, HepError> {
        self.entry()
            .map(|(_, _, m, _, _)| *m)
            .ok_or(HepError::UnknownPdgId(self.0))
    }

    /// Electric charge. Antiparticles flip the sign.
    pub fn charge(&self) -> Result<Charge, HepError> {
        self.entry()
            .map(|(_, _, _, q3, _)| {
                if self.0 < 0 {
                    Charge(-q3)
                } else {
                    Charge(*q3)
                }
            })
            .ok_or(HepError::UnknownPdgId(self.0))
    }

    /// Mean proper lifetime in nanoseconds (∞ for stable particles).
    pub fn lifetime_ns(&self) -> Result<f64, HepError> {
        self.entry()
            .map(|(_, _, _, _, tau)| *tau)
            .ok_or(HepError::UnknownPdgId(self.0))
    }

    /// Canonical short name, e.g. `"mu-"`; antiparticles are rendered with
    /// a `~` prefix (or a flipped charge sign for the simple cases).
    pub fn name(&self) -> String {
        match self.entry() {
            None => format!("pdg({})", self.0),
            Some((_, n, _, q3, _)) => {
                if self.0 >= 0 {
                    (*n).to_string()
                } else if *q3 != 0 && (n.ends_with('+') || n.ends_with('-')) {
                    
                    if n.ends_with('+') {
                        n.replace('+', "-")
                    } else {
                        n.replace('-', "+")
                    }
                } else {
                    format!("~{n}")
                }
            }
        }
    }

    /// True for charged leptons (e, μ, τ).
    #[inline]
    pub fn is_charged_lepton(&self) -> bool {
        matches!(self.0.abs(), 11 | 13 | 15)
    }

    /// True for any neutrino flavour.
    #[inline]
    pub fn is_neutrino(&self) -> bool {
        matches!(self.0.abs(), 12 | 14 | 16)
    }

    /// True for quarks and gluons.
    #[inline]
    pub fn is_parton(&self) -> bool {
        matches!(self.0.abs(), 1..=6 | 21)
    }

    /// True for hadrons in the species table.
    #[inline]
    pub fn is_hadron(&self) -> bool {
        self.0.abs() >= 100
    }

    /// True when the detector sees this particle directly (it neither
    /// decays inside the detector volume with certainty nor escapes
    /// invisibly). Neutrinos are invisible; partons hadronize.
    pub fn is_visible(&self) -> bool {
        !self.is_neutrino() && !self.is_parton()
    }

    /// Width in GeV derived from the lifetime.
    pub fn width_gev(&self) -> Result<f64, HepError> {
        Ok(units::lifetime_to_width_gev(self.lifetime_ns()?))
    }
}

impl fmt::Display for PdgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// HepMC-style particle status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParticleStatus {
    /// A beam particle entering the collision.
    Beam,
    /// An intermediate particle that decayed or was otherwise consumed.
    Decayed,
    /// A final-state particle that reaches the detector.
    Final,
    /// Documentation entries for hard-process bookkeeping (e.g. the
    /// intermediate W in W→ℓν before showering).
    Documentation,
}

impl ParticleStatus {
    /// The HepMC integer convention (4 = beam, 2 = decayed, 1 = final,
    /// 3 = documentation).
    pub fn code(&self) -> u8 {
        match self {
            ParticleStatus::Beam => 4,
            ParticleStatus::Decayed => 2,
            ParticleStatus::Final => 1,
            ParticleStatus::Documentation => 3,
        }
    }

    /// Inverse of [`ParticleStatus::code`].
    pub fn from_code(code: u8) -> Option<ParticleStatus> {
        match code {
            4 => Some(ParticleStatus::Beam),
            2 => Some(ParticleStatus::Decayed),
            1 => Some(ParticleStatus::Final),
            3 => Some(ParticleStatus::Documentation),
            _ => None,
        }
    }
}

/// A generator-level (truth) particle: a node in the event record.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthParticle {
    /// Species identifier.
    pub pdg: PdgId,
    /// Four-momentum in GeV.
    pub momentum: FourVector,
    /// Production vertex (x, y, z in mm; t in ns stored in `e`).
    pub production_vertex: FourVector,
    /// Status in the event record.
    pub status: ParticleStatus,
    /// Index of the parent particle within the event record, if any.
    pub parent: Option<u32>,
}

impl TruthParticle {
    /// A final-state particle produced at the origin.
    pub fn final_state(pdg: PdgId, momentum: FourVector) -> Self {
        TruthParticle {
            pdg,
            momentum,
            production_vertex: FourVector::ZERO,
            status: ParticleStatus::Final,
            parent: None,
        }
    }

    /// A decayed intermediate particle produced at the origin.
    pub fn intermediate(pdg: PdgId, momentum: FourVector) -> Self {
        TruthParticle {
            pdg,
            momentum,
            production_vertex: FourVector::ZERO,
            status: ParticleStatus::Decayed,
            parent: None,
        }
    }

    /// Attach a parent index (builder style).
    pub fn with_parent(mut self, parent: u32) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Attach a production vertex (builder style).
    pub fn with_vertex(mut self, vertex: FourVector) -> Self {
        self.production_vertex = vertex;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn muon_properties() {
        let mu = PdgId::MUON;
        assert!((mu.mass().unwrap() - 0.10566).abs() < 1e-6);
        assert_eq!(mu.charge().unwrap(), Charge(-3));
        assert!(mu.is_charged_lepton());
        assert!(mu.is_visible());
        assert_eq!(mu.name(), "mu-");
    }

    #[test]
    fn antimuon_flips_charge_and_name() {
        let amu = PdgId::MUON.antiparticle();
        assert_eq!(amu, PdgId(-13));
        assert_eq!(amu.charge().unwrap(), Charge(3));
        assert_eq!(amu.name(), "mu+");
        assert_eq!(amu.mass().unwrap(), PdgId::MUON.mass().unwrap());
    }

    #[test]
    fn self_conjugate_species() {
        for id in [PdgId::PHOTON, PdgId::Z0, PdgId::HIGGS, PdgId::PI_ZERO, PdgId::K0_SHORT] {
            assert_eq!(id.antiparticle(), id, "{id} should be self-conjugate");
        }
        // D0 is NOT self-conjugate.
        assert_eq!(PdgId::D0.antiparticle(), PdgId(-421));
    }

    #[test]
    fn unknown_pdg_errors() {
        let bogus = PdgId(999_999);
        assert!(!bogus.is_known());
        assert_eq!(bogus.mass(), Err(HepError::UnknownPdgId(999_999)));
        assert!(bogus.name().contains("999999"));
    }

    #[test]
    fn neutrinos_are_invisible() {
        for id in [12, 14, 16, -12, -14, -16] {
            assert!(PdgId(id).is_neutrino());
            assert!(!PdgId(id).is_visible());
        }
    }

    #[test]
    fn partons_are_not_visible() {
        assert!(PdgId::GLUON.is_parton());
        assert!(!PdgId::GLUON.is_visible());
        assert!(PdgId(5).is_parton());
    }

    #[test]
    fn quark_charges_are_thirds() {
        assert!((PdgId(2).charge().unwrap().as_units() - 2.0 / 3.0).abs() < 1e-12);
        assert!((PdgId(1).charge().unwrap().as_units() + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn status_codes_round_trip() {
        for s in [
            ParticleStatus::Beam,
            ParticleStatus::Decayed,
            ParticleStatus::Final,
            ParticleStatus::Documentation,
        ] {
            assert_eq!(ParticleStatus::from_code(s.code()), Some(s));
        }
        assert_eq!(ParticleStatus::from_code(0), None);
    }

    #[test]
    fn k0s_lifetime_gives_cm_scale_flight() {
        // K0S: cτ ≈ 26.8 mm — the basis of the ALICE V0 masterclass.
        let ctau = PdgId::K0_SHORT.lifetime_ns().unwrap() * crate::units::C_MM_PER_NS;
        assert!((ctau - 26.84).abs() < 0.2, "ctau = {ctau} mm");
    }

    #[test]
    fn builder_methods() {
        let p = TruthParticle::final_state(PdgId::ELECTRON, FourVector::at_rest(0.000511))
            .with_parent(3)
            .with_vertex(FourVector::new(0.1, 0.2, 0.3, 0.0));
        assert_eq!(p.parent, Some(3));
        assert_eq!(p.production_vertex.px, 0.1);
        assert_eq!(p.status, ParticleStatus::Final);
    }
}
