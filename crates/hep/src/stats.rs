//! Random distributions and running statistics.
//!
//! `rand` supplies the uniform source; every physics distribution
//! (Gaussian, exponential, Breit–Wigner, Poisson, power law) is implemented
//! here so the toolkit has no further sampling dependencies and the exact
//! algorithms are preserved alongside the data they generated — itself a
//! preservation requirement the report's Appendix A (software lifecycle)
//! asks experiments to document.

use rand::Rng;

use crate::error::HepError;

/// Draw from a unit Gaussian via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw from N(mean, sigma). `sigma` must be non-negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> Result<f64, HepError> {
    if sigma < 0.0 || !sigma.is_finite() {
        return Err(HepError::InvalidParameter {
            name: "sigma",
            value: sigma,
        });
    }
    Ok(mean + sigma * standard_normal(rng))
}

/// Draw from an exponential with the given mean (e.g. a proper decay time
/// with mean lifetime τ).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> Result<f64, HepError> {
    if mean <= 0.0 || !mean.is_finite() {
        return Err(HepError::InvalidParameter {
            name: "mean",
            value: mean,
        });
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    Ok(-mean * u.ln())
}

/// Draw a resonance mass from a (non-relativistic) Breit–Wigner with pole
/// `mass` and full width `width`, truncated to `[mass - cut, mass + cut]`
/// with `cut = 25·width` to keep pathological tails out of the generator.
pub fn breit_wigner<R: Rng + ?Sized>(rng: &mut R, mass: f64, width: f64) -> Result<f64, HepError> {
    if mass <= 0.0 {
        return Err(HepError::InvalidParameter {
            name: "mass",
            value: mass,
        });
    }
    if width < 0.0 {
        return Err(HepError::InvalidParameter {
            name: "width",
            value: width,
        });
    }
    if width == 0.0 {
        return Ok(mass);
    }
    let cut = 25.0 * width;
    loop {
        // Inverse-CDF of the Cauchy distribution.
        let u: f64 = rng.gen_range(0.0..1.0);
        let m = mass + 0.5 * width * (std::f64::consts::PI * (u - 0.5)).tan();
        if m > 0.0 && (m - mass).abs() <= cut {
            return Ok(m);
        }
    }
}

/// Draw from a Poisson with the given mean (Knuth's algorithm below mean
/// 30, Gaussian approximation above — adequate for pileup multiplicities).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> Result<u32, HepError> {
    if mean < 0.0 || !mean.is_finite() {
        return Err(HepError::InvalidParameter {
            name: "mean",
            value: mean,
        });
    }
    if mean == 0.0 {
        return Ok(0);
    }
    if mean > 30.0 {
        let x = mean + mean.sqrt() * standard_normal(rng);
        return Ok(x.round().max(0.0) as u32);
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return Ok(k);
        }
        k += 1;
    }
}

/// Draw from a power-law spectrum `dN/dx ∝ x^(-n)` on `[xmin, xmax]`,
/// the canonical QCD jet-pT shape.
pub fn power_law<R: Rng + ?Sized>(
    rng: &mut R,
    n: f64,
    xmin: f64,
    xmax: f64,
) -> Result<f64, HepError> {
    if xmin <= 0.0 || xmax <= xmin {
        return Err(HepError::InvalidParameter {
            name: "xmin",
            value: xmin,
        });
    }
    if n <= 1.0 {
        return Err(HepError::InvalidParameter { name: "n", value: n });
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    let a = 1.0 - n;
    let x = (xmin.powf(a) + u * (xmax.powf(a) - xmin.powf(a))).powf(1.0 / a);
    Ok(x)
}

/// Bernoulli trial with probability `p` (clamped to [0, 1]).
pub fn accept<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen_range(0.0..1.0) < p
    }
}

/// Uniform azimuthal angle in (−π, π].
pub fn uniform_phi<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
}

/// Uniform cos θ in [−1, 1], the isotropic polar distribution.
pub fn uniform_cos_theta<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen_range(-1.0..1.0)
}

/// Numerically stable running mean/variance (Welford) with support for
/// weighted entries and merging, used for ensemble summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    sum_w: f64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            sum_w: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add an unweighted observation.
    pub fn push(&mut self, x: f64) {
        self.push_weighted(x, 1.0);
    }

    /// Add a weighted observation (non-positive weights are ignored).
    pub fn push_weighted(&mut self, x: f64, w: f64) {
        if w <= 0.0 || !x.is_finite() {
            return;
        }
        self.n += 1;
        self.sum_w += w;
        let delta = x - self.mean;
        self.mean += (w / self.sum_w) * delta;
        self.m2 += w * delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of weights.
    pub fn sum_weights(&self) -> f64 {
        self.sum_w
    }

    /// Weighted mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Weighted population variance (0 when fewer than 2 entries).
    pub fn variance(&self) -> f64 {
        if self.n < 2 || self.sum_w == 0.0 {
            0.0
        } else {
            self.m2 / self.sum_w
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let total_w = self.sum_w + other.sum_w;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * self.sum_w * other.sum_w / total_w;
        self.mean += delta * other.sum_w / total_w;
        self.sum_w = total_w;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Pearson χ² between two binned count vectors with the standard
/// `expected + observed` variance estimate; bins empty in both are skipped.
///
/// Returns `(chi2, ndf)`.
pub fn chi2_counts(observed: &[f64], expected: &[f64]) -> Result<(f64, usize), HepError> {
    if observed.len() != expected.len() {
        return Err(HepError::BinningMismatch {
            left: observed.len(),
            right: expected.len(),
        });
    }
    let mut chi2 = 0.0;
    let mut ndf = 0;
    for (&o, &e) in observed.iter().zip(expected) {
        let var = o + e;
        if var > 0.0 {
            chi2 += (o - e) * (o - e) / var;
            ndf += 1;
        }
    }
    Ok((chi2, ndf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDA5_905)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            s.push(normal(&mut r, 5.0, 2.0).unwrap());
        }
        assert!((s.mean() - 5.0).abs() < 0.02, "mean = {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.02, "sd = {}", s.std_dev());
    }

    #[test]
    fn normal_rejects_negative_sigma() {
        let mut r = rng();
        assert!(normal(&mut r, 0.0, -1.0).is_err());
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut r = rng();
        let mut s = RunningStats::new();
        for _ in 0..100_000 {
            let x = exponential(&mut r, 0.41).unwrap();
            assert!(x > 0.0);
            s.push(x);
        }
        assert!((s.mean() - 0.41).abs() < 0.01, "mean = {}", s.mean());
    }

    #[test]
    fn breit_wigner_peaks_at_pole() {
        let mut r = rng();
        let mut below = 0u32;
        let mut above = 0u32;
        for _ in 0..50_000 {
            let m = breit_wigner(&mut r, 91.1876, 2.4952).unwrap();
            assert!(m > 0.0);
            assert!((m - 91.1876).abs() <= 25.0 * 2.4952 + 1e-9);
            if m < 91.1876 {
                below += 1;
            } else {
                above += 1;
            }
        }
        // Symmetric around the pole.
        let asym = (f64::from(below) - f64::from(above)).abs() / 50_000.0;
        assert!(asym < 0.02, "asymmetry = {asym}");
    }

    #[test]
    fn breit_wigner_zero_width_is_delta() {
        let mut r = rng();
        assert_eq!(breit_wigner(&mut r, 1.0, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = rng();
        for mean in [0.5, 4.0, 60.0] {
            let mut s = RunningStats::new();
            for _ in 0..50_000 {
                s.push(f64::from(poisson(&mut r, mean).unwrap()));
            }
            assert!(
                (s.mean() - mean).abs() < 0.05 * mean.max(1.0),
                "mean {mean}: got {}",
                s.mean()
            );
        }
    }

    #[test]
    fn poisson_zero_mean() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0).unwrap(), 0);
    }

    #[test]
    fn power_law_respects_bounds_and_falls() {
        let mut r = rng();
        let mut low = 0u32;
        let mut high = 0u32;
        for _ in 0..50_000 {
            let x = power_law(&mut r, 5.0, 20.0, 500.0).unwrap();
            assert!((20.0..=500.0).contains(&x));
            if x < 40.0 {
                low += 1;
            } else if x > 100.0 {
                high += 1;
            }
        }
        assert!(low > 10 * high, "spectrum not steeply falling: {low} vs {high}");
    }

    #[test]
    fn accept_edges() {
        let mut r = rng();
        assert!(!accept(&mut r, 0.0));
        assert!(accept(&mut r, 1.0));
        assert!(!accept(&mut r, -0.5));
        assert!(accept(&mut r, 1.5));
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let mut r = rng();
        let xs: Vec<f64> = (0..1000).map(|_| standard_normal(&mut r)).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn running_stats_ignores_bad_input() {
        let mut s = RunningStats::new();
        s.push(f64::NAN);
        s.push_weighted(1.0, -2.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn chi2_identical_is_zero() {
        let a = [5.0, 10.0, 3.0];
        let (chi2, ndf) = chi2_counts(&a, &a).unwrap();
        assert_eq!(chi2, 0.0);
        assert_eq!(ndf, 3);
    }

    #[test]
    fn chi2_mismatched_lengths_error() {
        assert!(chi2_counts(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn chi2_skips_empty_bins() {
        let (chi2, ndf) = chi2_counts(&[0.0, 4.0], &[0.0, 4.0]).unwrap();
        assert_eq!(ndf, 1);
        assert_eq!(chi2, 0.0);
    }
}
