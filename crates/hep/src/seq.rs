//! Deterministic seed derivation.
//!
//! Reproducibility is the bedrock of preservation: a re-run of a preserved
//! workflow must regenerate bit-identical events. [`SeedSequence`] derives
//! statistically independent 64-bit seeds from a master seed plus stage
//! labels and event indices via SplitMix64 over a label hash, so:
//!
//! * the generator, detector simulation and reconstruction each get their
//!   own stream,
//! * every event gets its own sub-stream, making skims order-independent,
//! * the whole chain replays from a single archived integer.

/// SplitMix64 step: the standard 64-bit mixing finalizer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, used to fold stage names into streams.
#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic seed source rooted at a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Root a sequence at the archived master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed (recorded in provenance).
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Seed for a named processing stage (e.g. `"gen"`, `"detsim"`).
    pub fn stage(&self, label: &str) -> u64 {
        let mut state = self.master ^ fnv1a(label);
        splitmix64(&mut state)
    }

    /// Seed for one event within a named stage. Independent events get
    /// independent streams regardless of processing order.
    pub fn event(&self, label: &str, event_index: u64) -> u64 {
        let mut state = self.stage(label) ^ event_index.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut state)
    }

    /// A derived sub-sequence, e.g. for a RECAST request that must not
    /// collide with the original production.
    pub fn derive(&self, label: &str) -> SeedSequence {
        SeedSequence {
            master: self.stage(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stages_are_distinct() {
        let s = SeedSequence::new(12345);
        assert_ne!(s.stage("gen"), s.stage("detsim"));
        assert_ne!(s.stage("gen"), s.stage("reco"));
    }

    #[test]
    fn deterministic_across_instances() {
        let a = SeedSequence::new(7);
        let b = SeedSequence::new(7);
        assert_eq!(a.stage("gen"), b.stage("gen"));
        assert_eq!(a.event("gen", 999), b.event("gen", 999));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSequence::new(1).stage("gen"),
            SeedSequence::new(2).stage("gen")
        );
    }

    #[test]
    fn event_seeds_have_no_collisions_in_bulk() {
        let s = SeedSequence::new(42);
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(s.event("gen", i)), "collision at {i}");
        }
    }

    #[test]
    fn derived_sequences_are_independent() {
        let s = SeedSequence::new(42);
        let d1 = s.derive("recast-req-1");
        let d2 = s.derive("recast-req-2");
        assert_ne!(d1.master(), d2.master());
        assert_ne!(d1.event("gen", 0), s.event("gen", 0));
    }

    #[test]
    fn event_seed_bits_look_mixed() {
        // Cheap avalanche check: flipping the event index flips ~half the
        // output bits on average.
        let s = SeedSequence::new(42);
        let mut total = 0u32;
        for i in 0..1000u64 {
            total += (s.event("gen", i) ^ s.event("gen", i + 1)).count_ones();
        }
        let avg = f64::from(total) / 1000.0;
        assert!((avg - 32.0).abs() < 3.0, "avg flipped bits = {avg}");
    }
}
