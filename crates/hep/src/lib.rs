//! # daspos-hep — event data model and statistical primitives
//!
//! Foundation crate for the DASPOS preservation toolkit. Provides the
//! domain vocabulary every other crate builds on:
//!
//! * [`fourvec::FourVector`] — relativistic four-momentum algebra,
//! * [`particle`] — PDG particle identities and truth particles,
//! * [`event`] — the basic logical unit of HEP data: the *event*,
//! * [`stats`] — the random distributions and running statistics used by the
//!   synthetic generator and detector simulation,
//! * [`hist`] — weighted histograms, the lingua franca of HEP results,
//! * [`seq`] — deterministic seed derivation so every pipeline stage is
//!   reproducible from a single master seed (a preservation requirement).
//!
//! The DASPOS report (§3.1) stresses that "all high energy physics studies
//! are statistical in nature, where ensembles of events are considered and
//! properties of the ensemble are measured". The types here are therefore
//! designed for cheap per-event construction and ensemble-level aggregation.

pub mod error;
pub mod event;
pub mod fourvec;
pub mod hist;
pub mod ids;
pub mod particle;
pub mod seq;
pub mod stats;
pub mod units;

pub use error::HepError;
pub use event::{EventHeader, EventId, LumiBlockId, ProcessKind, RunId, TruthEvent};
pub use fourvec::FourVector;
pub use hist::{Hist1D, Hist2D};
pub use particle::{Charge, ParticleStatus, PdgId, TruthParticle};
pub use seq::SeedSequence;
