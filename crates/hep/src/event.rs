//! The event: the basic logical unit of HEP data.
//!
//! Per the DASPOS report (§3.1): *"The basic logical unit of data in
//! particle physics is called an 'event'. … the data from a single particle
//! collision is of no use for physics analysis. Large samples of events
//! must be compiled and filtered in order to produce sensible physics."*
//!
//! [`TruthEvent`] is the generator-level record (the HepMC analogue);
//! detector-level representations (raw hits, reconstructed objects) live in
//! the `detsim`/`reco` crates but share the [`EventHeader`].

use crate::fourvec::FourVector;
use crate::particle::{ParticleStatus, PdgId, TruthParticle};

/// A data-taking run: a contiguous period with stable detector conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u32);

/// A luminosity block within a run (the granularity at which conditions
/// such as beam intensity are recorded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LumiBlockId(pub u32);

/// An event number, unique within its run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

/// The identifying header carried by an event through every data tier.
///
/// Whatever gets skimmed, slimmed or re-reconstructed, the header is the
/// stable coordinate that lets provenance link representations of the same
/// collision across tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHeader {
    /// The run this event was recorded in.
    pub run: RunId,
    /// The luminosity block within the run.
    pub lumi_block: LumiBlockId,
    /// The event number within the run.
    pub event: EventId,
}

impl EventHeader {
    /// Construct a header.
    pub fn new(run: u32, lumi_block: u32, event: u64) -> Self {
        EventHeader {
            run: RunId(run),
            lumi_block: LumiBlockId(lumi_block),
            event: EventId(event),
        }
    }

    /// Canonical `run:lumi:event` rendering used in log and provenance
    /// records.
    pub fn coordinate(&self) -> String {
        format!("{}:{}:{}", self.run.0, self.lumi_block.0, self.event.0)
    }
}

/// Which physical process the generator produced (truth-level label).
///
/// Real data does not carry this label — analyses must infer it
/// statistically — but simulation keeps it for efficiency studies and it is
/// exactly what RECAST-style signal injection manipulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// QCD multijet production (the overwhelming background).
    QcdDijet,
    /// W boson production with leptonic decay.
    WBoson,
    /// Z/γ* production with leptonic decay.
    ZBoson,
    /// Standard Model Higgs production.
    Higgs,
    /// Open charm production (D mesons), the LHCb-style physics.
    Charm,
    /// Strange/V0 production (K0S, Λ), the ALICE-style physics.
    Strange,
    /// A beyond-Standard-Model signal injected by a RECAST request.
    NewPhysics,
    /// Minimum-bias / soft inelastic collisions (pileup).
    MinimumBias,
}

impl ProcessKind {
    /// Stable numeric code used by the binary tier codec.
    pub fn code(&self) -> u8 {
        match self {
            ProcessKind::QcdDijet => 0,
            ProcessKind::WBoson => 1,
            ProcessKind::ZBoson => 2,
            ProcessKind::Higgs => 3,
            ProcessKind::Charm => 4,
            ProcessKind::Strange => 5,
            ProcessKind::NewPhysics => 6,
            ProcessKind::MinimumBias => 7,
        }
    }

    /// Inverse of [`ProcessKind::code`].
    pub fn from_code(code: u8) -> Option<ProcessKind> {
        Some(match code {
            0 => ProcessKind::QcdDijet,
            1 => ProcessKind::WBoson,
            2 => ProcessKind::ZBoson,
            3 => ProcessKind::Higgs,
            4 => ProcessKind::Charm,
            5 => ProcessKind::Strange,
            6 => ProcessKind::NewPhysics,
            7 => ProcessKind::MinimumBias,
            _ => return None,
        })
    }

    /// Human-readable process name.
    pub fn name(&self) -> &'static str {
        match self {
            ProcessKind::QcdDijet => "qcd-dijet",
            ProcessKind::WBoson => "w-boson",
            ProcessKind::ZBoson => "z-boson",
            ProcessKind::Higgs => "higgs",
            ProcessKind::Charm => "charm",
            ProcessKind::Strange => "strange",
            ProcessKind::NewPhysics => "new-physics",
            ProcessKind::MinimumBias => "minimum-bias",
        }
    }

    /// All concrete Standard Model processes the generator offers.
    pub fn all() -> &'static [ProcessKind] {
        &[
            ProcessKind::QcdDijet,
            ProcessKind::WBoson,
            ProcessKind::ZBoson,
            ProcessKind::Higgs,
            ProcessKind::Charm,
            ProcessKind::Strange,
            ProcessKind::NewPhysics,
            ProcessKind::MinimumBias,
        ]
    }
}

/// A generator-level event record: the HepMC analogue.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthEvent {
    /// Identifying coordinates of the event.
    pub header: EventHeader,
    /// The truth process label.
    pub process: ProcessKind,
    /// The generator weight (1.0 for unweighted generation).
    pub weight: f64,
    /// The particle record; parents precede children.
    pub particles: Vec<TruthParticle>,
}

impl TruthEvent {
    /// An empty event for the given coordinates and process.
    pub fn new(header: EventHeader, process: ProcessKind) -> Self {
        TruthEvent {
            header,
            process,
            weight: 1.0,
            particles: Vec::new(),
        }
    }

    /// Append a particle and return its index for parent links.
    pub fn push(&mut self, particle: TruthParticle) -> u32 {
        self.particles.push(particle);
        (self.particles.len() - 1) as u32
    }

    /// Iterator over final-state particles.
    pub fn final_state(&self) -> impl Iterator<Item = &TruthParticle> {
        self.particles
            .iter()
            .filter(|p| p.status == ParticleStatus::Final)
    }

    /// Iterator over final-state particles visible to a detector
    /// (excludes neutrinos and any leftover partons).
    pub fn visible_final_state(&self) -> impl Iterator<Item = &TruthParticle> {
        self.final_state().filter(|p| p.pdg.is_visible())
    }

    /// The vector sum of visible final-state momenta; its negative
    /// transverse part is the true missing transverse momentum.
    pub fn visible_sum(&self) -> FourVector {
        self.visible_final_state().map(|p| p.momentum).sum()
    }

    /// True missing transverse energy: |Σ invisible pT|.
    pub fn true_met(&self) -> f64 {
        let invis: FourVector = self
            .final_state()
            .filter(|p| !p.pdg.is_visible())
            .map(|p| p.momentum)
            .sum();
        invis.pt()
    }

    /// Direct children of the particle at `index`.
    pub fn children_of(&self, index: u32) -> impl Iterator<Item = (u32, &TruthParticle)> {
        self.particles
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.parent == Some(index))
            .map(|(i, p)| (i as u32, p))
    }

    /// Find the first particle of the given species, if any.
    pub fn find(&self, pdg: PdgId) -> Option<(u32, &TruthParticle)> {
        self.particles
            .iter()
            .enumerate()
            .find(|(_, p)| p.pdg == pdg)
            .map(|(i, p)| (i as u32, p))
    }

    /// Validate internal consistency: parent links in range and pointing
    /// backwards (the record is topologically ordered), finite momenta.
    pub fn validate(&self) -> Result<(), String> {
        for (i, p) in self.particles.iter().enumerate() {
            if let Some(parent) = p.parent {
                if parent as usize >= i {
                    return Err(format!(
                        "particle {i} has parent {parent} which does not precede it"
                    ));
                }
            }
            if !p.momentum.is_finite() {
                return Err(format!("particle {i} has non-finite momentum"));
            }
            if p.momentum.e < 0.0 {
                return Err(format!("particle {i} has negative energy"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::TruthParticle;

    fn sample_event() -> TruthEvent {
        let mut ev = TruthEvent::new(EventHeader::new(1, 2, 3), ProcessKind::ZBoson);
        let z = ev.push(TruthParticle::intermediate(
            PdgId::Z0,
            FourVector::at_rest(91.1876),
        ));
        let p = (91.1876_f64 * 91.1876 / 4.0 - 0.10566 * 0.10566).sqrt();
        ev.push(
            TruthParticle::final_state(PdgId::MUON, FourVector::new(p, 0.0, 0.0, 91.1876 / 2.0))
                .with_parent(z),
        );
        ev.push(
            TruthParticle::final_state(
                PdgId::MUON.antiparticle(),
                FourVector::new(-p, 0.0, 0.0, 91.1876 / 2.0),
            )
            .with_parent(z),
        );
        ev
    }

    #[test]
    fn header_coordinate() {
        assert_eq!(EventHeader::new(10, 20, 30).coordinate(), "10:20:30");
    }

    #[test]
    fn process_codes_round_trip() {
        for p in ProcessKind::all() {
            assert_eq!(ProcessKind::from_code(p.code()), Some(*p));
        }
        assert_eq!(ProcessKind::from_code(200), None);
    }

    #[test]
    fn final_state_selection() {
        let ev = sample_event();
        assert_eq!(ev.final_state().count(), 2);
        assert_eq!(ev.visible_final_state().count(), 2);
        assert_eq!(ev.particles.len(), 3);
    }

    #[test]
    fn children_follow_parent_links() {
        let ev = sample_event();
        let kids: Vec<_> = ev.children_of(0).collect();
        assert_eq!(kids.len(), 2);
        assert!(kids.iter().all(|(_, p)| p.pdg.0.abs() == 13));
    }

    #[test]
    fn met_is_zero_without_neutrinos() {
        let ev = sample_event();
        assert!(ev.true_met() < 1e-9);
    }

    #[test]
    fn met_counts_neutrinos() {
        let mut ev = TruthEvent::new(EventHeader::new(1, 1, 1), ProcessKind::WBoson);
        ev.push(TruthParticle::final_state(
            PdgId(12),
            FourVector::new(30.0, 0.0, 5.0, (30.0_f64 * 30.0 + 25.0).sqrt()),
        ));
        assert!((ev.true_met() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert!(sample_event().validate().is_ok());
    }

    #[test]
    fn validate_rejects_forward_parent() {
        let mut ev = TruthEvent::new(EventHeader::new(1, 1, 1), ProcessKind::QcdDijet);
        ev.push(
            TruthParticle::final_state(PdgId::PI_PLUS, FourVector::new(1.0, 0.0, 0.0, 1.1))
                .with_parent(5),
        );
        assert!(ev.validate().is_err());
    }

    #[test]
    fn validate_rejects_nan_momentum() {
        let mut ev = TruthEvent::new(EventHeader::new(1, 1, 1), ProcessKind::QcdDijet);
        ev.push(TruthParticle::final_state(
            PdgId::PI_PLUS,
            FourVector::new(f64::NAN, 0.0, 0.0, 1.0),
        ));
        assert!(ev.validate().is_err());
    }

    #[test]
    fn find_locates_species() {
        let ev = sample_event();
        let (idx, z) = ev.find(PdgId::Z0).expect("Z present");
        assert_eq!(idx, 0);
        assert_eq!(z.pdg, PdgId::Z0);
        assert!(ev.find(PdgId::HIGGS).is_none());
    }
}
