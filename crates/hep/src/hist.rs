//! Weighted histograms.
//!
//! Histograms are the universal currency of HEP results: RIVET analyses
//! fill them, HepData archives them as tables, outreach exercises plot
//! them, and the validation engine compares re-run output against the
//! preserved reference. [`Hist1D`]/[`Hist2D`] track sums of weights and of
//! squared weights per bin (the `sumw2` convention) so statistical errors
//! survive merging and scaling.

use crate::error::HepError;
use crate::stats::chi2_counts;

/// Uniform binning over `[lo, hi)` with explicit under/overflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Binning {
    lo: f64,
    hi: f64,
    nbins: usize,
}

impl Binning {
    /// Construct a binning; errors on degenerate ranges or zero bins.
    pub fn new(nbins: usize, lo: f64, hi: f64) -> Result<Self, HepError> {
        if nbins == 0 {
            return Err(HepError::InvalidBinning {
                reason: "zero bins".to_string(),
            });
        }
        if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
            return Err(HepError::InvalidBinning {
                reason: format!("invalid range [{lo}, {hi})"),
            });
        }
        Ok(Binning { lo, hi, nbins })
    }

    /// Number of regular bins (excluding under/overflow).
    #[inline]
    pub fn nbins(&self) -> usize {
        self.nbins
    }

    /// Lower edge of the histogrammed range.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogrammed range.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of each regular bin.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.nbins as f64
    }

    /// Bin index for `x`: `None` for NaN, `Some(Slot)` otherwise.
    #[inline]
    pub fn locate(&self, x: f64) -> Option<Slot> {
        if x.is_nan() {
            return None;
        }
        if x < self.lo {
            Some(Slot::Underflow)
        } else if x >= self.hi {
            Some(Slot::Overflow)
        } else {
            let idx = ((x - self.lo) / self.width()) as usize;
            // Guard against floating rounding at the upper edge.
            Some(Slot::Bin(idx.min(self.nbins - 1)))
        }
    }

    /// Centre of regular bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// `[low, high)` edges of regular bin `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        (
            self.lo + i as f64 * self.width(),
            self.lo + (i + 1) as f64 * self.width(),
        )
    }
}

/// Where a fill landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Below the histogrammed range.
    Underflow,
    /// A regular bin.
    Bin(usize),
    /// At or above the upper edge.
    Overflow,
}

/// A one-dimensional weighted histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist1D {
    name: String,
    binning: Binning,
    sumw: Vec<f64>,
    sumw2: Vec<f64>,
    underflow: f64,
    overflow: f64,
    entries: u64,
}

impl Hist1D {
    /// A named histogram with `nbins` uniform bins over `[lo, hi)`.
    pub fn new(name: impl Into<String>, nbins: usize, lo: f64, hi: f64) -> Result<Self, HepError> {
        let binning = Binning::new(nbins, lo, hi)?;
        Ok(Hist1D {
            name: name.into(),
            sumw: vec![0.0; binning.nbins()],
            sumw2: vec![0.0; binning.nbins()],
            binning,
            underflow: 0.0,
            overflow: 0.0,
            entries: 0,
        })
    }

    /// The histogram's name (its path in YODA-like output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The binning.
    pub fn binning(&self) -> &Binning {
        &self.binning
    }

    /// Fill with unit weight.
    pub fn fill(&mut self, x: f64) {
        self.fill_weighted(x, 1.0);
    }

    /// Fill with an explicit weight; NaN values are dropped silently
    /// (matching ROOT/YODA behaviour).
    pub fn fill_weighted(&mut self, x: f64, w: f64) {
        let Some(slot) = self.binning.locate(x) else {
            return;
        };
        self.entries += 1;
        match slot {
            Slot::Underflow => self.underflow += w,
            Slot::Overflow => self.overflow += w,
            Slot::Bin(i) => {
                self.sumw[i] += w;
                self.sumw2[i] += w * w;
            }
        }
    }

    /// Number of fill calls that landed anywhere (including flows).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Sum of weights in regular bin `i`.
    pub fn bin(&self, i: usize) -> f64 {
        self.sumw[i]
    }

    /// Statistical error (√sumw2) of regular bin `i`.
    pub fn bin_error(&self, i: usize) -> f64 {
        self.sumw2[i].sqrt()
    }

    /// Sum of weights below range.
    pub fn underflow(&self) -> f64 {
        self.underflow
    }

    /// Sum of weights at/above range.
    pub fn overflow(&self) -> f64 {
        self.overflow
    }

    /// Integral of the regular bins (flows excluded).
    pub fn integral(&self) -> f64 {
        self.sumw.iter().sum()
    }

    /// Integral including under/overflow.
    pub fn integral_with_flows(&self) -> f64 {
        self.integral() + self.underflow + self.overflow
    }

    /// The regular-bin contents as a slice.
    pub fn values(&self) -> &[f64] {
        &self.sumw
    }

    /// Weighted mean of bin centres — the histogram's estimate of the mean
    /// of the underlying variable.
    pub fn mean(&self) -> f64 {
        let total = self.integral();
        if total == 0.0 {
            return 0.0;
        }
        self.sumw
            .iter()
            .enumerate()
            .map(|(i, w)| w * self.binning.center(i))
            .sum::<f64>()
            / total
    }

    /// Index of the regular bin with the largest content.
    pub fn peak_bin(&self) -> usize {
        self.sumw
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Scale all contents (and errors coherently) by `k`.
    pub fn scale(&mut self, k: f64) {
        for w in &mut self.sumw {
            *w *= k;
        }
        for w2 in &mut self.sumw2 {
            *w2 *= k * k;
        }
        self.underflow *= k;
        self.overflow *= k;
    }

    /// Normalize the regular-bin integral to `target` (no-op on an empty
    /// histogram).
    pub fn normalize(&mut self, target: f64) {
        let total = self.integral();
        if total != 0.0 {
            self.scale(target / total);
        }
    }

    /// Merge another histogram filled with the same binning.
    pub fn merge(&mut self, other: &Hist1D) -> Result<(), HepError> {
        if self.binning != other.binning {
            return Err(HepError::BinningMismatch {
                left: self.binning.nbins(),
                right: other.binning.nbins(),
            });
        }
        for (a, b) in self.sumw.iter_mut().zip(&other.sumw) {
            *a += b;
        }
        for (a, b) in self.sumw2.iter_mut().zip(&other.sumw2) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.entries += other.entries;
        Ok(())
    }

    /// χ²/ndf compatibility against a reference histogram of identical
    /// binning. Small values (≲ a few) indicate statistical agreement.
    pub fn chi2_ndf(&self, reference: &Hist1D) -> Result<f64, HepError> {
        if self.binning != reference.binning {
            return Err(HepError::BinningMismatch {
                left: self.binning.nbins(),
                right: reference.binning.nbins(),
            });
        }
        let (chi2, ndf) = chi2_counts(&self.sumw, &reference.sumw)?;
        Ok(if ndf == 0 { 0.0 } else { chi2 / ndf as f64 })
    }

    /// Exact equality of contents — used by the validation engine to check
    /// bit-level reproducibility of a preserved analysis.
    pub fn identical_to(&self, other: &Hist1D) -> bool {
        self.binning == other.binning
            && self.sumw == other.sumw
            && self.underflow == other.underflow
            && self.overflow == other.overflow
    }
}

/// A two-dimensional weighted histogram (e.g. efficiency grids over mass
/// parameter spaces, as archived in HepData for SUSY searches).
#[derive(Debug, Clone, PartialEq)]
pub struct Hist2D {
    name: String,
    x: Binning,
    y: Binning,
    sumw: Vec<f64>,
    sumw2: Vec<f64>,
    outside: f64,
    entries: u64,
}

impl Hist2D {
    /// A named 2-D histogram with uniform binning on both axes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        nx: usize,
        xlo: f64,
        xhi: f64,
        ny: usize,
        ylo: f64,
        yhi: f64,
    ) -> Result<Self, HepError> {
        let x = Binning::new(nx, xlo, xhi)?;
        let y = Binning::new(ny, ylo, yhi)?;
        Ok(Hist2D {
            name: name.into(),
            sumw: vec![0.0; nx * ny],
            sumw2: vec![0.0; nx * ny],
            x,
            y,
            outside: 0.0,
            entries: 0,
        })
    }

    /// The histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// X-axis binning.
    pub fn x_binning(&self) -> &Binning {
        &self.x
    }

    /// Y-axis binning.
    pub fn y_binning(&self) -> &Binning {
        &self.y
    }

    /// Fill with unit weight.
    pub fn fill(&mut self, x: f64, y: f64) {
        self.fill_weighted(x, y, 1.0);
    }

    /// Fill with an explicit weight. Entries outside the grid accumulate
    /// in a single `outside` flow sum.
    pub fn fill_weighted(&mut self, x: f64, y: f64, w: f64) {
        let (Some(sx), Some(sy)) = (self.x.locate(x), self.y.locate(y)) else {
            return;
        };
        self.entries += 1;
        match (sx, sy) {
            (Slot::Bin(i), Slot::Bin(j)) => {
                let k = j * self.x.nbins() + i;
                self.sumw[k] += w;
                self.sumw2[k] += w * w;
            }
            _ => self.outside += w,
        }
    }

    /// Content of bin (i, j).
    pub fn bin(&self, i: usize, j: usize) -> f64 {
        self.sumw[j * self.x.nbins() + i]
    }

    /// Weight that fell outside the grid.
    pub fn outside(&self) -> f64 {
        self.outside
    }

    /// Number of fill calls.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Integral over the grid (flow excluded).
    pub fn integral(&self) -> f64 {
        self.sumw.iter().sum()
    }

    /// Project onto the x axis, summing over y.
    pub fn project_x(&self) -> Result<Hist1D, HepError> {
        let mut h = Hist1D::new(
            format!("{}_px", self.name),
            self.x.nbins(),
            self.x.lo(),
            self.x.hi(),
        )?;
        for i in 0..self.x.nbins() {
            let mut w = 0.0;
            let mut w2 = 0.0;
            for j in 0..self.y.nbins() {
                let k = j * self.x.nbins() + i;
                w += self.sumw[k];
                w2 += self.sumw2[k];
            }
            h.sumw[i] = w;
            h.sumw2[i] = w2;
        }
        Ok(h)
    }

    /// Merge another 2-D histogram of identical binning.
    pub fn merge(&mut self, other: &Hist2D) -> Result<(), HepError> {
        if self.x != other.x || self.y != other.y {
            return Err(HepError::BinningMismatch {
                left: self.sumw.len(),
                right: other.sumw.len(),
            });
        }
        for (a, b) in self.sumw.iter_mut().zip(&other.sumw) {
            *a += b;
        }
        for (a, b) in self.sumw2.iter_mut().zip(&other.sumw2) {
            *a += b;
        }
        self.outside += other.outside;
        self.entries += other.entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_rejects_bad_input() {
        assert!(Binning::new(0, 0.0, 1.0).is_err());
        assert!(Binning::new(10, 1.0, 1.0).is_err());
        assert!(Binning::new(10, 2.0, 1.0).is_err());
        assert!(Binning::new(10, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn locate_edges() {
        let b = Binning::new(10, 0.0, 10.0).unwrap();
        assert_eq!(b.locate(-0.1), Some(Slot::Underflow));
        assert_eq!(b.locate(0.0), Some(Slot::Bin(0)));
        assert_eq!(b.locate(9.999), Some(Slot::Bin(9)));
        assert_eq!(b.locate(10.0), Some(Slot::Overflow));
        assert_eq!(b.locate(f64::NAN), None);
    }

    #[test]
    fn centers_and_edges() {
        let b = Binning::new(4, 0.0, 2.0).unwrap();
        assert!((b.width() - 0.5).abs() < 1e-12);
        assert!((b.center(0) - 0.25).abs() < 1e-12);
        let (lo, hi) = b.edges(3);
        assert!((lo - 1.5).abs() < 1e-12);
        assert!((hi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fill_and_flows() {
        let mut h = Hist1D::new("m", 10, 0.0, 100.0).unwrap();
        h.fill(50.0);
        h.fill(-1.0);
        h.fill(100.0);
        h.fill(f64::NAN);
        assert_eq!(h.entries(), 3);
        assert_eq!(h.integral(), 1.0);
        assert_eq!(h.underflow(), 1.0);
        assert_eq!(h.overflow(), 1.0);
        assert_eq!(h.integral_with_flows(), 3.0);
    }

    #[test]
    fn weighted_errors() {
        let mut h = Hist1D::new("w", 1, 0.0, 1.0).unwrap();
        h.fill_weighted(0.5, 2.0);
        h.fill_weighted(0.5, 2.0);
        assert_eq!(h.bin(0), 4.0);
        assert!((h.bin_error(0) - (8.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn scale_and_normalize() {
        let mut h = Hist1D::new("n", 2, 0.0, 2.0).unwrap();
        h.fill(0.5);
        h.fill(0.5);
        h.fill(1.5);
        h.normalize(1.0);
        assert!((h.integral() - 1.0).abs() < 1e-12);
        assert!((h.bin(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_with_fills() {
        let mut all = Hist1D::new("a", 5, 0.0, 5.0).unwrap();
        let mut h1 = all.clone();
        let mut h2 = all.clone();
        for x in [0.5, 1.5, 2.5] {
            all.fill(x);
            h1.fill(x);
        }
        for x in [3.5, 4.5] {
            all.fill(x);
            h2.fill(x);
        }
        h1.merge(&h2).unwrap();
        assert!(h1.identical_to(&all));
        assert_eq!(h1.entries(), all.entries());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = Hist1D::new("a", 5, 0.0, 5.0).unwrap();
        let b = Hist1D::new("b", 6, 0.0, 5.0).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn mean_of_symmetric_fill() {
        let mut h = Hist1D::new("sym", 100, -1.0, 1.0).unwrap();
        for i in 0..100 {
            h.fill(-0.99 + 0.02 * i as f64);
        }
        assert!(h.mean().abs() < 1e-9);
    }

    #[test]
    fn peak_bin_finds_mode() {
        let mut h = Hist1D::new("p", 10, 0.0, 10.0).unwrap();
        h.fill(3.5);
        h.fill(3.5);
        h.fill(7.5);
        assert_eq!(h.peak_bin(), 3);
    }

    #[test]
    fn chi2_of_identical_is_zero() {
        let mut a = Hist1D::new("a", 10, 0.0, 1.0).unwrap();
        for i in 0..100 {
            a.fill((i as f64 % 10.0) / 10.0);
        }
        let b = a.clone();
        assert_eq!(a.chi2_ndf(&b).unwrap(), 0.0);
    }

    #[test]
    fn hist2d_fill_project() {
        let mut h = Hist2D::new("grid", 4, 0.0, 4.0, 4, 0.0, 4.0).unwrap();
        h.fill(0.5, 0.5);
        h.fill(0.5, 3.5);
        h.fill(3.5, 0.5);
        h.fill(-1.0, 0.5); // outside
        assert_eq!(h.entries(), 4);
        assert_eq!(h.outside(), 1.0);
        assert_eq!(h.bin(0, 0), 1.0);
        assert_eq!(h.integral(), 3.0);
        let px = h.project_x().unwrap();
        assert_eq!(px.bin(0), 2.0);
        assert_eq!(px.bin(3), 1.0);
    }

    #[test]
    fn hist2d_merge() {
        let mut a = Hist2D::new("a", 2, 0.0, 2.0, 2, 0.0, 2.0).unwrap();
        let mut b = a.clone();
        a.fill(0.5, 0.5);
        b.fill(1.5, 1.5);
        a.merge(&b).unwrap();
        assert_eq!(a.integral(), 2.0);
        let c = Hist2D::new("c", 3, 0.0, 2.0, 2, 0.0, 2.0).unwrap();
        assert!(a.merge(&c).is_err());
    }
}
