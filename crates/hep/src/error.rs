//! Error type shared by the foundation crate.

use std::fmt;

/// Errors raised by the event-model and statistics primitives.
///
/// Library code never panics on user input; every fallible operation
/// returns `Result<_, HepError>` with enough context to diagnose the
/// failure without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub enum HepError {
    /// A histogram was constructed with invalid binning (non-positive bin
    /// count, non-finite or inverted edges).
    InvalidBinning {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// Two histograms with incompatible binning were combined.
    BinningMismatch {
        /// Bin count of the left operand.
        left: usize,
        /// Bin count of the right operand.
        right: usize,
    },
    /// A distribution parameter was outside its domain (e.g. negative
    /// width for a Gaussian, non-positive mean for a Poisson).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A four-vector operation required a timelike vector but received a
    /// spacelike or lightlike one (e.g. boosting to the rest frame of a
    /// massless particle).
    NotTimelike {
        /// The invariant mass-squared that was found.
        m2: f64,
    },
    /// A particle identity lookup failed.
    UnknownPdgId(i32),
}

impl fmt::Display for HepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HepError::InvalidBinning { reason } => {
                write!(f, "invalid histogram binning: {reason}")
            }
            HepError::BinningMismatch { left, right } => write!(
                f,
                "histogram binning mismatch: {left} bins vs {right} bins"
            ),
            HepError::InvalidParameter { name, value } => {
                write!(f, "invalid distribution parameter {name} = {value}")
            }
            HepError::NotTimelike { m2 } => {
                write!(f, "four-vector is not timelike (m^2 = {m2})")
            }
            HepError::UnknownPdgId(id) => write!(f, "unknown PDG id {id}"),
        }
    }
}

impl std::error::Error for HepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HepError::InvalidParameter {
            name: "sigma",
            value: -1.0,
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HepError>();
    }
}
