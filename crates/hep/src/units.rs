//! Units and physical constants.
//!
//! Natural units with energies in GeV, lengths in millimetres and times in
//! nanoseconds, following the conventions used by the LHC experiments'
//! event data models.

/// One giga-electronvolt — the base energy unit. All momenta and masses in
/// the toolkit are expressed in GeV.
pub const GEV: f64 = 1.0;

/// One mega-electronvolt in GeV.
pub const MEV: f64 = 1.0e-3;

/// One tera-electronvolt in GeV.
pub const TEV: f64 = 1.0e3;

/// Speed of light in mm/ns. Used to convert decay proper times into
/// laboratory flight distances.
pub const C_MM_PER_NS: f64 = 299.792_458;

/// ħc in GeV·mm, used to convert resonance widths into lifetimes.
pub const HBAR_C_GEV_MM: f64 = 1.973_269_804e-13;

/// ħ in GeV·ns: `τ [ns] = HBAR_GEV_NS / Γ [GeV]`.
pub const HBAR_GEV_NS: f64 = 6.582_119_569e-16;

/// Convert picoseconds to nanoseconds.
#[inline]
pub fn ps_to_ns(ps: f64) -> f64 {
    ps * 1.0e-3
}

/// Convert a resonance full width Γ (GeV) to a mean lifetime τ (ns).
///
/// Returns `f64::INFINITY` for a zero width (a stable particle).
#[inline]
pub fn width_to_lifetime_ns(width_gev: f64) -> f64 {
    if width_gev <= 0.0 {
        f64::INFINITY
    } else {
        HBAR_GEV_NS / width_gev
    }
}

/// Convert a mean lifetime τ (ns) to a resonance full width Γ (GeV).
///
/// Returns `0.0` for an infinite lifetime.
#[inline]
pub fn lifetime_to_width_gev(tau_ns: f64) -> f64 {
    if !tau_ns.is_finite() || tau_ns <= 0.0 {
        0.0
    } else {
        HBAR_GEV_NS / tau_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ratios() {
        assert_eq!(TEV, 1000.0 * GEV);
        assert_eq!(GEV, 1000.0 * MEV);
    }

    #[test]
    fn width_lifetime_round_trip() {
        // The Z boson: Γ ≈ 2.495 GeV.
        let tau = width_to_lifetime_ns(2.495);
        assert!(tau > 0.0 && tau < 1e-10);
        let back = lifetime_to_width_gev(tau);
        assert!((back - 2.495).abs() < 1e-9);
    }

    #[test]
    fn zero_width_is_stable() {
        assert!(width_to_lifetime_ns(0.0).is_infinite());
        assert_eq!(lifetime_to_width_gev(f64::INFINITY), 0.0);
    }

    #[test]
    fn d0_lifetime_scale() {
        // The D0 meson lives about 0.41 ps — the LHCb masterclass exercise
        // in Table 1 of the report measures exactly this.
        let tau_ns = ps_to_ns(0.410);
        assert!((tau_ns - 4.1e-4).abs() < 1e-9);
        // At p = 10 GeV, m = 1.865 GeV, the mean flight distance is
        // γβcτ = (p/m)·c·τ ≈ 0.66 mm: resolvable by a vertex detector.
        let flight = 10.0 / 1.865 * C_MM_PER_NS * tau_ns;
        assert!(flight > 0.3 && flight < 1.5, "flight = {flight}");
    }
}
