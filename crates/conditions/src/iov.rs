//! Intervals of validity.
//!
//! A conditions payload is valid for an inclusive range of runs. A
//! condition's history is a set of non-overlapping ranges; resolution for
//! a run picks the unique covering range.

use std::fmt;

use crate::error::ConditionsError;

/// An inclusive run range `[first, last]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunRange {
    /// First run covered.
    pub first: u32,
    /// Last run covered (inclusive). `u32::MAX` means open-ended.
    pub last: u32,
}

impl RunRange {
    /// A range covering `[first, last]`; errors when inverted.
    pub fn new(first: u32, last: u32) -> Result<Self, ConditionsError> {
        let r = RunRange { first, last };
        if first > last {
            Err(ConditionsError::EmptyRange(r))
        } else {
            Ok(r)
        }
    }

    /// An open-ended range starting at `first`.
    pub fn from(first: u32) -> Self {
        RunRange {
            first,
            last: u32::MAX,
        }
    }

    /// A range covering a single run.
    pub fn single(run: u32) -> Self {
        RunRange {
            first: run,
            last: run,
        }
    }

    /// True when the range covers `run`.
    #[inline]
    pub fn contains(&self, run: u32) -> bool {
        self.first <= run && run <= self.last
    }

    /// True when two ranges share at least one run.
    #[inline]
    pub fn overlaps(&self, other: &RunRange) -> bool {
        self.first <= other.last && other.first <= self.last
    }

    /// Number of runs covered (saturating for open-ended ranges).
    pub fn len(&self) -> u64 {
        u64::from(self.last) - u64::from(self.first) + 1
    }

    /// Ranges are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for RunRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.last == u32::MAX {
            write!(f, "[{}..]", self.first)
        } else {
            write!(f, "[{}..{}]", self.first, self.last)
        }
    }
}

/// A condition key: a hierarchical path like `"tracker/alignment"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IovKey(pub String);

impl IovKey {
    /// Construct from any string-ish value.
    pub fn new(path: impl Into<String>) -> Self {
        IovKey(path.into())
    }

    /// The subsystem prefix (text before the first `/`), used to group
    /// dependency reports per detector subsystem.
    pub fn subsystem(&self) -> &str {
        self.0.split('/').next().unwrap_or(&self.0)
    }
}

impl fmt::Display for IovKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A sorted, non-overlapping sequence of `(RunRange, payload-index)`
/// entries for one condition key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IovSequence {
    entries: Vec<(RunRange, usize)>,
}

impl IovSequence {
    /// An empty sequence.
    pub fn new() -> Self {
        IovSequence::default()
    }

    /// Insert an interval pointing at `payload_index`; rejects overlaps.
    pub fn insert(&mut self, range: RunRange, payload_index: usize) -> Result<(), ConditionsError> {
        if let Some((existing, _)) = self.entries.iter().find(|(r, _)| r.overlaps(&range)) {
            return Err(ConditionsError::OverlappingIov {
                key: String::new(),
                inserted: range,
                existing: *existing,
            });
        }
        let pos = self
            .entries
            .partition_point(|(r, _)| r.first < range.first);
        self.entries.insert(pos, (range, payload_index));
        Ok(())
    }

    /// Binary-search resolution of the payload index covering `run`.
    pub fn resolve(&self, run: u32) -> Option<usize> {
        let pos = self.entries.partition_point(|(r, _)| r.first <= run);
        if pos == 0 {
            return None;
        }
        let (range, idx) = self.entries[pos - 1];
        range.contains(run).then_some(idx)
    }

    /// All entries in run order.
    pub fn entries(&self) -> &[(RunRange, usize)] {
        &self.entries
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no intervals exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_construction() {
        assert!(RunRange::new(5, 3).is_err());
        let r = RunRange::new(3, 5).unwrap();
        assert!(r.contains(3) && r.contains(5) && !r.contains(6));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn open_ended_range() {
        let r = RunRange::from(100);
        assert!(r.contains(u32::MAX));
        assert_eq!(r.to_string(), "[100..]");
    }

    #[test]
    fn overlap_detection() {
        let a = RunRange::new(1, 10).unwrap();
        let b = RunRange::new(10, 20).unwrap();
        let c = RunRange::new(11, 20).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn subsystem_prefix() {
        assert_eq!(IovKey::new("tracker/alignment").subsystem(), "tracker");
        assert_eq!(IovKey::new("beamspot").subsystem(), "beamspot");
    }

    #[test]
    fn sequence_insert_and_resolve() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        seq.insert(RunRange::new(21, 30).unwrap(), 2).unwrap();
        seq.insert(RunRange::new(11, 20).unwrap(), 1).unwrap();
        assert_eq!(seq.resolve(5), Some(0));
        assert_eq!(seq.resolve(11), Some(1));
        assert_eq!(seq.resolve(30), Some(2));
        assert_eq!(seq.resolve(31), None);
        assert_eq!(seq.resolve(0), None);
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn sequence_rejects_overlap() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        let err = seq.insert(RunRange::new(5, 15).unwrap(), 1).unwrap_err();
        assert!(matches!(err, ConditionsError::OverlappingIov { .. }));
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn resolve_in_gap_is_none() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 5).unwrap(), 0).unwrap();
        seq.insert(RunRange::new(10, 15).unwrap(), 1).unwrap();
        assert_eq!(seq.resolve(7), None);
    }
}
