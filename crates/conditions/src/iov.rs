//! Intervals of validity.
//!
//! A conditions payload is valid for an inclusive range of runs. A
//! condition's history is a set of non-overlapping ranges; resolution for
//! a run picks the unique covering range.

use std::fmt;

use crate::error::ConditionsError;

/// An inclusive run range `[first, last]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunRange {
    /// First run covered.
    pub first: u32,
    /// Last run covered (inclusive). `u32::MAX` means open-ended.
    pub last: u32,
}

impl RunRange {
    /// A range covering `[first, last]`; errors when inverted.
    pub fn new(first: u32, last: u32) -> Result<Self, ConditionsError> {
        let r = RunRange { first, last };
        if first > last {
            Err(ConditionsError::EmptyRange(r))
        } else {
            Ok(r)
        }
    }

    /// An open-ended range starting at `first`.
    pub fn from(first: u32) -> Self {
        RunRange {
            first,
            last: u32::MAX,
        }
    }

    /// A range covering a single run.
    pub fn single(run: u32) -> Self {
        RunRange {
            first: run,
            last: run,
        }
    }

    /// True when the range covers `run`.
    #[inline]
    pub fn contains(&self, run: u32) -> bool {
        self.first <= run && run <= self.last
    }

    /// True when two ranges share at least one run.
    #[inline]
    pub fn overlaps(&self, other: &RunRange) -> bool {
        self.first <= other.last && other.first <= self.last
    }

    /// Number of runs covered (saturating for open-ended ranges).
    pub fn len(&self) -> u64 {
        u64::from(self.last) - u64::from(self.first) + 1
    }

    /// Ranges are never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for RunRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.last == u32::MAX {
            write!(f, "[{}..]", self.first)
        } else {
            write!(f, "[{}..{}]", self.first, self.last)
        }
    }
}

/// A condition key: a hierarchical path like `"tracker/alignment"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IovKey(pub String);

impl IovKey {
    /// Construct from any string-ish value.
    pub fn new(path: impl Into<String>) -> Self {
        IovKey(path.into())
    }

    /// The subsystem prefix (text before the first `/`), used to group
    /// dependency reports per detector subsystem.
    pub fn subsystem(&self) -> &str {
        self.0.split('/').next().unwrap_or(&self.0)
    }
}

impl fmt::Display for IovKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A sorted, non-overlapping sequence of `(RunRange, payload-index)`
/// entries for one condition key.
///
/// Resolution is `O(log n)` binary search with a last-hit cursor on top:
/// production chains resolve the same key for runs of the same interval
/// thousands of times in a row, so the cursor makes the repeated case
/// amortized `O(1)`. The cursor is a plain accelerator — a stale value
/// (after a concurrent insert) only costs one failed `contains` check
/// before the binary search runs; it can never change the result.
#[derive(Debug, Default)]
pub struct IovSequence {
    entries: Vec<(RunRange, usize)>,
    /// Index of the last entry a `resolve` hit. Relaxed atomics: the
    /// store is behind a `RwLock` read guard in the conditions store, so
    /// this must be `Sync`, and any torn/stale read is harmless.
    hint: std::sync::atomic::AtomicUsize,
    /// Resolutions answered by the cursor without a binary search.
    /// Observability gauges: schedule-dependent under threads, excluded
    /// (like the cursor itself) from `Clone` state comparisons and `Eq`.
    cursor_hits: std::sync::atomic::AtomicU64,
    /// Total `resolve` calls.
    lookups: std::sync::atomic::AtomicU64,
}

impl Clone for IovSequence {
    fn clone(&self) -> Self {
        IovSequence {
            entries: self.entries.clone(),
            hint: std::sync::atomic::AtomicUsize::new(
                self.hint.load(std::sync::atomic::Ordering::Relaxed),
            ),
            cursor_hits: std::sync::atomic::AtomicU64::new(0),
            lookups: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// Equality ignores the cursor: two sequences with the same intervals
/// resolve identically regardless of what was last looked up.
impl PartialEq for IovSequence {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for IovSequence {}

impl IovSequence {
    /// An empty sequence.
    pub fn new() -> Self {
        IovSequence::default()
    }

    /// Build a sequence directly from `(range, payload-index)` pairs;
    /// rejects overlaps. Sorting happens once — `O(n log n)` total
    /// instead of `O(n)` per insert.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (RunRange, usize)>,
    ) -> Result<Self, ConditionsError> {
        let mut seq = IovSequence::new();
        for (range, idx) in entries {
            seq.insert(range, idx)?;
        }
        Ok(seq)
    }

    /// Insert an interval pointing at `payload_index`; rejects overlaps.
    ///
    /// `O(log n)` search plus the vector shift: entries are sorted and
    /// non-overlapping, so only the two neighbors of the insertion point
    /// can overlap the new range — no linear scan.
    pub fn insert(&mut self, range: RunRange, payload_index: usize) -> Result<(), ConditionsError> {
        let pos = self
            .entries
            .partition_point(|(r, _)| r.first < range.first);
        let overlap = pos
            .checked_sub(1)
            .and_then(|left| self.entries.get(left))
            .filter(|(r, _)| r.overlaps(&range))
            .or_else(|| self.entries.get(pos).filter(|(r, _)| r.overlaps(&range)));
        if let Some((existing, _)) = overlap {
            return Err(ConditionsError::OverlappingIov {
                key: String::new(),
                inserted: range,
                existing: *existing,
            });
        }
        self.entries.insert(pos, (range, payload_index));
        Ok(())
    }

    /// Resolution of the payload index covering `run`: the last-hit
    /// cursor first (amortized `O(1)` for repeated runs), then binary
    /// search.
    pub fn resolve(&self, run: u32) -> Option<usize> {
        use std::sync::atomic::Ordering;
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let hint = self.hint.load(Ordering::Relaxed);
        if let Some((range, idx)) = self.entries.get(hint) {
            if range.contains(run) {
                self.cursor_hits.fetch_add(1, Ordering::Relaxed);
                return Some(*idx);
            }
        }
        let pos = self.entries.partition_point(|(r, _)| r.first <= run);
        if pos == 0 {
            return None;
        }
        let (range, idx) = self.entries[pos - 1];
        if range.contains(run) {
            self.hint.store(pos - 1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// All entries in run order.
    pub fn entries(&self) -> &[(RunRange, usize)] {
        &self.entries
    }

    /// `(cursor_hits, total_lookups)` since construction — how often the
    /// last-hit cursor short-circuited the binary search. Observability
    /// gauges only: values depend on lookup interleaving under threads.
    pub fn cursor_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.cursor_hits.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
        )
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no intervals exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_construction() {
        assert!(RunRange::new(5, 3).is_err());
        let r = RunRange::new(3, 5).unwrap();
        assert!(r.contains(3) && r.contains(5) && !r.contains(6));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn open_ended_range() {
        let r = RunRange::from(100);
        assert!(r.contains(u32::MAX));
        assert_eq!(r.to_string(), "[100..]");
    }

    #[test]
    fn overlap_detection() {
        let a = RunRange::new(1, 10).unwrap();
        let b = RunRange::new(10, 20).unwrap();
        let c = RunRange::new(11, 20).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn subsystem_prefix() {
        assert_eq!(IovKey::new("tracker/alignment").subsystem(), "tracker");
        assert_eq!(IovKey::new("beamspot").subsystem(), "beamspot");
    }

    #[test]
    fn sequence_insert_and_resolve() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        seq.insert(RunRange::new(21, 30).unwrap(), 2).unwrap();
        seq.insert(RunRange::new(11, 20).unwrap(), 1).unwrap();
        assert_eq!(seq.resolve(5), Some(0));
        assert_eq!(seq.resolve(11), Some(1));
        assert_eq!(seq.resolve(30), Some(2));
        assert_eq!(seq.resolve(31), None);
        assert_eq!(seq.resolve(0), None);
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn sequence_rejects_overlap() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        let err = seq.insert(RunRange::new(5, 15).unwrap(), 1).unwrap_err();
        assert!(matches!(err, ConditionsError::OverlappingIov { .. }));
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn resolve_in_gap_is_none() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 5).unwrap(), 0).unwrap();
        seq.insert(RunRange::new(10, 15).unwrap(), 1).unwrap();
        assert_eq!(seq.resolve(7), None);
    }

    #[test]
    fn repeated_and_alternating_lookups_stay_correct_with_cursor() {
        let mut seq = IovSequence::new();
        for i in 0..50u32 {
            seq.insert(RunRange::new(i * 10 + 1, i * 10 + 10).unwrap(), i as usize)
                .unwrap();
        }
        // Repeated same-interval hits (the cursor's fast path)…
        for _ in 0..100 {
            assert_eq!(seq.resolve(205), Some(20));
        }
        // …then a jump, then alternating intervals, then misses.
        assert_eq!(seq.resolve(5), Some(0));
        for _ in 0..10 {
            assert_eq!(seq.resolve(495), Some(49));
            assert_eq!(seq.resolve(15), Some(1));
        }
        assert_eq!(seq.resolve(0), None);
        assert_eq!(seq.resolve(501), None);
    }

    #[test]
    fn insert_after_lookups_keeps_resolution_correct() {
        // A stale cursor (entries shifted by a later insert) must never
        // change what resolve returns.
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(100, 200).unwrap(), 5).unwrap();
        assert_eq!(seq.resolve(150), Some(5)); // cursor now points at it
        seq.insert(RunRange::new(1, 50).unwrap(), 9).unwrap(); // shifts entries
        assert_eq!(seq.resolve(25), Some(9));
        assert_eq!(seq.resolve(150), Some(5));
    }

    #[test]
    fn insert_detects_overlap_with_both_neighbors() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        seq.insert(RunRange::new(21, 30).unwrap(), 1).unwrap();
        // Overlaps the left neighbor only.
        assert!(seq.insert(RunRange::new(10, 15).unwrap(), 2).is_err());
        // Overlaps the right neighbor only.
        assert!(seq.insert(RunRange::new(15, 21).unwrap(), 2).is_err());
        // Spans both neighbors: the reported range is the left one,
        // matching the old linear scan's first match.
        match seq.insert(RunRange::new(5, 25).unwrap(), 2).unwrap_err() {
            ConditionsError::OverlappingIov { existing, .. } => {
                assert_eq!(existing, RunRange::new(1, 10).unwrap());
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Same first run as an existing entry collides too.
        assert!(seq.insert(RunRange::new(21, 40).unwrap(), 2).is_err());
        // The gap still accepts.
        seq.insert(RunRange::new(11, 20).unwrap(), 3).unwrap();
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn cursor_stats_count_hits_and_lookups() {
        let mut seq = IovSequence::new();
        seq.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        seq.insert(RunRange::new(11, 20).unwrap(), 1).unwrap();
        assert_eq!(seq.cursor_stats(), (0, 0));
        assert_eq!(seq.resolve(5), Some(0)); // hit: the fresh cursor already points at entry 0
        assert_eq!(seq.resolve(5), Some(0)); // hit
        assert_eq!(seq.resolve(15), Some(1)); // miss, moves the cursor
        assert_eq!(seq.resolve(99), None); // miss, no interval
        let (hits, lookups) = seq.cursor_stats();
        assert_eq!(lookups, 4);
        assert_eq!(hits, 2);
        // Clones start fresh, and stats never affect equality.
        let clone = seq.clone();
        assert_eq!(clone.cursor_stats(), (0, 0));
        assert_eq!(seq, clone);
    }

    #[test]
    fn equality_ignores_the_cursor() {
        let mut a = IovSequence::new();
        a.insert(RunRange::new(1, 10).unwrap(), 0).unwrap();
        a.insert(RunRange::new(11, 20).unwrap(), 1).unwrap();
        let b = a.clone();
        assert_eq!(a.resolve(15), Some(1)); // moves a's cursor only
        assert_eq!(a, b);
    }

    #[test]
    fn from_entries_builds_and_rejects_overlap() {
        let seq = IovSequence::from_entries([
            (RunRange::new(11, 20).unwrap(), 1),
            (RunRange::new(1, 10).unwrap(), 0),
        ])
        .unwrap();
        assert_eq!(seq.resolve(5), Some(0));
        assert_eq!(seq.resolve(15), Some(1));
        assert!(IovSequence::from_entries([
            (RunRange::new(1, 10).unwrap(), 0),
            (RunRange::new(5, 15).unwrap(), 1),
        ])
        .is_err());
    }
}
