//! Error type for the conditions database.

use std::fmt;

use crate::iov::RunRange;

/// Errors raised by conditions-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConditionsError {
    /// The requested global tag does not exist.
    UnknownTag(String),
    /// The requested condition key does not exist under the tag.
    UnknownKey {
        /// Tag that was queried.
        tag: String,
        /// Condition key that was not found.
        key: String,
    },
    /// No payload covers the requested run.
    NoValidPayload {
        /// Tag that was queried.
        tag: String,
        /// Condition key that was queried.
        key: String,
        /// The run for which no interval of validity matched.
        run: u32,
    },
    /// An insertion would overlap an existing interval of validity.
    OverlappingIov {
        /// Condition key being inserted.
        key: String,
        /// The interval that was being inserted.
        inserted: RunRange,
        /// The existing interval it collides with.
        existing: RunRange,
    },
    /// A run range with `first > last` was supplied.
    EmptyRange(RunRange),
    /// A tag is frozen (locked for reproducibility) and cannot be modified.
    TagFrozen(String),
    /// A serialized snapshot could not be parsed.
    ParseError {
        /// 1-based line number of the failure.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ConditionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionsError::UnknownTag(t) => write!(f, "unknown global tag '{t}'"),
            ConditionsError::UnknownKey { tag, key } => {
                write!(f, "unknown condition key '{key}' under tag '{tag}'")
            }
            ConditionsError::NoValidPayload { tag, key, run } => write!(
                f,
                "no payload valid for run {run} under tag '{tag}', key '{key}'"
            ),
            ConditionsError::OverlappingIov {
                key,
                inserted,
                existing,
            } => write!(
                f,
                "interval {inserted} for key '{key}' overlaps existing {existing}"
            ),
            ConditionsError::EmptyRange(r) => write!(f, "empty run range {r}"),
            ConditionsError::TagFrozen(t) => {
                write!(f, "global tag '{t}' is frozen and cannot be modified")
            }
            ConditionsError::ParseError { line, reason } => {
                write!(f, "snapshot parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConditionsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = ConditionsError::NoValidPayload {
            tag: "data-2013".to_string(),
            key: "ecal/gain".to_string(),
            run: 17,
        };
        let s = e.to_string();
        assert!(s.contains("data-2013") && s.contains("ecal/gain") && s.contains("17"));
    }
}
