//! The shippable text format for conditions snapshots.
//!
//! ALICE's constants-handling (report §3.2) uses *"text files that can
//! easily be shipped around with the data"*. This module defines that
//! format: one line per `(key, range, payload)` entry, parseable without
//! any library support — the property that makes it preservable.
//!
//! ```text
//! # daspos-conditions snapshot v1
//! digest 9c3f2a7b11e40d58
//! tag data-2013
//! scalar ecal/gain 1..100 1.02
//! vector tracker/alignment 1.. 0.1,0.2,0.3
//! text magnet/fieldmap 5..9 solenoid-3.8T
//! ```
//!
//! The optional `digest` line (second line, FNV-1a 64 of everything after
//! it) makes bit rot in a shipped file detectable: a flipped digit in a
//! constant would otherwise parse cleanly into silently wrong physics.
//! Writers always emit it; readers verify it when present and accept
//! digest-less snapshots from older archives.

use crate::error::ConditionsError;
use crate::iov::{IovKey, RunRange};
use crate::store::Payload;

/// Magic first line of every snapshot file.
pub const HEADER: &str = "# daspos-conditions snapshot v1";

/// Prefix of the optional integrity-digest line (line 2 of the file).
pub const DIGEST_PREFIX: &str = "digest ";

/// FNV-1a 64 — the digest the `digest` line carries, computed over the
/// raw text that follows that line.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Render one entry line.
pub fn format_entry(key: &IovKey, range: RunRange, payload: &Payload) -> String {
    let range_s = if range.last == u32::MAX {
        format!("{}..", range.first)
    } else {
        format!("{}..{}", range.first, range.last)
    };
    match payload {
        Payload::Scalar(v) => format!("scalar {key} {range_s} {v}"),
        Payload::Vector(vs) => {
            let joined = vs
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            format!("vector {key} {range_s} {joined}")
        }
        Payload::Text(t) => format!("text {key} {range_s} {t}"),
    }
}

/// Parse one entry line (inverse of [`format_entry`]).
pub fn parse_entry(
    line: &str,
    line_no: usize,
) -> Result<(IovKey, RunRange, Payload), ConditionsError> {
    let err = |reason: &str| ConditionsError::ParseError {
        line: line_no,
        reason: reason.to_string(),
    };
    let mut parts = line.splitn(4, ' ');
    let kind = parts.next().ok_or_else(|| err("missing kind"))?;
    let key = parts.next().ok_or_else(|| err("missing key"))?;
    let range_s = parts.next().ok_or_else(|| err("missing range"))?;
    let value = parts.next().ok_or_else(|| err("missing value"))?;

    let (first_s, last_s) = range_s
        .split_once("..")
        .ok_or_else(|| err("range must be first..last"))?;
    let first: u32 = first_s.parse().map_err(|_| err("bad range start"))?;
    let last: u32 = if last_s.is_empty() {
        u32::MAX
    } else {
        last_s.parse().map_err(|_| err("bad range end"))?
    };
    let range = RunRange::new(first, last).map_err(|_| err("inverted range"))?;

    let payload = match kind {
        "scalar" => Payload::Scalar(value.parse().map_err(|_| err("bad scalar"))?),
        "vector" => {
            // An empty vector serializes to an empty value field.
            let vs = if value.is_empty() {
                Vec::new()
            } else {
                value
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<f64>, _>>()
                    .map_err(|_| err("bad vector element"))?
            };
            Payload::Vector(vs)
        }
        "text" => Payload::Text(value.to_string()),
        other => return Err(err(&format!("unknown payload kind '{other}'"))),
    };
    Ok((IovKey::new(key), range, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let key = IovKey::new("ecal/gain");
        let range = RunRange::new(1, 100).unwrap();
        let p = Payload::Scalar(1.02);
        let line = format_entry(&key, range, &p);
        let (k2, r2, p2) = parse_entry(&line, 1).unwrap();
        assert_eq!(k2, key);
        assert_eq!(r2, range);
        assert_eq!(p2, p);
    }

    #[test]
    fn vector_round_trip() {
        let key = IovKey::new("tracker/alignment");
        let range = RunRange::from(7);
        let p = Payload::Vector(vec![0.125, -3.5, 1e-9]);
        let (k2, r2, p2) = parse_entry(&format_entry(&key, range, &p), 1).unwrap();
        assert_eq!((k2, r2, p2), (key, range, p));
    }

    #[test]
    fn text_payload_may_contain_spaces_in_last_field() {
        let key = IovKey::new("magnet/fieldmap");
        let p = Payload::Text("solenoid 3.8 T".to_string());
        let (_, _, p2) = parse_entry(&format_entry(&key, RunRange::single(5), &p), 1).unwrap();
        assert_eq!(p2, p);
    }

    #[test]
    fn open_range_round_trip() {
        let line = "scalar k 42.. 1.5";
        let (_, r, _) = parse_entry(line, 1).unwrap();
        assert_eq!(r.last, u32::MAX);
        assert_eq!(r.first, 42);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for bad in [
            "scalar onlykey",
            "scalar k 1..2 notanumber",
            "scalar k 9..3 1.0",
            "blob k 1..2 x",
            "vector k 1..2 1.0,x",
            "scalar k 1-2 1.0",
        ] {
            let err = parse_entry(bad, 7).unwrap_err();
            match err {
                ConditionsError::ParseError { line, .. } => assert_eq!(line, 7),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
