//! The versioned conditions store.
//!
//! A [`ConditionsStore`] holds named **global tags**. A tag is a coherent,
//! versioned view of every condition: `(tag, key, run) → payload`.
//! Production processing freezes its tag so a preserved workflow always
//! resolves the same constants — the encapsulation step the DASPOS report
//! calls for.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::error::ConditionsError;
use crate::iov::{IovKey, IovSequence, RunRange};

/// A conditions payload.
///
/// Real experiments store anything from single scalars to alignment
/// matrices; this substrate covers the shapes the synthetic detector
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A single calibration scalar (e.g. an energy-scale factor).
    Scalar(f64),
    /// A vector of per-channel constants.
    Vector(Vec<f64>),
    /// Free-form text (e.g. a magnetic-field map descriptor).
    Text(String),
}

impl Payload {
    /// The scalar value, if this payload is one.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Payload::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// The vector contents, if this payload is one.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Payload::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used for tier-size accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            Payload::Scalar(_) => 8,
            Payload::Vector(v) => 8 * v.len(),
            Payload::Text(s) => s.len(),
        }
    }
}

/// One global tag: every condition key's IoV history plus its payloads.
#[derive(Debug, Default)]
pub struct GlobalTag {
    /// Tag name, e.g. `"data-2013-v2"`.
    pub name: String,
    /// Frozen tags reject further writes.
    frozen: bool,
    payloads: Vec<Payload>,
    sequences: BTreeMap<IovKey, IovSequence>,
}

impl GlobalTag {
    fn new(name: &str) -> Self {
        GlobalTag {
            name: name.to_string(),
            frozen: false,
            payloads: Vec::new(),
            sequences: BTreeMap::new(),
        }
    }

    fn insert(
        &mut self,
        key: IovKey,
        range: RunRange,
        payload: Payload,
    ) -> Result<(), ConditionsError> {
        if self.frozen {
            return Err(ConditionsError::TagFrozen(self.name.clone()));
        }
        let idx = self.payloads.len();
        let seq = self.sequences.entry(key.clone()).or_default();
        seq.insert(range, idx).map_err(|e| match e {
            ConditionsError::OverlappingIov {
                inserted, existing, ..
            } => ConditionsError::OverlappingIov {
                key: key.0.clone(),
                inserted,
                existing,
            },
            other => other,
        })?;
        self.payloads.push(payload);
        Ok(())
    }

    fn resolve(&self, key: &IovKey, run: u32) -> Result<&Payload, ConditionsError> {
        let seq = self
            .sequences
            .get(key)
            .ok_or_else(|| ConditionsError::UnknownKey {
                tag: self.name.clone(),
                key: key.0.clone(),
            })?;
        let idx = seq.resolve(run).ok_or_else(|| ConditionsError::NoValidPayload {
            tag: self.name.clone(),
            key: key.0.clone(),
            run,
        })?;
        Ok(&self.payloads[idx])
    }

    /// All condition keys defined under this tag.
    pub fn keys(&self) -> impl Iterator<Item = &IovKey> {
        self.sequences.keys()
    }

    /// Number of distinct condition keys.
    pub fn key_count(&self) -> usize {
        self.sequences.len()
    }

    /// Total payload bytes stored.
    pub fn byte_size(&self) -> usize {
        self.payloads.iter().map(Payload::byte_size).sum()
    }

    /// Iterate every `(key, range, payload)` triple — the snapshot walk.
    pub fn iter_entries(&self) -> impl Iterator<Item = (&IovKey, RunRange, &Payload)> {
        self.sequences.iter().flat_map(move |(key, seq)| {
            seq.entries()
                .iter()
                .map(move |(range, idx)| (key, *range, &self.payloads[*idx]))
        })
    }

    /// True once the tag is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Summed `(cursor_hits, lookups)` over every key's IoV cursor
    /// (see [`IovSequence::cursor_stats`]).
    pub fn cursor_stats(&self) -> (u64, u64) {
        self.sequences
            .values()
            .fold((0, 0), |(hits, lookups), seq| {
                let (h, l) = seq.cursor_stats();
                (hits + h, lookups + l)
            })
    }
}

/// The conditions database: a set of global tags behind a reader-writer
/// lock, mirroring the shared service the experiments run.
#[derive(Debug, Default)]
pub struct ConditionsStore {
    tags: RwLock<BTreeMap<String, GlobalTag>>,
}

impl ConditionsStore {
    /// An empty store.
    pub fn new() -> Self {
        ConditionsStore::default()
    }

    /// Create a global tag; returns an error if it already exists (reuse
    /// would silently mix condition versions).
    pub fn create_tag(&self, name: &str) -> Result<(), ConditionsError> {
        let mut tags = self.tags.write();
        if tags.contains_key(name) {
            return Err(ConditionsError::TagFrozen(format!(
                "{name} (already exists)"
            )));
        }
        tags.insert(name.to_string(), GlobalTag::new(name));
        Ok(())
    }

    /// Insert a payload valid for `range` under `(tag, key)`.
    pub fn insert(
        &self,
        tag: &str,
        key: IovKey,
        range: RunRange,
        payload: Payload,
    ) -> Result<(), ConditionsError> {
        let mut tags = self.tags.write();
        let t = tags
            .get_mut(tag)
            .ok_or_else(|| ConditionsError::UnknownTag(tag.to_string()))?;
        t.insert(key, range, payload)
    }

    /// Freeze a tag: all subsequent writes fail, reads are guaranteed
    /// stable. Production tags are frozen before processing starts.
    pub fn freeze(&self, tag: &str) -> Result<(), ConditionsError> {
        let mut tags = self.tags.write();
        let t = tags
            .get_mut(tag)
            .ok_or_else(|| ConditionsError::UnknownTag(tag.to_string()))?;
        t.frozen = true;
        Ok(())
    }

    /// Resolve `(tag, key, run)` to a payload clone.
    pub fn resolve(&self, tag: &str, key: &IovKey, run: u32) -> Result<Payload, ConditionsError> {
        let tags = self.tags.read();
        let t = tags
            .get(tag)
            .ok_or_else(|| ConditionsError::UnknownTag(tag.to_string()))?;
        t.resolve(key, run).cloned()
    }

    /// Run a closure against a tag (avoids cloning large payload sets).
    pub fn with_tag<R>(
        &self,
        tag: &str,
        f: impl FnOnce(&GlobalTag) -> R,
    ) -> Result<R, ConditionsError> {
        let tags = self.tags.read();
        let t = tags
            .get(tag)
            .ok_or_else(|| ConditionsError::UnknownTag(tag.to_string()))?;
        Ok(f(t))
    }

    /// Names of all tags in the store.
    pub fn tag_names(&self) -> Vec<String> {
        self.tags.read().keys().cloned().collect()
    }

    /// Summed `(cursor_hits, lookups)` over every tag — the store-wide
    /// IoV-cursor effectiveness gauge surfaced by the trace layer.
    pub fn cursor_stats(&self) -> (u64, u64) {
        self.tags
            .read()
            .values()
            .fold((0, 0), |(hits, lookups), tag| {
                let (h, l) = tag.cursor_stats();
                (hits + h, lookups + l)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_tag() -> ConditionsStore {
        let s = ConditionsStore::new();
        s.create_tag("data-2013").unwrap();
        s
    }

    #[test]
    fn insert_and_resolve() {
        let s = store_with_tag();
        let key = IovKey::new("ecal/gain");
        s.insert(
            "data-2013",
            key.clone(),
            RunRange::new(1, 100).unwrap(),
            Payload::Scalar(1.02),
        )
        .unwrap();
        let p = s.resolve("data-2013", &key, 50).unwrap();
        assert_eq!(p.as_scalar(), Some(1.02));
    }

    #[test]
    fn resolution_picks_correct_interval() {
        let s = store_with_tag();
        let key = IovKey::new("tracker/alignment");
        s.insert(
            "data-2013",
            key.clone(),
            RunRange::new(1, 10).unwrap(),
            Payload::Scalar(0.9),
        )
        .unwrap();
        s.insert(
            "data-2013",
            key.clone(),
            RunRange::new(11, 20).unwrap(),
            Payload::Scalar(1.1),
        )
        .unwrap();
        assert_eq!(
            s.resolve("data-2013", &key, 10).unwrap().as_scalar(),
            Some(0.9)
        );
        assert_eq!(
            s.resolve("data-2013", &key, 11).unwrap().as_scalar(),
            Some(1.1)
        );
    }

    #[test]
    fn missing_tag_key_run_error_paths() {
        let s = store_with_tag();
        let key = IovKey::new("x");
        assert!(matches!(
            s.resolve("nope", &key, 1),
            Err(ConditionsError::UnknownTag(_))
        ));
        assert!(matches!(
            s.resolve("data-2013", &key, 1),
            Err(ConditionsError::UnknownKey { .. })
        ));
        s.insert(
            "data-2013",
            key.clone(),
            RunRange::new(10, 20).unwrap(),
            Payload::Scalar(1.0),
        )
        .unwrap();
        assert!(matches!(
            s.resolve("data-2013", &key, 5),
            Err(ConditionsError::NoValidPayload { .. })
        ));
    }

    #[test]
    fn frozen_tag_rejects_writes_but_reads() {
        let s = store_with_tag();
        let key = IovKey::new("ecal/gain");
        s.insert(
            "data-2013",
            key.clone(),
            RunRange::from(1),
            Payload::Scalar(1.0),
        )
        .unwrap();
        s.freeze("data-2013").unwrap();
        let err = s
            .insert(
                "data-2013",
                IovKey::new("other"),
                RunRange::from(1),
                Payload::Scalar(2.0),
            )
            .unwrap_err();
        assert!(matches!(err, ConditionsError::TagFrozen(_)));
        assert!(s.resolve("data-2013", &key, 99).is_ok());
    }

    #[test]
    fn duplicate_tag_rejected() {
        let s = store_with_tag();
        assert!(s.create_tag("data-2013").is_err());
    }

    #[test]
    fn overlap_error_carries_key_name() {
        let s = store_with_tag();
        let key = IovKey::new("muon/timing");
        s.insert(
            "data-2013",
            key.clone(),
            RunRange::new(1, 10).unwrap(),
            Payload::Scalar(1.0),
        )
        .unwrap();
        let err = s
            .insert(
                "data-2013",
                key,
                RunRange::new(5, 8).unwrap(),
                Payload::Scalar(2.0),
            )
            .unwrap_err();
        match err {
            ConditionsError::OverlappingIov { key, .. } => assert_eq!(key, "muon/timing"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn byte_size_accounting() {
        let s = store_with_tag();
        s.insert(
            "data-2013",
            IovKey::new("a"),
            RunRange::from(1),
            Payload::Vector(vec![0.0; 100]),
        )
        .unwrap();
        s.insert(
            "data-2013",
            IovKey::new("b"),
            RunRange::from(1),
            Payload::Text("field-map-v1".to_string()),
        )
        .unwrap();
        let size = s.with_tag("data-2013", |t| t.byte_size()).unwrap();
        assert_eq!(size, 800 + 12);
    }

    #[test]
    fn iter_entries_visits_all() {
        let s = store_with_tag();
        for run0 in [1u32, 11, 21] {
            s.insert(
                "data-2013",
                IovKey::new("k"),
                RunRange::new(run0, run0 + 9).unwrap(),
                Payload::Scalar(f64::from(run0)),
            )
            .unwrap();
        }
        let n = s
            .with_tag("data-2013", |t| t.iter_entries().count())
            .unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn concurrent_reads_while_inserting_other_tags() {
        use std::sync::Arc;
        let s = Arc::new(ConditionsStore::new());
        s.create_tag("t").unwrap();
        s.insert(
            "t",
            IovKey::new("k"),
            RunRange::from(1),
            Payload::Scalar(1.0),
        )
        .unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let p = s.resolve("t", &IovKey::new("k"), 10 + i).unwrap();
                    assert_eq!(p.as_scalar(), Some(1.0));
                }
            }));
        }
        for h in handles {
            h.join().expect("reader panicked");
        }
    }
}
