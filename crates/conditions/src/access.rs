//! Access strategies: database round-trips vs shipped files.
//!
//! The report (§3.2) contrasts two constants-handling models: *"Alice, for
//! example, has text files that can easily be shipped around with the
//! data, while the other experiments make more extensive use of database
//! access from processing."* Both are implemented behind one trait so the
//! processing chain is agnostic, and both count their accesses so the W2
//! experiment can quantify the external-dependency profile per stage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::ConditionsError;
use crate::iov::{IovKey, IovSequence, RunRange};
use crate::store::{ConditionsStore, Payload};
use crate::text;

/// Counters describing how a processing stage used its conditions source.
#[derive(Debug, Default)]
pub struct AccessStats {
    lookups: AtomicU64,
    remote_round_trips: AtomicU64,
    bytes_read: AtomicU64,
}

impl AccessStats {
    /// Total payload lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups that required a (simulated) remote database round-trip.
    pub fn remote_round_trips(&self) -> u64 {
        self.remote_round_trips.load(Ordering::Relaxed)
    }

    /// Total payload bytes transferred to the client.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Reset all counters (between pipeline stages).
    pub fn reset(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.remote_round_trips.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }
}

/// Anything that can resolve conditions for a processing stage.
pub trait ConditionsSource: Send + Sync {
    /// Resolve `(key, run)` to a payload.
    fn get(&self, key: &IovKey, run: u32) -> Result<Payload, ConditionsError>;

    /// Access counters for dependency accounting.
    fn stats(&self) -> &AccessStats;

    /// A short label for provenance records (`"db:data-2013"` or
    /// `"shipped:data-2013"`).
    fn describe(&self) -> String;
}

/// Database-access mode: every lookup is a round-trip to the shared
/// [`ConditionsStore`] (the ATLAS/CMS/LHCb model). A per-client
/// memoization cache is deliberately *not* provided: the report's point is
/// that this mode keeps a live external dependency.
pub struct DbSource {
    store: Arc<ConditionsStore>,
    tag: String,
    stats: AccessStats,
}

impl DbSource {
    /// Connect to a store with a chosen global tag.
    pub fn connect(store: Arc<ConditionsStore>, tag: impl Into<String>) -> Self {
        DbSource {
            store,
            tag: tag.into(),
            stats: AccessStats::default(),
        }
    }

    /// The global tag in use.
    pub fn tag(&self) -> &str {
        &self.tag
    }
}

impl ConditionsSource for DbSource {
    fn get(&self, key: &IovKey, run: u32) -> Result<Payload, ConditionsError> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        self.stats.remote_round_trips.fetch_add(1, Ordering::Relaxed);
        let p = self.store.resolve(&self.tag, key, run)?;
        self.stats
            .bytes_read
            .fetch_add(p.byte_size() as u64, Ordering::Relaxed);
        Ok(p)
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn describe(&self) -> String {
        format!("db:{}", self.tag)
    }
}

/// A fully materialized, self-contained snapshot of one tag — what a
/// preservation archive stores, and what the shipped-file mode reads.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The tag the snapshot was taken from.
    pub tag: String,
    entries: Vec<(IovKey, RunRange, Payload)>,
}

impl Snapshot {
    /// Capture every entry of `tag` from the store.
    pub fn capture(store: &ConditionsStore, tag: &str) -> Result<Snapshot, ConditionsError> {
        let entries = store.with_tag(tag, |t| {
            t.iter_entries()
                .map(|(k, r, p)| (k.clone(), r, p.clone()))
                .collect::<Vec<_>>()
        })?;
        Ok(Snapshot {
            tag: tag.to_string(),
            entries,
        })
    }

    /// Number of `(key, range)` entries captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes in the snapshot.
    pub fn byte_size(&self) -> usize {
        self.entries.iter().map(|(_, _, p)| p.byte_size()).sum()
    }

    /// Serialize to the shippable text format. The second line carries an
    /// FNV-1a 64 digest of everything after it, so corruption of the
    /// shipped file is detected instead of parsing into wrong constants.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str("tag ");
        body.push_str(&self.tag);
        body.push('\n');
        for (k, r, p) in &self.entries {
            body.push_str(&text::format_entry(k, *r, p));
            body.push('\n');
        }
        format!(
            "{}\n{}{:016x}\n{body}",
            text::HEADER,
            text::DIGEST_PREFIX,
            text::fnv64(body.as_bytes())
        )
    }

    /// Parse a snapshot back from its text form. A `digest` line, when
    /// present, is verified against the remainder of the text;
    /// digest-less snapshots (pre-digest archives) are still accepted.
    pub fn from_text(s: &str) -> Result<Snapshot, ConditionsError> {
        let parse_err = |line: usize, reason: &str| ConditionsError::ParseError {
            line,
            reason: reason.to_string(),
        };
        // Split off one line; returns (line, rest-after-newline).
        fn take_line(s: &str) -> (&str, &str) {
            match s.split_once('\n') {
                Some((line, rest)) => (line, rest),
                None => (s, ""),
            }
        }
        if s.is_empty() {
            return Err(parse_err(1, "empty snapshot"));
        }
        let (header, mut rest) = take_line(s);
        if header != text::HEADER {
            return Err(ConditionsError::ParseError {
                line: 1,
                reason: format!("bad header '{header}'"),
            });
        }
        let mut line_no = 1;
        if rest.starts_with(text::DIGEST_PREFIX) {
            let (digest_line, body) = take_line(rest);
            line_no = 2;
            let hex = digest_line[text::DIGEST_PREFIX.len()..].trim();
            let stored = u64::from_str_radix(hex, 16)
                .map_err(|_| parse_err(2, "bad digest value"))?;
            let actual = text::fnv64(body.as_bytes());
            if stored != actual {
                return Err(ConditionsError::ParseError {
                    line: 2,
                    reason: format!(
                        "snapshot digest mismatch: file says {stored:016x}, \
                         text hashes to {actual:016x}"
                    ),
                });
            }
            rest = body;
        }
        let (tag_line, rest) = take_line(rest);
        line_no += 1;
        let tag = tag_line
            .strip_prefix("tag ")
            .ok_or_else(|| parse_err(line_no, "missing 'tag ' prefix"))?
            .to_string();
        let mut entries = Vec::new();
        for line in rest.lines() {
            line_no += 1;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            entries.push(text::parse_entry(line, line_no)?);
        }
        Ok(Snapshot { tag, entries })
    }

    /// Restore the snapshot into a store under a (possibly new) tag name.
    pub fn restore_into(
        &self,
        store: &ConditionsStore,
        tag: &str,
    ) -> Result<(), ConditionsError> {
        store.create_tag(tag)?;
        for (k, r, p) in &self.entries {
            store.insert(tag, k.clone(), *r, p.clone())?;
        }
        store.freeze(tag)
    }
}

/// Shipped-file mode: conditions resolved from an in-memory snapshot with
/// no external dependency (the ALICE model and the archive-replay model).
///
/// Lookup rides the same [`IovSequence`] index the conditions store uses
/// — sorted intervals, binary search, last-hit cursor — so shipped-file
/// resolution is as fast as database resolution minus the round trip.
pub struct ShippedFileSource {
    snapshot: Snapshot,
    index: std::collections::BTreeMap<IovKey, IovSequence>,
    stats: AccessStats,
}

impl ShippedFileSource {
    /// Build a source over a snapshot (indexes it for lookup).
    pub fn new(snapshot: Snapshot) -> Self {
        let mut index: std::collections::BTreeMap<IovKey, IovSequence> =
            std::collections::BTreeMap::new();
        for (i, (k, r, _)) in snapshot.entries.iter().enumerate() {
            // Honest snapshots cannot carry overlapping intervals (the
            // store they were captured from rejects them); if one does,
            // the first entry for a run wins and the rest are dropped —
            // restoring such a snapshot into a store fails anyway.
            let _ = index.entry(k.clone()).or_default().insert(*r, i);
        }
        ShippedFileSource {
            snapshot,
            index,
            stats: AccessStats::default(),
        }
    }

    /// The wrapped snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }
}

impl ConditionsSource for ShippedFileSource {
    fn get(&self, key: &IovKey, run: u32) -> Result<Payload, ConditionsError> {
        self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        let seq = self.index.get(key).ok_or_else(|| ConditionsError::UnknownKey {
            tag: self.snapshot.tag.clone(),
            key: key.0.clone(),
        })?;
        if let Some(idx) = seq.resolve(run) {
            let p = self.snapshot.entries[idx].2.clone();
            self.stats
                .bytes_read
                .fetch_add(p.byte_size() as u64, Ordering::Relaxed);
            return Ok(p);
        }
        Err(ConditionsError::NoValidPayload {
            tag: self.snapshot.tag.clone(),
            key: key.0.clone(),
            run,
        })
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn describe(&self) -> String {
        format!("shipped:{}", self.snapshot.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_store() -> Arc<ConditionsStore> {
        let s = Arc::new(ConditionsStore::new());
        s.create_tag("t").unwrap();
        s.insert(
            "t",
            IovKey::new("ecal/gain"),
            RunRange::new(1, 100).unwrap(),
            Payload::Scalar(1.02),
        )
        .unwrap();
        s.insert(
            "t",
            IovKey::new("ecal/gain"),
            RunRange::new(101, 200).unwrap(),
            Payload::Scalar(1.05),
        )
        .unwrap();
        s.insert(
            "t",
            IovKey::new("tracker/alignment"),
            RunRange::from(1),
            Payload::Vector(vec![0.1, 0.2]),
        )
        .unwrap();
        s.freeze("t").unwrap();
        s
    }

    #[test]
    fn db_source_counts_round_trips() {
        let store = populated_store();
        let src = DbSource::connect(Arc::clone(&store), "t");
        for _ in 0..5 {
            src.get(&IovKey::new("ecal/gain"), 50).unwrap();
        }
        assert_eq!(src.stats().lookups(), 5);
        assert_eq!(src.stats().remote_round_trips(), 5);
        assert_eq!(src.stats().bytes_read(), 40);
        assert_eq!(src.describe(), "db:t");
    }

    #[test]
    fn shipped_source_has_zero_round_trips() {
        let store = populated_store();
        let snap = Snapshot::capture(&store, "t").unwrap();
        let src = ShippedFileSource::new(snap);
        for _ in 0..5 {
            src.get(&IovKey::new("ecal/gain"), 150).unwrap();
        }
        assert_eq!(src.stats().lookups(), 5);
        assert_eq!(src.stats().remote_round_trips(), 0);
        assert_eq!(src.describe(), "shipped:t");
    }

    #[test]
    fn db_and_shipped_agree() {
        let store = populated_store();
        let db = DbSource::connect(Arc::clone(&store), "t");
        let shipped = ShippedFileSource::new(Snapshot::capture(&store, "t").unwrap());
        for run in [1u32, 50, 100, 101, 200] {
            for key in ["ecal/gain", "tracker/alignment"] {
                let a = db.get(&IovKey::new(key), run).unwrap();
                let b = shipped.get(&IovKey::new(key), run).unwrap();
                assert_eq!(a, b, "disagreement at run {run}, key {key}");
            }
        }
    }

    #[test]
    fn snapshot_text_round_trip() {
        let store = populated_store();
        let snap = Snapshot::capture(&store, "t").unwrap();
        let restored = Snapshot::from_text(&snap.to_text()).unwrap();
        assert_eq!(restored, snap);
        assert_eq!(restored.len(), 3);
    }

    #[test]
    fn snapshot_restore_into_new_store() {
        let store = populated_store();
        let snap = Snapshot::capture(&store, "t").unwrap();
        let fresh = ConditionsStore::new();
        snap.restore_into(&fresh, "t-restored").unwrap();
        let p = fresh
            .resolve("t-restored", &IovKey::new("ecal/gain"), 150)
            .unwrap();
        assert_eq!(p.as_scalar(), Some(1.05));
        // Restored tags arrive frozen.
        assert!(fresh
            .insert(
                "t-restored",
                IovKey::new("x"),
                RunRange::from(1),
                Payload::Scalar(0.0)
            )
            .is_err());
    }

    #[test]
    fn snapshot_rejects_corrupt_text() {
        assert!(Snapshot::from_text("").is_err());
        assert!(Snapshot::from_text("wrong header\ntag t\n").is_err());
        let store = populated_store();
        let mut text = Snapshot::capture(&store, "t").unwrap().to_text();
        text.push_str("scalar broken 5..1 2.0\n");
        assert!(Snapshot::from_text(&text).is_err());
    }

    #[test]
    fn snapshot_text_carries_verified_digest() {
        let store = populated_store();
        let snap = Snapshot::capture(&store, "t").unwrap();
        let textform = snap.to_text();
        assert!(textform.lines().nth(1).unwrap().starts_with(text::DIGEST_PREFIX));
        // A flipped digit in a constant parses fine line-by-line but must
        // fail the digest — this is the silent-corruption case the digest
        // line exists for.
        let tampered = textform.replace("1.02", "1.03");
        assert_ne!(tampered, textform);
        match Snapshot::from_text(&tampered).unwrap_err() {
            ConditionsError::ParseError { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("digest mismatch"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A garbled digest value is also rejected.
        assert!(Snapshot::from_text(&textform.replacen("digest ", "digest zz", 1)).is_err());
    }

    #[test]
    fn digestless_snapshot_text_still_parses() {
        // Pre-digest archives shipped header + tag + entries only.
        let store = populated_store();
        let snap = Snapshot::capture(&store, "t").unwrap();
        let with_digest = snap.to_text();
        let digest_line = format!(
            "{}\n",
            with_digest.lines().nth(1).expect("digest line")
        );
        let legacy = with_digest.replacen(&digest_line, "", 1);
        assert_eq!(Snapshot::from_text(&legacy).unwrap(), snap);
    }

    #[test]
    fn shipped_source_error_paths() {
        let store = populated_store();
        let src = ShippedFileSource::new(Snapshot::capture(&store, "t").unwrap());
        assert!(matches!(
            src.get(&IovKey::new("nope"), 1),
            Err(ConditionsError::UnknownKey { .. })
        ));
        assert!(matches!(
            src.get(&IovKey::new("ecal/gain"), 500),
            Err(ConditionsError::NoValidPayload { .. })
        ));
    }

    #[test]
    fn stats_reset() {
        let store = populated_store();
        let src = DbSource::connect(store, "t");
        src.get(&IovKey::new("ecal/gain"), 1).unwrap();
        src.stats().reset();
        assert_eq!(src.stats().lookups(), 0);
        assert_eq!(src.stats().bytes_read(), 0);
    }
}
