//! # daspos-conditions — conditions and calibration database
//!
//! The DASPOS report (§3.2) identifies the conditions database as the key
//! external dependency of HEP processing: *"the Reconstruction step
//! requires at least one and sometimes many different databases that store
//! all manner of calibration constants, conditions data, etc."* — and notes
//! that *"enumerating and potentially encapsulating these external
//! dependencies will be an important ingredient in the analysis
//! preservation process."*
//!
//! This crate implements that substrate:
//!
//! * [`iov`] — intervals of validity: every payload is valid for a
//!   half-open run range,
//! * [`store`] — the versioned store: global tags map condition keys to
//!   IoV-resolved payloads,
//! * [`access`] — the two access strategies the report contrasts:
//!   database round-trips (ATLAS/CMS/LHCb style) versus text files shipped
//!   with the data (ALICE style), plus the snapshot mechanism the
//!   preservation archive uses to encapsulate the dependency,
//! * [`text`] — the shippable text serialization of a snapshot.

pub mod access;
pub mod error;
pub mod iov;
pub mod store;
pub mod text;

pub use access::{AccessStats, ConditionsSource, DbSource, ShippedFileSource, Snapshot};
pub use error::ConditionsError;
pub use iov::{IovKey, RunRange};
pub use store::{ConditionsStore, GlobalTag, Payload};
