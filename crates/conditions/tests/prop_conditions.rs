//! Property tests: IoV store semantics and snapshot round-trips.

use daspos_conditions::{text, ConditionsStore, IovKey, Payload, RunRange, Snapshot};
use proptest::prelude::*;

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        (-1.0e6..1.0e6f64).prop_map(Payload::Scalar),
        prop::collection::vec(-1.0e3..1.0e3f64, 0..20).prop_map(Payload::Vector),
        "[a-zA-Z0-9_.-]{1,24}".prop_map(Payload::Text),
    ]
}

/// One arbitrary range: closed windows and open-ended (`first..`) tails.
fn arb_range() -> impl Strategy<Value = RunRange> {
    prop_oneof![
        (1u32..10_000, 0u32..500).prop_map(|(first, width)| {
            RunRange::new(first, first + width).expect("valid")
        }),
        (1u32..10_000).prop_map(RunRange::from),
    ]
}

/// Non-overlapping ranges: consecutive windows of width w starting at
/// multiples of w.
fn arb_ranges(max_windows: u32) -> impl Strategy<Value = Vec<RunRange>> {
    (1u32..50, 1u32..=max_windows).prop_map(|(width, n)| {
        (0..n)
            .map(|i| RunRange::new(i * width + 1, (i + 1) * width).expect("valid"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resolution_returns_the_covering_interval(
        ranges in arb_ranges(8),
        probe in 0u32..500
    ) {
        let store = ConditionsStore::new();
        store.create_tag("t").unwrap();
        let key = IovKey::new("k");
        for (i, r) in ranges.iter().enumerate() {
            store
                .insert("t", key.clone(), *r, Payload::Scalar(i as f64))
                .expect("non-overlapping by construction");
        }
        match store.resolve("t", &key, probe) {
            Ok(p) => {
                let idx = p.as_scalar().unwrap() as usize;
                prop_assert!(ranges[idx].contains(probe),
                    "payload {idx} does not cover run {probe}");
            }
            Err(_) => {
                prop_assert!(
                    ranges.iter().all(|r| !r.contains(probe)),
                    "resolution failed although run {probe} is covered"
                );
            }
        }
    }

    #[test]
    fn overlapping_insert_always_rejected(
        first in 1u32..100, len in 0u32..50, offset in 0u32..40
    ) {
        let store = ConditionsStore::new();
        store.create_tag("t").unwrap();
        let key = IovKey::new("k");
        let a = RunRange::new(first, first + len).unwrap();
        store.insert("t", key.clone(), a, Payload::Scalar(1.0)).unwrap();
        // Any range starting inside [first, first+len] overlaps.
        let b_start = first + offset.min(len);
        let b = RunRange::new(b_start, b_start + 5).unwrap();
        prop_assert!(store.insert("t", key, b, Payload::Scalar(2.0)).is_err());
    }

    #[test]
    fn snapshot_text_round_trip(
        ranges in arb_ranges(5),
        payloads in prop::collection::vec(arb_payload(), 5),
        keys in prop::collection::btree_set("[a-z]{1,8}(/[a-z]{1,8})?", 1..4)
    ) {
        let store = ConditionsStore::new();
        store.create_tag("t").unwrap();
        for key in &keys {
            for (r, p) in ranges.iter().zip(payloads.iter().cycle()) {
                // Text payloads with spaces survive because they are the
                // final field; arbitrary generated ones here are spaceless.
                store
                    .insert("t", IovKey::new(key.clone()), *r, p.clone())
                    .expect("insert");
            }
        }
        let snap = Snapshot::capture(&store, "t").expect("capture");
        let restored = Snapshot::from_text(&snap.to_text()).expect("parse");
        prop_assert_eq!(&restored, &snap);
        // Restoring into a fresh store answers identically.
        let fresh = ConditionsStore::new();
        restored.restore_into(&fresh, "t2").expect("restore");
        for key in &keys {
            for r in &ranges {
                let a = store.resolve("t", &IovKey::new(key.clone()), r.first).unwrap();
                let b = fresh.resolve("t2", &IovKey::new(key.clone()), r.first).unwrap();
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn entry_line_round_trips_through_text(
        key in "[a-z]{1,8}(/[a-z]{1,8})?",
        range in arb_range(),
        payload in arb_payload()
    ) {
        let iov = IovKey::new(key);
        let line = text::format_entry(&iov, range, &payload);
        let (k2, r2, p2) = text::parse_entry(&line, 3).expect("parses");
        prop_assert_eq!(k2, iov);
        prop_assert_eq!(r2, range);
        prop_assert_eq!(p2, payload);
    }

    #[test]
    fn snapshot_single_byte_flip_is_detected_or_harmless(
        ranges in arb_ranges(4),
        payloads in prop::collection::vec(arb_payload(), 4),
        keys in prop::collection::btree_set("[a-z]{1,6}", 1..4),
        pos_frac in 0.0..1.0f64,
        bit in 0u8..8
    ) {
        let store = ConditionsStore::new();
        store.create_tag("t").unwrap();
        for key in &keys {
            for (r, p) in ranges.iter().zip(payloads.iter().cycle()) {
                store
                    .insert("t", IovKey::new(key.clone()), *r, p.clone())
                    .expect("insert");
            }
        }
        let snap = Snapshot::capture(&store, "t").expect("capture");
        let mut bytes = snap.to_text().into_bytes();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        // The faultlab invariant at the text level: a flipped snapshot is
        // either rejected (bad UTF-8, bad header, digest mismatch, parse
        // error) or parses back to exactly the original content.
        if let Ok(text) = std::str::from_utf8(&bytes) {
            if let Ok(parsed) = Snapshot::from_text(text) {
                prop_assert_eq!(parsed, snap);
            }
        }
    }

    #[test]
    fn frozen_tags_reject_all_writes(
        key in "[a-z]{1,10}",
        run0 in 1u32..1000
    ) {
        let store = ConditionsStore::new();
        store.create_tag("t").unwrap();
        store.freeze("t").unwrap();
        prop_assert!(store
            .insert("t", IovKey::new(key), RunRange::from(run0), Payload::Scalar(0.0))
            .is_err());
    }
}
