//! Filled-in interviews for the four synthetic experiments.
//!
//! The answers encode the cross-experiment differences the report
//! documents: CMS's common analysis formats and approved open-data policy,
//! ATLAS's less-central post-AOD workflow, ALICE's ship-with-data
//! constants and narrower infrastructure, LHCb's approved policy. The
//! interviews drive the M1–M4 maturity tables and the sharing grid.

use crate::interview::{
    CurationIntent, DataInterview, DataOrganization, Documentation, LifecycleStage,
    SoftwareOrganization, StoragePractice,
};
use crate::sharing::{Audience, DataSharingGrid, SharingTime};

fn stage(
    name: &str,
    n_files: u64,
    bytes: u64,
    formats: &[&str],
    documented: bool,
) -> LifecycleStage {
    LifecycleStage {
        name: name.to_string(),
        n_files,
        bytes,
        formats: formats.iter().map(|s| s.to_string()).collect(),
        software: vec![format!("daspos-reco-1.0.0"), format!("daspos-tiers-1.0.0")],
        versions_documented: documented,
    }
}

/// The interview preset for one experiment name (`"alice"`, `"atlas"`,
/// `"cms"`, `"lhcb"`). Unknown names return a minimal blank interview.
pub fn interview_for(experiment: &str) -> DataInterview {
    match experiment {
        "alice" => DataInterview {
            experiment: "alice".to_string(),
            description: "central heavy-ion-style collision data, V0/strangeness focus"
                .to_string(),
            lifecycle: vec![
                stage("raw", 4000, 4_000_000_000, &["dpef-raw"], true),
                stage("reco", 4000, 1_200_000_000, &["dpef-reco"], true),
                stage("aod", 800, 150_000_000, &["dpef-aod"], true),
                stage("ntuple", 60, 1_500_000, &["ntup-csv", "root-like"], false),
            ],
            storage: StoragePractice {
                backup_copies: 1,
                recovery_plan: true,
                recovery_procedures: false,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: true,
            },
            organization: DataOrganization {
                // "Root too heavy for classroom use" and unclear
                // self-documentation (Table 1 marks it "?").
                documentation: Documentation::Codebook,
                standard_formats_everywhere: false,
                usable_inside: true,
                usable_outside: false,
                uniform_practice: true,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: true,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["aod".to_string()],
                useful_years: 15,
                reproducible: false,
                repository_in_place: false,
            },
        },
        "atlas" => DataInterview {
            experiment: "atlas".to_string(),
            description: "general-purpose collision data, W/Z/H programme".to_string(),
            lifecycle: vec![
                stage("raw", 20000, 30_000_000_000, &["dpef-raw"], true),
                stage("reco", 20000, 9_000_000_000, &["dpef-reco"], true),
                // "ATLAS is much less central" post-AOD: many formats.
                stage(
                    "aod",
                    5000,
                    1_200_000_000,
                    &["dpef-aod", "xaod-like", "jive-xml"],
                    true,
                ),
                stage(
                    "ntuple",
                    900,
                    20_000_000,
                    &["ntup-a", "ntup-b", "ntup-c", "ntup-d"],
                    false,
                ),
            ],
            storage: StoragePractice {
                backup_copies: 2,
                recovery_plan: true,
                recovery_procedures: true,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: true,
            },
            organization: DataOrganization {
                // The Jive-XML outreach format is self-documenting
                // (Table 1: "XML one is").
                documentation: Documentation::Codebook,
                standard_formats_everywhere: false,
                usable_inside: true,
                usable_outside: false,
                uniform_practice: true,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: true,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["aod".to_string(), "ntuple".to_string()],
                useful_years: 20,
                reproducible: false,
                repository_in_place: true,
            },
        },
        "cms" => DataInterview {
            experiment: "cms".to_string(),
            description: "general-purpose collision data, common analysis formats"
                .to_string(),
            lifecycle: vec![
                stage("raw", 18000, 25_000_000_000, &["dpef-raw"], true),
                stage("reco", 18000, 8_000_000_000, &["dpef-reco"], true),
                // "CMS ... makes extensive use of common data formats for
                // analysis groups, each ... derived from a centrally-used
                // AOD format."
                stage("aod", 4000, 1_000_000_000, &["dpef-aod"], true),
                stage("ntuple", 700, 15_000_000, &["ntup-common"], true),
            ],
            storage: StoragePractice {
                backup_copies: 2,
                recovery_plan: true,
                recovery_procedures: true,
                recovery_tested: true,
                succession_plan: true,
                dmp_required: true,
            },
            organization: DataOrganization {
                // The ig format is self-documenting (Table 1: "Y").
                documentation: Documentation::SelfDocumenting,
                standard_formats_everywhere: true,
                usable_inside: true,
                usable_outside: true,
                uniform_practice: true,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: true,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["aod".to_string(), "ntuple".to_string()],
                useful_years: 20,
                reproducible: true,
                repository_in_place: true,
            },
        },
        "lhcb" => DataInterview {
            experiment: "lhcb".to_string(),
            description: "forward spectrometer data, charm/beauty lifetimes".to_string(),
            lifecycle: vec![
                stage("raw", 9000, 9_000_000_000, &["dpef-raw"], true),
                stage("reco", 9000, 2_500_000_000, &["dpef-reco"], true),
                stage("aod", 1500, 350_000_000, &["dpef-aod"], true),
                stage("ntuple", 250, 6_000_000, &["ntup-lifetime"], true),
            ],
            storage: StoragePractice {
                backup_copies: 2,
                recovery_plan: true,
                recovery_procedures: true,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: true,
            },
            organization: DataOrganization {
                documentation: Documentation::Codebook,
                standard_formats_everywhere: true,
                usable_inside: true,
                usable_outside: false,
                uniform_practice: true,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: true,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["aod".to_string()],
                useful_years: 15,
                reproducible: true,
                repository_in_place: true,
            },
        },
        // The report's first session heard "overviews of current
        // data/analysis preservation efforts from Babar and the Tevatron
        // experiments" (§1): legacy experiments past data taking, with
        // preservation driven by dedicated archival projects rather than
        // live computing operations.
        "babar" => DataInterview {
            experiment: "babar".to_string(),
            description: "archived B-factory data (data taking ended 2008)".to_string(),
            lifecycle: vec![
                stage("raw", 12000, 2_000_000_000, &["legacy-raw"], true),
                stage("reco", 12000, 700_000_000, &["legacy-reco"], true),
                stage("aod", 2500, 90_000_000, &["legacy-micro"], true),
                stage("ntuple", 400, 900_000, &["legacy-ntup"], false),
            ],
            storage: StoragePractice {
                backup_copies: 2,
                recovery_plan: true,
                recovery_procedures: true,
                recovery_tested: false,
                succession_plan: true, // data re-hosted at a successor centre
                dmp_required: false,
            },
            organization: DataOrganization {
                documentation: Documentation::Codebook,
                standard_formats_everywhere: false,
                usable_inside: true,
                usable_outside: false,
                uniform_practice: true,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: true,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["aod".to_string()],
                useful_years: 25,
                reproducible: false,
                repository_in_place: true,
            },
        },
        "tevatron" => DataInterview {
            experiment: "tevatron".to_string(),
            description: "archived ppbar collision data (Run II ended 2011)".to_string(),
            lifecycle: vec![
                stage("raw", 30000, 10_000_000_000, &["legacy-raw"], true),
                stage("reco", 30000, 3_500_000_000, &["legacy-reco"], true),
                stage("aod", 6000, 400_000_000, &["legacy-tmb", "legacy-cafe"], false),
                stage("ntuple", 900, 4_000_000, &["legacy-ntup"], false),
            ],
            storage: StoragePractice {
                backup_copies: 1,
                recovery_plan: true,
                recovery_procedures: false,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: false,
            },
            organization: DataOrganization {
                documentation: Documentation::TransientWeb,
                standard_formats_everywhere: false,
                usable_inside: true,
                usable_outside: false,
                uniform_practice: false,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: false,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["ntuple".to_string()],
                useful_years: 15,
                reproducible: false,
                repository_in_place: false,
            },
        },
        other => DataInterview {
            experiment: other.to_string(),
            description: String::new(),
            lifecycle: vec![],
            storage: StoragePractice {
                backup_copies: 0,
                recovery_plan: false,
                recovery_procedures: false,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: false,
            },
            organization: DataOrganization {
                documentation: Documentation::None,
                standard_formats_everywhere: false,
                usable_inside: false,
                usable_outside: false,
                uniform_practice: false,
            },
            software: SoftwareOrganization {
                version_controlled: false,
                tagged_releases: false,
                stage_versions_recorded: false,
            },
            curation: CurationIntent {
                preserved_tiers: vec![],
                useful_years: 0,
                reproducible: false,
                repository_in_place: false,
            },
        },
    }
}

/// The sharing grid an experiment's policy implies: collaborators always
/// see everything; approved policies open the analysis-grade tiers to the
/// world after an embargo.
pub fn sharing_grid_for(experiment: &str) -> DataSharingGrid {
    use crate::sharing::PolicyStatus;
    let mut grid = DataSharingGrid::new();
    for stage in ["raw", "reco", "aod", "ntuple"] {
        grid.set(stage, Audience::Collaborators, SharingTime::Always);
    }
    match PolicyStatus::report_2014(experiment) {
        PolicyStatus::ApprovedWithReleases => {
            grid.set("aod", Audience::World, SharingTime::AfterMonths(36));
            grid.set("ntuple", Audience::World, SharingTime::AfterMonths(12));
            grid.set("ntuple", Audience::Field, SharingTime::Always);
        }
        PolicyStatus::Approved => {
            grid.set("aod", Audience::Field, SharingTime::AfterMonths(36));
            grid.set("ntuple", Audience::World, SharingTime::AfterMonths(36));
        }
        PolicyStatus::UnderDiscussion => {
            grid.set("ntuple", Audience::Field, SharingTime::AfterMonths(24));
        }
        PolicyStatus::None => {}
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maturity::MaturityReport;
    use crate::sharing::PolicyStatus;

    #[test]
    fn four_presets_are_distinct_and_complete() {
        let names = ["alice", "atlas", "cms", "lhcb"];
        for name in names {
            let iv = interview_for(name);
            assert_eq!(iv.experiment, name);
            assert_eq!(iv.lifecycle.len(), 4);
            assert!(iv.lifecycle_reduction().unwrap() > 100.0);
        }
        assert_ne!(interview_for("alice"), interview_for("cms"));
    }

    #[test]
    fn lifecycle_bytes_shrink_monotonically() {
        for name in ["alice", "atlas", "cms", "lhcb"] {
            let iv = interview_for(name);
            for w in iv.lifecycle.windows(2) {
                assert!(
                    w[0].bytes > w[1].bytes,
                    "{name}: {} not larger than {}",
                    w[0].name,
                    w[1].name
                );
            }
        }
    }

    #[test]
    fn cms_scores_highest_overall() {
        let reports: Vec<(String, f64)> = ["alice", "atlas", "cms", "lhcb"]
            .iter()
            .map(|n| {
                let iv = interview_for(n);
                let r = MaturityReport::assess(&iv, PolicyStatus::report_2014(n));
                (n.to_string(), r.overall())
            })
            .collect();
        let cms = reports.iter().find(|(n, _)| n == "cms").unwrap().1;
        for (name, score) in &reports {
            if name != "cms" {
                assert!(cms >= *score, "cms {cms} vs {name} {score}");
            }
        }
    }

    #[test]
    fn atlas_has_most_format_multiplicity() {
        // "ATLAS is much less central" — more distinct formats than CMS.
        let atlas = interview_for("atlas").distinct_formats().len();
        let cms = interview_for("cms").distinct_formats().len();
        assert!(atlas > cms, "atlas {atlas} vs cms {cms}");
    }

    #[test]
    fn sharing_grids_follow_policy() {
        let cms = sharing_grid_for("cms");
        assert_eq!(cms.widest_audience("ntuple"), Audience::World);
        let alice = sharing_grid_for("alice");
        assert!(alice.widest_audience("ntuple") < Audience::World);
        assert_eq!(alice.widest_audience("raw"), Audience::Collaborators);
    }

    #[test]
    fn legacy_experiments_trail_the_lhc_in_preservation_readiness() {
        // §1: BaBar/Tevatron presented their preservation efforts; both
        // are past data taking, with Tevatron the weaker case (transient
        // documentation, no repository). Their scores sit below CMS.
        let cms = MaturityReport::assess(
            &interview_for("cms"),
            PolicyStatus::report_2014("cms"),
        );
        for name in ["babar", "tevatron"] {
            let iv = interview_for(name);
            assert_eq!(iv.lifecycle.len(), 4, "{name} interview incomplete");
            let r = MaturityReport::assess(&iv, PolicyStatus::report_2014(name));
            assert!(
                r.overall() < cms.overall(),
                "{name} {} should trail cms {}",
                r.overall(),
                cms.overall()
            );
        }
        // BaBar (dedicated archival project, successor data centre)
        // outranks the Tevatron interview.
        let babar = MaturityReport::assess(&interview_for("babar"), PolicyStatus::None);
        let tevatron = MaturityReport::assess(&interview_for("tevatron"), PolicyStatus::None);
        assert!(babar.overall() > tevatron.overall());
    }

    #[test]
    fn unknown_experiment_gets_blank_interview() {
        let iv = interview_for("ua1");
        assert!(iv.lifecycle.is_empty());
        let r = MaturityReport::assess(&iv, PolicyStatus::None);
        assert_eq!(r.overall(), 1.0);
    }
}
