//! The data sharing grid and open-data policy statuses.

use std::collections::BTreeMap;
use std::fmt;

/// Who data is shared with (Appendix A Q9A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Audience {
    /// No one outside the producing group.
    NoOne,
    /// Project collaborators.
    Collaborators,
    /// The host academic community.
    HostCommunity,
    /// Others in the field (disciplinary repositories).
    Field,
    /// The whole world (public web release).
    World,
}

impl Audience {
    /// All audiences in increasing openness.
    pub fn all() -> [Audience; 5] {
        [
            Audience::NoOne,
            Audience::Collaborators,
            Audience::HostCommunity,
            Audience::Field,
            Audience::World,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Audience::NoOne => "no one",
            Audience::Collaborators => "collaborators",
            Audience::HostCommunity => "host community",
            Audience::Field => "field",
            Audience::World => "world",
        }
    }
}

/// When the data becomes available to an audience (Q9B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SharingTime {
    /// Never shared.
    Never,
    /// After an embargo of the given number of months.
    AfterMonths(u32),
    /// Immediately.
    Always,
}

impl fmt::Display for SharingTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingTime::Never => f.write_str("never"),
            SharingTime::AfterMonths(m) => write!(f, "after {m} months"),
            SharingTime::Always => f.write_str("always"),
        }
    }
}

/// Status of an experiment's open-data policy (report §4, 2014 update).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyStatus {
    /// No policy.
    None,
    /// Under discussion (ALICE and ATLAS as of 2014).
    UnderDiscussion,
    /// Policy approved (CMS and LHCb, 2013).
    Approved,
    /// Approved and public releases already made.
    ApprovedWithReleases,
}

impl PolicyStatus {
    /// The §4 policy status for the four LHC experiments as recorded in
    /// the report's 2014 update.
    pub fn report_2014(experiment: &str) -> PolicyStatus {
        match experiment {
            // "CMS: Data policy and intent to release data to the public
            //  was approved in 2013." — and the Finland outreach project
            //  uses "the CMS public data release" (§2.1).
            "cms" => PolicyStatus::ApprovedWithReleases,
            // "LHCb: Data policy ... approved in 2013."
            "lhcb" => PolicyStatus::Approved,
            // "ALICE: under discussion (2014); ATLAS: under discussion".
            "alice" | "atlas" => PolicyStatus::UnderDiscussion,
            _ => PolicyStatus::None,
        }
    }

    /// Display text matching the report's wording.
    pub fn describe(&self) -> &'static str {
        match self {
            PolicyStatus::None => "no policy",
            PolicyStatus::UnderDiscussion => "under discussion",
            PolicyStatus::Approved => "approved",
            PolicyStatus::ApprovedWithReleases => "approved, public release made",
        }
    }
}

/// The data sharing grid: lifecycle stage → audience → when.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataSharingGrid {
    cells: BTreeMap<(String, Audience), SharingTime>,
}

impl DataSharingGrid {
    /// An empty grid.
    pub fn new() -> Self {
        DataSharingGrid::default()
    }

    /// Set the sharing time for a (stage, audience) cell.
    pub fn set(&mut self, stage: &str, audience: Audience, when: SharingTime) {
        self.cells.insert((stage.to_string(), audience), when);
    }

    /// Read a cell; unset cells default to [`SharingTime::Never`].
    pub fn get(&self, stage: &str, audience: Audience) -> SharingTime {
        self.cells
            .get(&(stage.to_string(), audience))
            .copied()
            .unwrap_or(SharingTime::Never)
    }

    /// The widest audience a stage is ever shared with.
    pub fn widest_audience(&self, stage: &str) -> Audience {
        Audience::all()
            .into_iter()
            .rev()
            .find(|a| self.get(stage, *a) != SharingTime::Never)
            .unwrap_or(Audience::NoOne)
    }

    /// All stages mentioned in the grid.
    pub fn stages(&self) -> Vec<String> {
        let mut stages: Vec<String> = self.cells.keys().map(|(s, _)| s.clone()).collect();
        stages.sort();
        stages.dedup();
        stages
    }

    /// Render an ASCII table of the grid (stages × audiences).
    pub fn render(&self) -> String {
        let mut out = String::from("stage");
        for a in Audience::all() {
            out.push_str(&format!("\t{}", a.name()));
        }
        out.push('\n');
        for stage in self.stages() {
            out.push_str(&stage);
            for a in Audience::all() {
                out.push_str(&format!("\t{}", self.get(&stage, a)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_2014_statuses() {
        assert_eq!(
            PolicyStatus::report_2014("cms"),
            PolicyStatus::ApprovedWithReleases
        );
        assert_eq!(PolicyStatus::report_2014("lhcb"), PolicyStatus::Approved);
        assert_eq!(
            PolicyStatus::report_2014("alice"),
            PolicyStatus::UnderDiscussion
        );
        assert_eq!(
            PolicyStatus::report_2014("atlas"),
            PolicyStatus::UnderDiscussion
        );
        assert_eq!(PolicyStatus::report_2014("babar"), PolicyStatus::None);
    }

    #[test]
    fn grid_defaults_to_never() {
        let grid = DataSharingGrid::new();
        assert_eq!(grid.get("raw", Audience::World), SharingTime::Never);
        assert_eq!(grid.widest_audience("raw"), Audience::NoOne);
    }

    #[test]
    fn grid_set_get_and_widest() {
        let mut grid = DataSharingGrid::new();
        grid.set("aod", Audience::Collaborators, SharingTime::Always);
        grid.set("ntuple", Audience::Field, SharingTime::AfterMonths(12));
        grid.set("ntuple", Audience::World, SharingTime::AfterMonths(36));
        assert_eq!(
            grid.get("ntuple", Audience::World),
            SharingTime::AfterMonths(36)
        );
        assert_eq!(grid.widest_audience("ntuple"), Audience::World);
        assert_eq!(grid.widest_audience("aod"), Audience::Collaborators);
        assert_eq!(grid.stages(), vec!["aod".to_string(), "ntuple".to_string()]);
    }

    #[test]
    fn grid_renders_all_stages() {
        let mut grid = DataSharingGrid::new();
        grid.set("raw", Audience::Collaborators, SharingTime::Always);
        let table = grid.render();
        assert!(table.contains("raw"));
        assert!(table.contains("always"));
        assert!(table.contains("never"));
        assert!(table.lines().count() >= 2);
    }

    #[test]
    fn sharing_time_ordering() {
        assert!(SharingTime::Never < SharingTime::AfterMonths(1));
        assert!(SharingTime::AfterMonths(1) < SharingTime::Always);
    }

    #[test]
    fn audience_ordering_matches_openness() {
        assert!(Audience::NoOne < Audience::World);
        assert!(Audience::Collaborators < Audience::Field);
    }
}
