//! The Data/Software Interview Template (Appendix A) as typed data.

/// How data organization is documented (Appendix A Q6A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Documentation {
    /// No documentation exists.
    None,
    /// Transient pages (wikis, tutorials) — the report notes outreach
    /// analyses live here and calls it improper curation (§2.2).
    TransientWeb,
    /// A maintained codebook or data dictionary.
    Codebook,
    /// Self-documenting formats plus a maintained dictionary.
    SelfDocumenting,
}

/// One stage of the data lifecycle (Appendix A Q2).
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleStage {
    /// Stage name: `"collection"`, `"reconstruction"`, `"analysis"`, …
    pub name: String,
    /// Files at this stage.
    pub n_files: u64,
    /// Total bytes at this stage.
    pub bytes: u64,
    /// File format names used at this stage.
    pub formats: Vec<String>,
    /// Software packages (rendered versions) required to read the stage.
    pub software: Vec<String>,
    /// Whether those package versions are pinned/documented (Q5.6B).
    pub versions_documented: bool,
}

/// Storage, backup and disaster recovery practice (Appendix A Q5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoragePractice {
    /// Number of backup copies kept (0 = none).
    pub backup_copies: u32,
    /// A written disaster-recovery plan exists.
    pub recovery_plan: bool,
    /// The plan comes with implementation procedures.
    pub recovery_procedures: bool,
    /// The plan is routinely tested.
    pub recovery_tested: bool,
    /// A succession plan (alternative data centre) exists.
    pub succession_plan: bool,
    /// The funding agency requires a data management plan.
    pub dmp_required: bool,
}

/// Data organization and description (Appendix A Q6).
#[derive(Debug, Clone, PartialEq)]
pub struct DataOrganization {
    /// How the organization is documented.
    pub documentation: Documentation,
    /// Standard field-wide formats are used at every lifecycle stage.
    pub standard_formats_everywhere: bool,
    /// Insiders can use the data from the documentation alone.
    pub usable_inside: bool,
    /// Outsiders can use the data from the documentation alone.
    pub usable_outside: bool,
    /// Metadata practices are uniform (vs per-individual).
    pub uniform_practice: bool,
}

/// Software organization (Appendix A Q7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareOrganization {
    /// Code lives in controlled repositories.
    pub version_controlled: bool,
    /// Production releases are tagged.
    pub tagged_releases: bool,
    /// The mapping from lifecycle stage to release is recorded.
    pub stage_versions_recorded: bool,
}

/// Curation and preservation intent (Appendix A Q8).
#[derive(Debug, Clone, PartialEq)]
pub struct CurationIntent {
    /// Tiers selected for preservation (names).
    pub preserved_tiers: Vec<String>,
    /// Expected useful lifetime in years.
    pub useful_years: u32,
    /// The generation process is documented and reproducible (Q8D) —
    /// i.e. a validated re-run exists.
    pub reproducible: bool,
    /// A repository/infrastructure is in place for the preserved data.
    pub repository_in_place: bool,
}

/// The complete interview for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DataInterview {
    /// The experiment answering.
    pub experiment: String,
    /// Free-text description of the data (Q1A).
    pub description: String,
    /// Lifecycle stages in processing order (Q2).
    pub lifecycle: Vec<LifecycleStage>,
    /// Storage and recovery practice (Q5).
    pub storage: StoragePractice,
    /// Data organization (Q6).
    pub organization: DataOrganization,
    /// Software organization (Q7).
    pub software: SoftwareOrganization,
    /// Curation intent (Q8).
    pub curation: CurationIntent,
}

impl DataInterview {
    /// Total bytes over the whole lifecycle.
    pub fn total_bytes(&self) -> u64 {
        self.lifecycle.iter().map(|s| s.bytes).sum()
    }

    /// Size reduction factor from the first lifecycle stage to the last.
    /// The report's Q2 example shows exactly this shrinkage.
    pub fn lifecycle_reduction(&self) -> Option<f64> {
        let first = self.lifecycle.first()?;
        let last = self.lifecycle.last()?;
        if last.bytes == 0 {
            return None;
        }
        Some(first.bytes as f64 / last.bytes as f64)
    }

    /// Distinct formats used anywhere in the lifecycle — the format
    /// multiplicity Table 1 catalogues.
    pub fn distinct_formats(&self) -> Vec<String> {
        let mut formats: Vec<String> = self
            .lifecycle
            .iter()
            .flat_map(|s| s.formats.iter().cloned())
            .collect();
        formats.sort();
        formats.dedup();
        formats
    }

    /// Every lifecycle stage has pinned software versions.
    pub fn all_versions_documented(&self) -> bool {
        self.lifecycle.iter().all(|s| s.versions_documented)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, bytes: u64, documented: bool) -> LifecycleStage {
        LifecycleStage {
            name: name.to_string(),
            n_files: 10,
            bytes,
            formats: vec![format!("{name}-fmt")],
            software: vec!["daspos-1.0.0".to_string()],
            versions_documented: documented,
        }
    }

    fn interview() -> DataInterview {
        DataInterview {
            experiment: "atlas".to_string(),
            description: "synthetic collision data".to_string(),
            lifecycle: vec![
                stage("raw", 1_000_000, true),
                stage("aod", 100_000, true),
                stage("ntuple", 1_000, false),
            ],
            storage: StoragePractice {
                backup_copies: 2,
                recovery_plan: true,
                recovery_procedures: true,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: true,
            },
            organization: DataOrganization {
                documentation: Documentation::Codebook,
                standard_formats_everywhere: false,
                usable_inside: true,
                usable_outside: false,
                uniform_practice: true,
            },
            software: SoftwareOrganization {
                version_controlled: true,
                tagged_releases: true,
                stage_versions_recorded: true,
            },
            curation: CurationIntent {
                preserved_tiers: vec!["aod".to_string()],
                useful_years: 10,
                reproducible: false,
                repository_in_place: true,
            },
        }
    }

    #[test]
    fn totals_and_reduction() {
        let iv = interview();
        assert_eq!(iv.total_bytes(), 1_101_000);
        assert!((iv.lifecycle_reduction().unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_lifecycle_has_no_reduction() {
        let mut iv = interview();
        iv.lifecycle.clear();
        assert!(iv.lifecycle_reduction().is_none());
    }

    #[test]
    fn zero_final_stage_has_no_reduction() {
        let mut iv = interview();
        iv.lifecycle.last_mut().unwrap().bytes = 0;
        assert!(iv.lifecycle_reduction().is_none());
    }

    #[test]
    fn distinct_formats_dedup() {
        let mut iv = interview();
        iv.lifecycle[1].formats.push("raw-fmt".to_string());
        let formats = iv.distinct_formats();
        assert_eq!(formats.len(), 3);
    }

    #[test]
    fn version_documentation_aggregate() {
        let iv = interview();
        assert!(!iv.all_versions_documented());
        let mut iv2 = iv;
        iv2.lifecycle[2].versions_documented = true;
        assert!(iv2.all_versions_documented());
    }

    #[test]
    fn documentation_is_ordered() {
        assert!(Documentation::None < Documentation::TransientWeb);
        assert!(Documentation::TransientWeb < Documentation::Codebook);
        assert!(Documentation::Codebook < Documentation::SelfDocumenting);
    }
}
