//! # daspos-metadata — the Data Interview Template engine
//!
//! Appendix A of the DASPOS report is a questionnaire ("Data/Software
//! Interview Template", derived from the Data Curation Toolkit) that each
//! experiment filled in before the workshop. This crate turns that
//! instrument into executable structures:
//!
//! * [`interview`] — the questionnaire itself as typed data: data
//!   overview, lifecycle stages, tools, storage/backup practice, data and
//!   software organization, curation intent, sharing,
//! * [`maturity`] — the four 5-level maturity rubrics (data management &
//!   disaster recovery, data description, preservation, sharing/access)
//!   as scoring functions over an interview,
//! * [`sharing`] — the data sharing grid (lifecycle stage × audience ×
//!   when) plus the §4 open-data policy statuses (CMS and LHCb approved
//!   in 2013; ALICE and ATLAS under discussion as of the 2014 update),
//! * [`presets`] — filled-in interviews for the four synthetic
//!   experiments, from which the M1–M4 experiments regenerate the
//!   rubric tables.

pub mod interview;
pub mod maturity;
pub mod presets;
pub mod sharing;

pub use interview::{
    DataInterview, DataOrganization, Documentation, LifecycleStage, StoragePractice,
};
pub use maturity::{MaturityLevel, MaturityReport};
pub use sharing::{Audience, DataSharingGrid, PolicyStatus, SharingTime};
