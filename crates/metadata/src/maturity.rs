//! The four maturity rubrics of Appendix A as scoring functions.
//!
//! Each rubric is a 1–5 scale whose level descriptions come verbatim from
//! the report's tables. The scoring functions walk the scale from the top:
//! an interview earns a level when it satisfies that level's description
//! and all lower ones.

use std::fmt;

use crate::interview::{DataInterview, Documentation};
use crate::sharing::PolicyStatus;

/// A 1–5 maturity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MaturityLevel(u8);

impl MaturityLevel {
    /// Construct; clamps into 1..=5.
    pub fn new(level: u8) -> Self {
        MaturityLevel(level.clamp(1, 5))
    }

    /// The numeric level.
    pub fn value(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for MaturityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/5", self.0)
    }
}

/// Rubric F (Q5): data management and disaster recovery.
///
/// 1 — day-to-day focus; 2 — some risk awareness; 3 — policies and plans
/// in place; 4 — plans with implementation procedures, loss unlikely;
/// 5 — plans routinely tested, succession plans in place.
pub fn data_management(iv: &DataInterview) -> MaturityLevel {
    let s = &iv.storage;
    let level = if s.recovery_tested && s.succession_plan {
        5
    } else if s.recovery_plan && s.recovery_procedures && s.backup_copies >= 2 {
        4
    } else if s.recovery_plan {
        3
    } else if s.backup_copies >= 1 {
        2
    } else {
        1
    };
    MaturityLevel::new(level)
}

/// Rubric D (Q6): data description.
///
/// 1 — metadata unfamiliar; 2 — practices vary by individual; 3 —
/// metadata understood, standards guidance provided; 4 — data well
/// labeled and systematically organized; 5 — understandable by other
/// researchers (outside the experiment).
pub fn data_description(iv: &DataInterview) -> MaturityLevel {
    let o = &iv.organization;
    let level = if o.usable_outside && o.documentation >= Documentation::SelfDocumenting {
        5
    } else if o.usable_inside && o.documentation >= Documentation::Codebook {
        4
    } else if o.uniform_practice && o.documentation >= Documentation::Codebook {
        3
    } else if o.documentation > Documentation::None {
        2
    } else {
        1
    };
    MaturityLevel::new(level)
}

/// Rubric E (Q8): preservation.
///
/// 1 — low awareness; 2 — data remains by chance; 3 — preservation
/// understood and planned; 4 — data selected, repositories in place;
/// 5 — efficiently preserved, infrastructure functions and is used
/// (which requires demonstrated reproducibility).
pub fn preservation(iv: &DataInterview) -> MaturityLevel {
    let c = &iv.curation;
    let level = if c.repository_in_place && c.reproducible && !c.preserved_tiers.is_empty() {
        5
    } else if c.repository_in_place && !c.preserved_tiers.is_empty() {
        4
    } else if !c.preserved_tiers.is_empty() && iv.software.stage_versions_recorded {
        3
    } else if !c.preserved_tiers.is_empty() || c.useful_years > 0 {
        2
    } else {
        1
    };
    MaturityLevel::new(level)
}

/// Rubric F (Q9): sharing and access.
///
/// 1 — individuals manage access, low awareness; 2 — ad hoc sharing;
/// 3 — sharing supported, infrastructure in place; 4 — data shared where
/// legally/ethically possible (an approved open-data policy); 5 — a
/// culture of openness, systems copied by others (approved policy plus
/// public releases already made).
pub fn sharing_access(iv: &DataInterview, policy: PolicyStatus) -> MaturityLevel {
    let has_infra = iv.curation.repository_in_place;
    let level = match policy {
        PolicyStatus::ApprovedWithReleases if has_infra => 5,
        PolicyStatus::Approved if has_infra => 4,
        PolicyStatus::ApprovedWithReleases | PolicyStatus::Approved => 3,
        PolicyStatus::UnderDiscussion if has_infra => 3,
        PolicyStatus::UnderDiscussion => 2,
        PolicyStatus::None => 1,
    };
    MaturityLevel::new(level)
}

/// The full maturity report for one experiment: the four rubric scores
/// the M1–M4 experiments tabulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaturityReport {
    /// Data management & disaster recovery (App. A Q5F).
    pub data_management: MaturityLevel,
    /// Data description (App. A Q6D).
    pub description: MaturityLevel,
    /// Preservation (App. A Q8E).
    pub preservation: MaturityLevel,
    /// Sharing/access (App. A Q9F).
    pub sharing: MaturityLevel,
}

impl MaturityReport {
    /// Score an interview under a given open-data policy status.
    pub fn assess(iv: &DataInterview, policy: PolicyStatus) -> MaturityReport {
        MaturityReport {
            data_management: data_management(iv),
            description: data_description(iv),
            preservation: preservation(iv),
            sharing: sharing_access(iv, policy),
        }
    }

    /// Mean of the four scores.
    pub fn overall(&self) -> f64 {
        f64::from(
            self.data_management.value()
                + self.description.value()
                + self.preservation.value()
                + self.sharing.value(),
        ) / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interview::{
        CurationIntent, DataOrganization, LifecycleStage, SoftwareOrganization, StoragePractice,
    };

    fn baseline() -> DataInterview {
        DataInterview {
            experiment: "test".to_string(),
            description: String::new(),
            lifecycle: vec![LifecycleStage {
                name: "raw".to_string(),
                n_files: 1,
                bytes: 100,
                formats: vec!["fmt".to_string()],
                software: vec![],
                versions_documented: true,
            }],
            storage: StoragePractice {
                backup_copies: 0,
                recovery_plan: false,
                recovery_procedures: false,
                recovery_tested: false,
                succession_plan: false,
                dmp_required: false,
            },
            organization: DataOrganization {
                documentation: Documentation::None,
                standard_formats_everywhere: false,
                usable_inside: false,
                usable_outside: false,
                uniform_practice: false,
            },
            software: SoftwareOrganization {
                version_controlled: false,
                tagged_releases: false,
                stage_versions_recorded: false,
            },
            curation: CurationIntent {
                preserved_tiers: vec![],
                useful_years: 0,
                reproducible: false,
                repository_in_place: false,
            },
        }
    }

    #[test]
    fn data_management_ladder() {
        let mut iv = baseline();
        assert_eq!(data_management(&iv).value(), 1);
        iv.storage.backup_copies = 1;
        assert_eq!(data_management(&iv).value(), 2);
        iv.storage.recovery_plan = true;
        assert_eq!(data_management(&iv).value(), 3);
        iv.storage.recovery_procedures = true;
        iv.storage.backup_copies = 2;
        assert_eq!(data_management(&iv).value(), 4);
        iv.storage.recovery_tested = true;
        iv.storage.succession_plan = true;
        assert_eq!(data_management(&iv).value(), 5);
    }

    #[test]
    fn description_ladder() {
        let mut iv = baseline();
        assert_eq!(data_description(&iv).value(), 1);
        iv.organization.documentation = Documentation::TransientWeb;
        assert_eq!(data_description(&iv).value(), 2);
        iv.organization.documentation = Documentation::Codebook;
        iv.organization.uniform_practice = true;
        assert_eq!(data_description(&iv).value(), 3);
        iv.organization.usable_inside = true;
        assert_eq!(data_description(&iv).value(), 4);
        iv.organization.documentation = Documentation::SelfDocumenting;
        iv.organization.usable_outside = true;
        assert_eq!(data_description(&iv).value(), 5);
    }

    #[test]
    fn preservation_ladder() {
        let mut iv = baseline();
        assert_eq!(preservation(&iv).value(), 1);
        iv.curation.useful_years = 10;
        assert_eq!(preservation(&iv).value(), 2);
        iv.curation.preserved_tiers = vec!["aod".to_string()];
        iv.software.stage_versions_recorded = true;
        assert_eq!(preservation(&iv).value(), 3);
        iv.curation.repository_in_place = true;
        assert_eq!(preservation(&iv).value(), 4);
        iv.curation.reproducible = true;
        assert_eq!(preservation(&iv).value(), 5);
    }

    #[test]
    fn sharing_depends_on_policy() {
        let mut iv = baseline();
        assert_eq!(sharing_access(&iv, PolicyStatus::None).value(), 1);
        assert_eq!(sharing_access(&iv, PolicyStatus::UnderDiscussion).value(), 2);
        assert_eq!(sharing_access(&iv, PolicyStatus::Approved).value(), 3);
        iv.curation.repository_in_place = true;
        assert_eq!(sharing_access(&iv, PolicyStatus::UnderDiscussion).value(), 3);
        assert_eq!(sharing_access(&iv, PolicyStatus::Approved).value(), 4);
        assert_eq!(
            sharing_access(&iv, PolicyStatus::ApprovedWithReleases).value(),
            5
        );
    }

    #[test]
    fn report_aggregates() {
        let iv = baseline();
        let report = MaturityReport::assess(&iv, PolicyStatus::None);
        assert_eq!(report.overall(), 1.0);
        assert_eq!(report.data_management.to_string(), "1/5");
    }

    #[test]
    fn level_clamps() {
        assert_eq!(MaturityLevel::new(0).value(), 1);
        assert_eq!(MaturityLevel::new(9).value(), 5);
    }
}
