//! Masterclass exercises (Table 1's "Master Class uses" row).
//!
//! Each exercise consumes simplified events — the Level-2 data — and
//! produces the measurement the classroom extracts:
//!
//! * [`WzCounting`] — the ATLAS/CMS W, Z, Higgs counting exercise,
//! * [`D0LifetimeExercise`] — the LHCb "D lifetime" exercise,
//! * [`V0Finder`] — the ALICE V⁰ exercise.
//!
//! §2.2 of the report notes these are *"perhaps the most completely
//! documented analyses in the high energy physics domain"* — so every
//! exercise carries its instructions as data.

use daspos_hep::hist::Hist1D;

use crate::formats::{SimpleKind, SimplifiedEvent};

/// A masterclass exercise.
pub trait Masterclass {
    /// Exercise name (matching Table 1's vocabulary).
    fn name(&self) -> &'static str;
    /// The classroom instructions — the documentation §2.2 praises.
    fn instructions(&self) -> String;
    /// Run over a set of simplified events.
    fn run(&self, events: &[SimplifiedEvent]) -> MasterclassResult;
}

/// The outcome a classroom reports back.
#[derive(Debug, Clone, PartialEq)]
pub struct MasterclassResult {
    /// Named counters (e.g. `"W-candidates"` → 12).
    pub counts: Vec<(String, u64)>,
    /// Named measured values (e.g. `"lifetime-ps"` → 0.41).
    pub measurements: Vec<(String, f64)>,
    /// Histograms to plot.
    pub plots: Vec<Hist1D>,
}

impl MasterclassResult {
    /// Look up a counter.
    pub fn count(&self, name: &str) -> Option<u64> {
        self.counts.iter().find(|(n, _)| n == name).map(|(_, c)| *c)
    }

    /// Look up a measurement.
    pub fn measurement(&self, name: &str) -> Option<f64> {
        self.measurements
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// W/Z/H counting: classify each event by its lepton/photon content.
#[derive(Debug, Clone, Copy, Default)]
pub struct WzCounting;

impl Masterclass for WzCounting {
    fn name(&self) -> &'static str {
        "W, Z, Higgs"
    }

    fn instructions(&self) -> String {
        "Classify each event: exactly one lepton (pT > 20) with MET > 20 is a W \
         candidate; two opposite-charge leptons with 66 < m-proxy < 116 (we use \
         2*sqrt(pt1*pt2)*cosh-free approximation: the display shows the pair) is a Z \
         candidate; two photons (pT > 20) a Higgs candidate. Count each class and \
         compare the W/Z ratio with the expectation of about 3."
            .to_string()
    }

    fn run(&self, events: &[SimplifiedEvent]) -> MasterclassResult {
        let mut w = 0u64;
        let mut z = 0u64;
        let mut h = 0u64;
        let mut mll = Hist1D::new("m_ll_proxy", 25, 0.0, 150.0).expect("binning");
        for ev in events {
            let leptons: Vec<_> = ev
                .objects
                .iter()
                .filter(|o| {
                    matches!(o.kind, SimpleKind::Electron | SimpleKind::Muon) && o.pt > 20.0
                })
                .collect();
            let photons: Vec<_> = ev
                .of_kind(SimpleKind::Photon)
                .filter(|o| o.pt > 20.0)
                .collect();
            if photons.len() >= 2 {
                h += 1;
            } else if leptons.len() >= 2 && leptons[0].charge != leptons[1].charge {
                // Pair mass from the simplified kinematics.
                let (a, b) = (leptons[0], leptons[1]);
                let m2 = 2.0 * a.pt * b.pt * ((a.eta - b.eta).cosh() - (a.phi - b.phi).cos());
                let m = m2.max(0.0).sqrt();
                mll.fill(m);
                if (66.0..116.0).contains(&m) {
                    z += 1;
                }
            } else if leptons.len() == 1 && ev.met > 20.0 {
                w += 1;
            }
        }
        MasterclassResult {
            counts: vec![
                ("W-candidates".to_string(), w),
                ("Z-candidates".to_string(), z),
                ("H-candidates".to_string(), h),
            ],
            measurements: vec![(
                "w-over-z".to_string(),
                if z == 0 { f64::NAN } else { w as f64 / z as f64 },
            )],
            plots: vec![mll],
        }
    }
}

/// The LHCb D⁰ lifetime exercise: collect candidate proper times (carried
/// in V0 objects' flight information via the converter's D⁰ channel) and
/// fit the exponential.
#[derive(Debug, Clone, Copy, Default)]
pub struct D0LifetimeExercise;

impl Masterclass for D0LifetimeExercise {
    fn name(&self) -> &'static str {
        "D lifetime"
    }

    fn instructions(&self) -> String {
        "Each selected candidate carries its proper decay time (the exporter encodes \
         t_ps = aux - 1000). Histogram the times and read the lifetime off the \
         exponential *slope*: tau = w / ln(N1/N2) for two adjacent windows of width \
         w placed above 0.8 ps, where the displacement selection's acceptance has \
         plateaued. The slope method is immune to left truncation; placing the \
         windows past the turn-on removes the residual acceptance bias."
            .to_string()
    }

    fn run(&self, events: &[SimplifiedEvent]) -> MasterclassResult {
        // In the classroom export the D0 channel re-purposes aux as the
        // proper time in ps when the mass proxy sits in the D0 window;
        // the exporter encodes t_ps = aux - 1000 for such candidates.
        let mut times = Hist1D::new("t_ps", 40, 0.0, 2.0).expect("binning");
        let mut selected = 0u64;
        for ev in events {
            for v0 in ev.of_kind(SimpleKind::V0) {
                if v0.aux >= 1000.0 {
                    times.fill(v0.aux - 1000.0);
                    selected += 1;
                }
            }
        }
        // Slope method over two adjacent windows, robust against the
        // left-truncation the displacement selection introduces; the
        // windows sit above the acceptance turn-on (~0.8 ps for the
        // default vertexing cuts).
        let window = |lo: f64, hi: f64| -> f64 {
            (0..times.binning().nbins())
                .filter(|&i| {
                    let c = times.binning().center(i);
                    c >= lo && c < hi
                })
                .map(|i| times.bin(i))
                .sum()
        };
        let n1 = window(0.8, 1.3);
        let n2 = window(1.3, 1.8);
        let tau = if n1 > 0.0 && n2 > 0.0 && n1 > n2 {
            0.5 / (n1 / n2).ln()
        } else {
            f64::NAN
        };
        MasterclassResult {
            counts: vec![("D0-candidates".to_string(), selected)],
            measurements: vec![("lifetime-ps".to_string(), tau)],
            plots: vec![times],
        }
    }
}

/// The ALICE V⁰ exercise: find the K⁰s mass peak.
#[derive(Debug, Clone, Copy, Default)]
pub struct V0Finder;

impl Masterclass for V0Finder {
    fn name(&self) -> &'static str {
        "V0s (K0s, Lambda)"
    }

    fn instructions(&self) -> String {
        "Scan the event display for V-shaped decay vertices. Each V0 object's \
         auxiliary value is its (pi,pi) invariant mass; histogram it and locate the \
         K0s peak near 0.498 GeV."
            .to_string()
    }

    fn run(&self, events: &[SimplifiedEvent]) -> MasterclassResult {
        let mut mass = Hist1D::new("m_pipi", 40, 0.3, 0.7).expect("binning");
        let mut found = 0u64;
        for ev in events {
            for v0 in ev.of_kind(SimpleKind::V0) {
                if v0.aux < 100.0 {
                    mass.fill(v0.aux);
                    found += 1;
                }
            }
        }
        let peak = if mass.integral() > 0.0 {
            mass.binning().center(mass.peak_bin())
        } else {
            f64::NAN
        };
        MasterclassResult {
            counts: vec![("V0-candidates".to_string(), found)],
            measurements: vec![("k0s-mass-gev".to_string(), peak)],
            plots: vec![mass],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::SimpleParticle;

    fn lepton_event(n_lep: usize, met: f64, opposite: bool) -> SimplifiedEvent {
        let mut ev = SimplifiedEvent {
            met,
            ..SimplifiedEvent::default()
        };
        for i in 0..n_lep {
            ev.objects.push(SimpleParticle {
                kind: SimpleKind::Muon,
                pt: 45.0,
                eta: 0.1 * i as f64,
                phi: if i == 0 { 0.0 } else { 3.0 },
                charge: if opposite && i == 1 { -1 } else { 1 },
                aux: 0.0,
            });
        }
        ev
    }

    #[test]
    fn wz_counting_classifies() {
        let mut events = vec![lepton_event(1, 30.0, false); 6];
        events.extend(vec![lepton_event(2, 5.0, true); 2]);
        // Diphoton event.
        let mut hgg = SimplifiedEvent::default();
        for phi in [0.0, 3.0] {
            hgg.objects.push(SimpleParticle {
                kind: SimpleKind::Photon,
                pt: 60.0,
                eta: 0.0,
                phi,
                charge: 0,
                aux: 0.0,
            });
        }
        events.push(hgg);
        let result = WzCounting.run(&events);
        assert_eq!(result.count("W-candidates"), Some(6));
        assert_eq!(result.count("Z-candidates"), Some(2));
        assert_eq!(result.count("H-candidates"), Some(1));
        assert!((result.measurement("w-over-z").unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn z_pair_mass_proxy_lands_near_z() {
        // Two 45-GeV back-to-back muons: m ≈ 90.
        let events = vec![lepton_event(2, 0.0, true)];
        let result = WzCounting.run(&events);
        assert_eq!(result.count("Z-candidates"), Some(1));
        let h = &result.plots[0];
        let peak = h.binning().center(h.peak_bin());
        assert!((peak - 90.0).abs() < 10.0, "peak at {peak}");
    }

    #[test]
    fn d0_lifetime_slope_method_recovers_tau() {
        // Synthesize a clean exponential with tau = 0.41 ps and check the
        // slope estimator, including under left truncation at 0.2 ps.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut events = Vec::new();
        for _ in 0..20_000 {
            let t = daspos_hep::stats::exponential(&mut rng, 0.41).unwrap();
            if t < 0.2 {
                continue; // the selection bias the method must survive
            }
            let mut ev = SimplifiedEvent::default();
            ev.objects.push(SimpleParticle {
                kind: SimpleKind::V0,
                pt: 5.0,
                eta: 3.0,
                phi: 0.0,
                charge: 0,
                aux: 1000.0 + t,
            });
            events.push(ev);
        }
        let result = D0LifetimeExercise.run(&events);
        let tau = result.measurement("lifetime-ps").unwrap();
        assert!((tau - 0.41).abs() < 0.05, "slope method gave {tau}");
    }

    #[test]
    fn v0_finder_locates_k0s_peak() {
        let mut events = Vec::new();
        for m in [0.49, 0.495, 0.50, 0.505, 0.497, 0.35] {
            let mut ev = SimplifiedEvent::default();
            ev.objects.push(SimpleParticle {
                kind: SimpleKind::V0,
                pt: 2.0,
                eta: 0.0,
                phi: 0.0,
                charge: 0,
                aux: m,
            });
            events.push(ev);
        }
        let result = V0Finder.run(&events);
        assert_eq!(result.count("V0-candidates"), Some(6));
        let peak = result.measurement("k0s-mass-gev").unwrap();
        assert!((peak - 0.4976).abs() < 0.02, "peak at {peak}");
    }

    #[test]
    fn empty_input_degrades_gracefully() {
        assert!(D0LifetimeExercise
            .run(&[])
            .measurement("lifetime-ps")
            .unwrap()
            .is_nan());
        assert!(V0Finder.run(&[]).measurement("k0s-mass-gev").unwrap().is_nan());
        assert!(WzCounting.run(&[]).measurement("w-over-z").unwrap().is_nan());
    }

    #[test]
    fn all_exercises_have_instructions() {
        let exercises: Vec<Box<dyn Masterclass>> = vec![
            Box::new(WzCounting),
            Box::new(D0LifetimeExercise),
            Box::new(V0Finder),
        ];
        for ex in &exercises {
            assert!(ex.instructions().len() > 50, "{} undocumented", ex.name());
        }
    }
}
