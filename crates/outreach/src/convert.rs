//! The thin AOD → simplified-format converter.
//!
//! §2.1: *"a thin layer of software will convert data in a relatively
//! low-level format (called AOD …) into a simplified representation that
//! can be used for further analysis or visualization using an event
//! display that consumes this simplified format."* One converter serves
//! all four experiments — the common-platform argument of experiment O1.

use daspos_reco::objects::AodEvent;

use crate::formats::{SimpleKind, SimpleParticle, SimplifiedEvent};

/// Convert one AOD event into the simplified outreach representation.
///
/// The conversion keeps only what a classroom analysis needs: identified
/// objects, jets, candidates and MET. `max_objects` caps the event size
/// so files stay classroom-friendly (0 = unlimited).
pub fn convert_aod(aod: &AodEvent, experiment: &str, max_objects: usize) -> SimplifiedEvent {
    let mut ev = SimplifiedEvent {
        run: aod.header.run.0,
        event: aod.header.event.0,
        experiment: experiment.to_string(),
        met: aod.met.value(),
        objects: Vec::new(),
    };
    for e in &aod.electrons {
        ev.objects.push(SimpleParticle {
            kind: SimpleKind::Electron,
            pt: e.momentum.pt(),
            eta: e.momentum.eta(),
            phi: e.momentum.phi(),
            charge: e.charge,
            aux: e.momentum.e,
        });
    }
    for m in &aod.muons {
        ev.objects.push(SimpleParticle {
            kind: SimpleKind::Muon,
            pt: m.momentum.pt(),
            eta: m.momentum.eta(),
            phi: m.momentum.phi(),
            charge: m.charge,
            aux: m.momentum.e,
        });
    }
    for p in &aod.photons {
        ev.objects.push(SimpleParticle {
            kind: SimpleKind::Photon,
            pt: p.momentum.pt(),
            eta: p.momentum.eta(),
            phi: p.momentum.phi(),
            charge: 0,
            aux: p.momentum.e,
        });
    }
    for j in &aod.jets {
        ev.objects.push(SimpleParticle {
            kind: SimpleKind::Jet,
            pt: j.momentum.pt(),
            eta: j.momentum.eta(),
            phi: j.momentum.phi(),
            charge: 0,
            aux: j.momentum.e,
        });
    }
    for c in &aod.candidates {
        ev.objects.push(SimpleParticle {
            kind: SimpleKind::V0,
            pt: c.pt,
            eta: c.eta,
            phi: 0.0,
            charge: 0,
            // The pipi mass is what the V0 masterclass plots; the flight
            // distance rides along in a second converted object when
            // needed, but one aux slot keeps the format simple.
            aux: c.mass_pipi,
        });
    }
    if max_objects > 0 && ev.objects.len() > max_objects {
        // Keep the highest-pT objects.
        ev.objects
            .sort_by(|a, b| b.pt.total_cmp(&a.pt));
        ev.objects.truncate(max_objects);
    }
    ev
}

/// The classroom export for the D⁰ lifetime masterclass: candidates in
/// the D⁰ mass window are emitted with `aux = 1000 + t[ps]` (the encoding
/// [`crate::masterclass::D0LifetimeExercise`] documents in its
/// instructions), everything else is dropped.
pub fn convert_aod_for_d0_class(aod: &AodEvent, experiment: &str) -> SimplifiedEvent {
    let mut ev = SimplifiedEvent {
        run: aod.header.run.0,
        event: aod.header.event.0,
        experiment: experiment.to_string(),
        met: aod.met.value(),
        objects: Vec::new(),
    };
    for c in &aod.candidates {
        if (c.mass_kpi - 1.865).abs() < 0.1 {
            ev.objects.push(SimpleParticle {
                kind: SimpleKind::V0,
                pt: c.pt,
                eta: c.eta,
                phi: 0.0,
                charge: 0,
                aux: 1000.0 + c.proper_time_d0_ns * 1.0e3,
            });
        }
    }
    ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use daspos_hep::{EventHeader, FourVector};
    use daspos_reco::objects::{Electron, Jet, Met, Muon, TwoProngCandidate};

    fn aod() -> AodEvent {
        let mut ev = AodEvent::new(EventHeader::new(3, 1, 77));
        ev.electrons.push(Electron {
            momentum: FourVector::from_pt_eta_phi_m(30.0, 0.5, 1.0, 0.0),
            charge: -1,
            e_over_p: 1.0,
            isolation: 0.0,
        });
        ev.muons.push(Muon {
            momentum: FourVector::from_pt_eta_phi_m(25.0, -0.5, -1.0, 0.105),
            charge: 1,
            n_stations: 3,
            isolation: 0.0,
        });
        for i in 0..5 {
            ev.jets.push(Jet {
                momentum: FourVector::from_pt_eta_phi_m(40.0 + f64::from(i), 0.0, 0.3, 5.0),
                n_constituents: 3,
                em_fraction: 0.3,
            });
        }
        ev.candidates.push(TwoProngCandidate {
            vertex: FourVector::new(5.0, 0.0, 0.0, 0.0),
            flight_xy: 5.0,
            pt: 2.0,
            eta: 0.2,
            mass_pipi: 0.496,
            mass_ppi: 1.2,
            mass_kpi: 1.7,
            proper_time_d0_ns: 1e-4,
            track_indices: (0, 1),
        });
        ev.met = Met { mex: 6.0, mey: 8.0 };
        ev.n_tracks = 9;
        ev
    }

    #[test]
    fn conversion_keeps_all_object_classes() {
        let ev = convert_aod(&aod(), "atlas", 0);
        assert_eq!(ev.run, 3);
        assert_eq!(ev.event, 77);
        assert_eq!(ev.experiment, "atlas");
        assert!((ev.met - 10.0).abs() < 1e-9);
        assert_eq!(ev.of_kind(SimpleKind::Electron).count(), 1);
        assert_eq!(ev.of_kind(SimpleKind::Muon).count(), 1);
        assert_eq!(ev.of_kind(SimpleKind::Jet).count(), 5);
        assert_eq!(ev.of_kind(SimpleKind::V0).count(), 1);
        let v0 = ev.of_kind(SimpleKind::V0).next().unwrap();
        assert!((v0.aux - 0.496).abs() < 1e-9);
    }

    #[test]
    fn object_cap_keeps_hardest() {
        let ev = convert_aod(&aod(), "cms", 3);
        assert_eq!(ev.objects.len(), 3);
        // The 44-GeV jet must have survived.
        assert!(ev.objects.iter().any(|o| (o.pt - 44.0).abs() < 1e-9));
        // The 2-GeV V0 must not have.
        assert_eq!(ev.of_kind(SimpleKind::V0).count(), 0);
    }

    #[test]
    fn converted_event_survives_every_format() {
        use crate::formats::OutreachFormat;
        let ev = convert_aod(&aod(), "lhcb", 0);
        for fmt in [
            OutreachFormat::IgJson,
            OutreachFormat::EventXml,
            OutreachFormat::Compact,
        ] {
            let back = fmt.read(&fmt.write(&ev)).unwrap();
            assert_eq!(back.objects.len(), ev.objects.len());
        }
    }
}
