//! Display geometry descriptions.
//!
//! Table 1's "format of Geometry description" row: each experiment ships
//! its detector geometry for the event display in its own format. One
//! in-memory model, rendered to XML-ish or JSON.

use daspos_detsim::config::DetectorConfig;

use crate::json::Value;

/// One cylindrical detector volume (barrel layer, calorimeter shell…).
#[derive(Debug, Clone, PartialEq)]
pub struct Volume {
    /// Volume name (e.g. `"tracker-layer-3"`).
    pub name: String,
    /// Inner radius (mm).
    pub r_mm: f64,
    /// Half-length along the beam (mm).
    pub z_mm: f64,
    /// Subsystem: `"tracker"`, `"calo"`, `"muon"`.
    pub subsystem: String,
}

/// A complete display geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryDescription {
    /// The experiment described.
    pub experiment: String,
    /// Solenoid field (T) — displays need it to draw curvature.
    pub field_tesla: f64,
    /// The volumes, inner to outer.
    pub volumes: Vec<Volume>,
}

impl GeometryDescription {
    /// Derive the display geometry from a detector configuration.
    pub fn from_detector(config: &DetectorConfig) -> GeometryDescription {
        let mut volumes = Vec::new();
        for (i, &r) in config.tracker.layer_radii_mm.iter().enumerate() {
            volumes.push(Volume {
                name: format!("tracker-layer-{i}"),
                r_mm: r,
                z_mm: r * config.tracker.eta_max.abs().max(1.0).sinh().min(6.0),
                subsystem: "tracker".to_string(),
            });
        }
        let calo_r = config
            .tracker
            .layer_radii_mm
            .last()
            .copied()
            .unwrap_or(1000.0)
            * 1.5;
        volumes.push(Volume {
            name: "calorimeter".to_string(),
            r_mm: calo_r,
            z_mm: calo_r * 3.0,
            subsystem: "calo".to_string(),
        });
        if config.muon.is_some() {
            volumes.push(Volume {
                name: "muon-system".to_string(),
                r_mm: calo_r * 2.0,
                z_mm: calo_r * 5.0,
                subsystem: "muon".to_string(),
            });
        }
        GeometryDescription {
            experiment: config.experiment.name().to_string(),
            field_tesla: config.field_tesla,
            volumes,
        }
    }

    /// Render as XML-ish text (the ATLAS/LHCb-style carrier).
    pub fn to_xml(&self) -> String {
        let mut out = format!(
            "<geometry experiment=\"{}\" field=\"{}\">\n",
            self.experiment, self.field_tesla
        );
        for v in &self.volumes {
            out.push_str(&format!(
                "  <volume name=\"{}\" r=\"{}\" z=\"{}\" subsystem=\"{}\"/>\n",
                v.name, v.r_mm, v.z_mm, v.subsystem
            ));
        }
        out.push_str("</geometry>\n");
        out
    }

    /// Render as JSON (the CMS-style carrier).
    pub fn to_json(&self) -> String {
        let volumes: Vec<Value> = self
            .volumes
            .iter()
            .map(|v| {
                Value::object(vec![
                    ("name", Value::String(v.name.clone())),
                    ("r", Value::Number(v.r_mm)),
                    ("z", Value::Number(v.z_mm)),
                    ("subsystem", Value::String(v.subsystem.clone())),
                ])
            })
            .collect();
        Value::object(vec![
            ("experiment", Value::String(self.experiment.clone())),
            ("field", Value::Number(self.field_tesla)),
            ("volumes", Value::Array(volumes)),
        ])
        .to_json()
    }

    /// Outer radius of the whole detector (display framing).
    pub fn outer_radius(&self) -> f64 {
        self.volumes.iter().map(|v| v.r_mm).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daspos_detsim::config::Experiment;

    #[test]
    fn geometry_reflects_detector() {
        let geo = GeometryDescription::from_detector(&Experiment::Cms.detector());
        assert_eq!(geo.experiment, "cms");
        assert!(geo.field_tesla > 3.0);
        assert!(geo.volumes.iter().any(|v| v.subsystem == "muon"));
        assert!(geo.outer_radius() > 1000.0);
    }

    #[test]
    fn alice_has_no_muon_volume() {
        let geo = GeometryDescription::from_detector(&Experiment::Alice.detector());
        assert!(!geo.volumes.iter().any(|v| v.subsystem == "muon"));
    }

    #[test]
    fn xml_and_json_render() {
        let geo = GeometryDescription::from_detector(&Experiment::Atlas.detector());
        let xml = geo.to_xml();
        assert!(xml.contains("<geometry experiment=\"atlas\""));
        assert!(xml.contains("tracker-layer-0"));
        let json = geo.to_json();
        let parsed = crate::json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("experiment").and_then(crate::json::Value::as_str),
            Some("atlas")
        );
        assert!(
            parsed
                .get("volumes")
                .and_then(crate::json::Value::as_array)
                .map(<[crate::json::Value]>::len)
                .unwrap_or(0)
                > 5
        );
    }

    #[test]
    fn volumes_ordered_inner_to_outer_within_tracker() {
        let geo = GeometryDescription::from_detector(&Experiment::Lhcb.detector());
        let radii: Vec<f64> = geo
            .volumes
            .iter()
            .filter(|v| v.subsystem == "tracker")
            .map(|v| v.r_mm)
            .collect();
        assert!(radii.windows(2).all(|w| w[0] < w[1]));
    }
}
