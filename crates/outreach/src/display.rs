//! The common event display: simplified events rendered to SVG.
//!
//! The report suggests *"a more general outreach architecture, perhaps
//! based on a common format, common event display, and a 'converter'"*.
//! This module is that common display: it consumes the simplified format
//! (whatever carrier it arrived in) plus a geometry description and emits
//! a transverse-view SVG — viewable in any browser, no ROOT required
//! (Table 1: "Root too heavy for classroom use").

use crate::formats::{SimpleKind, SimplifiedEvent};
use crate::geometry::GeometryDescription;

/// Colours per object class.
fn color_of(kind: SimpleKind) -> &'static str {
    match kind {
        SimpleKind::Track => "#888888",
        SimpleKind::Electron => "#1f77b4",
        SimpleKind::Muon => "#d62728",
        SimpleKind::Photon => "#ff7f0e",
        SimpleKind::Jet => "#2ca02c",
        SimpleKind::V0 => "#9467bd",
    }
}

/// Render the transverse (x–y) view of an event as an SVG document.
pub fn render_svg(event: &SimplifiedEvent, geometry: &GeometryDescription, size_px: u32) -> String {
    let half = f64::from(size_px) / 2.0;
    let r_max = geometry.outer_radius().max(1.0);
    let scale = (half * 0.9) / r_max;
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size_px}\" height=\"{size_px}\" viewBox=\"0 0 {size_px} {size_px}\">\n"
    );
    svg.push_str(&format!(
        "<rect width=\"{size_px}\" height=\"{size_px}\" fill=\"#0b0b14\"/>\n"
    ));
    // Detector volumes as circles.
    for v in &geometry.volumes {
        svg.push_str(&format!(
            "<circle cx=\"{half}\" cy=\"{half}\" r=\"{:.1}\" fill=\"none\" stroke=\"#333355\" stroke-width=\"1\"><title>{}</title></circle>\n",
            v.r_mm * scale,
            v.name
        ));
    }
    // Objects as rays from the centre; length encodes log(pT).
    for o in &event.objects {
        let len = (1.0 + o.pt).ln() / (1.0 + 200.0f64).ln();
        let r = half * 0.9 * len.clamp(0.05, 1.0);
        let x2 = half + r * o.phi.cos();
        let y2 = half - r * o.phi.sin();
        let width = if o.kind == SimpleKind::Jet { 6 } else { 2 };
        svg.push_str(&format!(
            "<line x1=\"{half}\" y1=\"{half}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" stroke=\"{}\" stroke-width=\"{width}\"><title>{} pt={:.1} GeV</title></line>\n",
            color_of(o.kind),
            o.kind.name(),
            o.pt
        ));
    }
    // MET as a dashed ray (direction unknown in the simplified format, so
    // drawn as a magnitude badge).
    svg.push_str(&format!(
        "<text x=\"8\" y=\"16\" fill=\"#cccccc\" font-size=\"12\">{} run {} event {} | MET {:.1} GeV</text>\n",
        event.experiment, event.run, event.event, event.met
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formats::SimpleParticle;
    use daspos_detsim::config::Experiment;

    fn event() -> SimplifiedEvent {
        SimplifiedEvent {
            run: 1,
            event: 2,
            experiment: "atlas".to_string(),
            met: 12.0,
            objects: vec![
                SimpleParticle {
                    kind: SimpleKind::Muon,
                    pt: 40.0,
                    eta: 0.0,
                    phi: 1.0,
                    charge: 1,
                    aux: 0.0,
                },
                SimpleParticle {
                    kind: SimpleKind::Jet,
                    pt: 80.0,
                    eta: 0.0,
                    phi: -2.0,
                    charge: 0,
                    aux: 0.0,
                },
            ],
        }
    }

    #[test]
    fn svg_is_wellformed_and_complete() {
        let geo = GeometryDescription::from_detector(&Experiment::Atlas.detector());
        let svg = render_svg(&event(), &geo, 600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One circle per volume.
        assert_eq!(
            svg.matches("<circle").count(),
            geo.volumes.len()
        );
        // One line per object.
        assert_eq!(svg.matches("<line").count(), 2);
        assert!(svg.contains("muon"));
        assert!(svg.contains("jet"));
        assert!(svg.contains("MET 12.0"));
    }

    #[test]
    fn same_display_serves_all_experiments() {
        // The common-platform claim: one renderer, four geometries.
        let ev = event();
        for exp in Experiment::all() {
            let geo = GeometryDescription::from_detector(&exp.detector());
            let svg = render_svg(&ev, &geo, 400);
            assert!(svg.contains("</svg>"), "{} display failed", exp.name());
        }
    }

    #[test]
    fn empty_event_still_renders() {
        let geo = GeometryDescription::from_detector(&Experiment::Cms.detector());
        let ev = SimplifiedEvent {
            experiment: "cms".to_string(),
            ..SimplifiedEvent::default()
        };
        let svg = render_svg(&ev, &geo, 400);
        assert!(svg.contains("</svg>"));
        assert_eq!(svg.matches("<line").count(), 0);
    }
}
