//! A minimal JSON implementation — the carrier of the ig-like format.
//!
//! Written from scratch (no serde) per the project's dependency policy:
//! the outreach formats are bespoke, exactly as the report found them in
//! the wild. Supports the full JSON value model minus `\u` escapes beyond
//! BMP pass-through; numbers are `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Build an object from pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    // Integers render without a fraction for readability.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::String(s) => write_string(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            reason: reason.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .map(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(&format!("unexpected character '{}'", c as char)),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError {
                offset: start,
                reason: "invalid utf-8 in number".to_string(),
            })?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError {
                offset: start,
                reason: format!("bad number '{text}'"),
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(JsonError {
                                    offset: self.pos,
                                    reason: "truncated \\u escape".to_string(),
                                })?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| JsonError {
                                    offset: self.pos,
                                    reason: "bad \\u escape".to_string(),
                                })?,
                                16,
                            )
                            .map_err(|_| JsonError {
                                offset: self.pos,
                                reason: "bad \\u escape".to_string(),
                            })?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonError {
                            offset: self.pos,
                            reason: "invalid utf-8".to_string(),
                        }
                    })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "3.25e2", "\"hi\""] {
            let v = parse(text).unwrap();
            let again = parse(&v.to_json()).unwrap();
            assert_eq!(v, again, "round trip of {text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"tracks":[{"pt":12.5,"eta":-1.2},{"pt":3,"eta":0}],"met":7.25,"name":"ev\"1\"","tags":[],"extra":null}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("met").and_then(Value::as_f64), Some(7.25));
        assert_eq!(
            v.get("tracks").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("line1\nline2\t\"q\"\\".to_string());
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse(r#""Apäσ""#).unwrap();
        assert_eq!(v.as_str(), Some("Apäσ"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1,]",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(2));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }
}
