//! # daspos-outreach — Level-2 data, displays and masterclasses
//!
//! Implements the report's §2.1 landscape: each experiment publishes
//! simplified ("Level 2") event data in its own format, with its own
//! event display and masterclass exercises — the multiplicity Table 1
//! catalogues — plus the report's proposed common ground: *"a thin layer
//! of software will convert data in a relatively low-level format (called
//! AOD …) into a simplified representation that can be used for further
//! analysis or visualization"* (the Finland converter).
//!
//! * [`json`] — a minimal from-scratch JSON implementation (the `ig`
//!   format carrier),
//! * [`formats`] — the simplified event model and its three carriers:
//!   ig-JSON (CMS-like, self-documenting), event-XML (ATLAS Jive-like),
//!   and a compact binary-ish text (ALICE/LHCb-like, not
//!   self-documenting),
//! * [`geometry`] — per-experiment display geometry descriptions,
//! * [`convert`] — the thin AOD → simplified converter, common to all
//!   four experiments (experiment O1),
//! * [`display`] — an SVG event display over the common scene model,
//! * [`masterclass`] — the Table 1 exercises: W/Z/H counting, the D⁰
//!   lifetime fit, and the V⁰ finder,
//! * [`experiments`] — the Table 1 feature matrix itself, generated from
//!   the per-experiment outreach stacks.

pub mod convert;
pub mod display;
pub mod experiments;
pub mod formats;
pub mod geometry;
pub mod json;
pub mod masterclass;

pub use convert::convert_aod;
pub use experiments::{table1, OutreachStack};
pub use formats::{OutreachFormat, SimplifiedEvent, SimpleParticle};
