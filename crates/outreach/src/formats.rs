//! The simplified Level-2 event model and its format carriers.
//!
//! One in-memory model, three wire formats — reproducing the Table 1
//! situation where each experiment ships a different serialization of
//! essentially the same physics:
//!
//! * **ig-JSON** (CMS-like): JSON with a self-description block,
//! * **event-XML** (ATLAS Jive-like): XML-ish tags, self-documenting by
//!   element names,
//! * **compact** (ALICE/LHCb-like): terse positional text, *not*
//!   self-documenting — you need the experiment's codebook.

use crate::json::{parse, Value};

/// A simplified physics object for outreach use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleParticle {
    /// Object class: `"track"`, `"electron"`, `"muon"`, `"photon"`,
    /// `"jet"`, `"v0"` encoded as a code for compactness.
    pub kind: SimpleKind,
    /// Transverse momentum (GeV).
    pub pt: f64,
    /// Pseudorapidity.
    pub eta: f64,
    /// Azimuth.
    pub phi: f64,
    /// Charge (−1, 0, +1).
    pub charge: i8,
    /// Auxiliary quantity: mass for `v0`, energy for clusters, 0 else.
    pub aux: f64,
}

/// Simplified object classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimpleKind {
    /// A charged track.
    Track,
    /// An electron candidate.
    Electron,
    /// A muon candidate.
    Muon,
    /// A photon candidate.
    Photon,
    /// A jet.
    Jet,
    /// A displaced two-prong (V⁰/D⁰) candidate.
    V0,
}

impl SimpleKind {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            SimpleKind::Track => "track",
            SimpleKind::Electron => "electron",
            SimpleKind::Muon => "muon",
            SimpleKind::Photon => "photon",
            SimpleKind::Jet => "jet",
            SimpleKind::V0 => "v0",
        }
    }

    /// Inverse of [`SimpleKind::name`].
    pub fn parse(s: &str) -> Option<SimpleKind> {
        Some(match s {
            "track" => SimpleKind::Track,
            "electron" => SimpleKind::Electron,
            "muon" => SimpleKind::Muon,
            "photon" => SimpleKind::Photon,
            "jet" => SimpleKind::Jet,
            "v0" => SimpleKind::V0,
            _ => return None,
        })
    }

    /// All kinds.
    pub fn all() -> [SimpleKind; 6] {
        [
            SimpleKind::Track,
            SimpleKind::Electron,
            SimpleKind::Muon,
            SimpleKind::Photon,
            SimpleKind::Jet,
            SimpleKind::V0,
        ]
    }
}

/// The simplified event.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimplifiedEvent {
    /// Run number.
    pub run: u32,
    /// Event number.
    pub event: u64,
    /// The experiment the event came from.
    pub experiment: String,
    /// The objects.
    pub objects: Vec<SimpleParticle>,
    /// Missing transverse energy.
    pub met: f64,
}

impl SimplifiedEvent {
    /// Objects of one kind.
    pub fn of_kind(&self, kind: SimpleKind) -> impl Iterator<Item = &SimpleParticle> {
        self.objects.iter().filter(move |o| o.kind == kind)
    }
}

/// The three outreach wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutreachFormat {
    /// CMS-like ig JSON — self-documenting.
    IgJson,
    /// ATLAS-like event XML — self-documenting.
    EventXml,
    /// ALICE/LHCb-like compact positional text — requires a codebook.
    Compact,
}

impl OutreachFormat {
    /// Whether the format can be understood without external
    /// documentation — the Table 1 "self-documenting?" row.
    pub fn self_documenting(&self) -> bool {
        matches!(self, OutreachFormat::IgJson | OutreachFormat::EventXml)
    }

    /// Display name matching Table 1's vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            OutreachFormat::IgJson => "ig",
            OutreachFormat::EventXml => "event-xml",
            OutreachFormat::Compact => "compact",
        }
    }

    /// Serialize a simplified event.
    pub fn write(&self, ev: &SimplifiedEvent) -> String {
        match self {
            OutreachFormat::IgJson => write_ig(ev),
            OutreachFormat::EventXml => write_xml(ev),
            OutreachFormat::Compact => write_compact(ev),
        }
    }

    /// Parse a simplified event.
    pub fn read(&self, text: &str) -> Result<SimplifiedEvent, String> {
        match self {
            OutreachFormat::IgJson => read_ig(text),
            OutreachFormat::EventXml => read_xml(text),
            OutreachFormat::Compact => read_compact(text),
        }
    }
}

// --- ig JSON -----------------------------------------------------------------

fn write_ig(ev: &SimplifiedEvent) -> String {
    let objects: Vec<Value> = ev
        .objects
        .iter()
        .map(|o| {
            Value::object(vec![
                ("kind", Value::String(o.kind.name().to_string())),
                ("pt", Value::Number(o.pt)),
                ("eta", Value::Number(o.eta)),
                ("phi", Value::Number(o.phi)),
                ("charge", Value::Number(f64::from(o.charge))),
                ("aux", Value::Number(o.aux)),
            ])
        })
        .collect();
    Value::object(vec![
        (
            "_description",
            Value::String(
                "ig event: objects carry kind/pt[GeV]/eta/phi/charge/aux; met in GeV".to_string(),
            ),
        ),
        ("run", Value::Number(f64::from(ev.run))),
        ("event", Value::Number(ev.event as f64)),
        ("experiment", Value::String(ev.experiment.clone())),
        ("met", Value::Number(ev.met)),
        ("objects", Value::Array(objects)),
    ])
    .to_json()
}

fn read_ig(text: &str) -> Result<SimplifiedEvent, String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    let num = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing number '{key}'"))
    };
    let mut ev = SimplifiedEvent {
        run: num("run")? as u32,
        event: num("event")? as u64,
        experiment: v
            .get("experiment")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
        met: num("met")?,
        objects: Vec::new(),
    };
    for obj in v
        .get("objects")
        .and_then(Value::as_array)
        .ok_or("missing objects array")?
    {
        let kind = obj
            .get("kind")
            .and_then(Value::as_str)
            .and_then(SimpleKind::parse)
            .ok_or("bad object kind")?;
        let f = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing object field '{key}'"))
        };
        ev.objects.push(SimpleParticle {
            kind,
            pt: f("pt")?,
            eta: f("eta")?,
            phi: f("phi")?,
            charge: f("charge")? as i8,
            aux: f("aux")?,
        });
    }
    Ok(ev)
}

// --- event XML ---------------------------------------------------------------

fn write_xml(ev: &SimplifiedEvent) -> String {
    let mut out = format!(
        "<event run=\"{}\" number=\"{}\" experiment=\"{}\" met=\"{}\">\n",
        ev.run, ev.event, ev.experiment, ev.met
    );
    for o in &ev.objects {
        out.push_str(&format!(
            "  <{} pt=\"{}\" eta=\"{}\" phi=\"{}\" charge=\"{}\" aux=\"{}\"/>\n",
            o.kind.name(),
            o.pt,
            o.eta,
            o.phi,
            o.charge,
            o.aux
        ));
    }
    out.push_str("</event>\n");
    out
}

fn attr(tag: &str, name: &str) -> Result<String, String> {
    let pattern = format!("{name}=\"");
    let start = tag
        .find(&pattern)
        .ok_or_else(|| format!("missing attribute '{name}'"))?
        + pattern.len();
    let end = tag[start..]
        .find('"')
        .ok_or_else(|| format!("unterminated attribute '{name}'"))?;
    Ok(tag[start..start + end].to_string())
}

fn attr_f64(tag: &str, name: &str) -> Result<f64, String> {
    attr(tag, name)?
        .parse()
        .map_err(|_| format!("non-numeric attribute '{name}'"))
}

fn read_xml(text: &str) -> Result<SimplifiedEvent, String> {
    let mut lines = text.lines();
    let head = lines.next().ok_or("empty xml")?;
    if !head.trim_start().starts_with("<event") {
        return Err("missing <event> root".to_string());
    }
    let mut ev = SimplifiedEvent {
        run: attr_f64(head, "run")? as u32,
        event: attr_f64(head, "number")? as u64,
        experiment: attr(head, "experiment")?,
        met: attr_f64(head, "met")?,
        objects: Vec::new(),
    };
    for line in lines {
        let line = line.trim();
        if line == "</event>" || line.is_empty() {
            continue;
        }
        let tag_name = line
            .strip_prefix('<')
            .and_then(|s| s.split([' ', '/']).next())
            .ok_or("malformed element")?;
        let kind = SimpleKind::parse(tag_name).ok_or_else(|| format!("unknown element '{tag_name}'"))?;
        ev.objects.push(SimpleParticle {
            kind,
            pt: attr_f64(line, "pt")?,
            eta: attr_f64(line, "eta")?,
            phi: attr_f64(line, "phi")?,
            charge: attr_f64(line, "charge")? as i8,
            aux: attr_f64(line, "aux")?,
        });
    }
    Ok(ev)
}

// --- compact -----------------------------------------------------------------

fn write_compact(ev: &SimplifiedEvent) -> String {
    // Positional: header line, then one line per object with a numeric
    // kind code. Unreadable without the codebook — deliberately.
    let mut out = format!("E {} {} {} {}\n", ev.run, ev.event, ev.experiment, ev.met);
    for o in &ev.objects {
        let code = SimpleKind::all()
            .iter()
            .position(|k| *k == o.kind)
            .expect("kind in table");
        out.push_str(&format!(
            "O {code} {} {} {} {} {}\n",
            o.pt, o.eta, o.phi, o.charge, o.aux
        ));
    }
    out
}

fn read_compact(text: &str) -> Result<SimplifiedEvent, String> {
    let mut lines = text.lines();
    let head = lines.next().ok_or("empty compact event")?;
    let parts: Vec<&str> = head.split(' ').collect();
    if parts.len() != 5 || parts[0] != "E" {
        return Err("malformed header".to_string());
    }
    let mut ev = SimplifiedEvent {
        run: parts[1].parse().map_err(|_| "bad run")?,
        event: parts[2].parse().map_err(|_| "bad event")?,
        experiment: parts[3].to_string(),
        met: parts[4].parse().map_err(|_| "bad met")?,
        objects: Vec::new(),
    };
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(' ').collect();
        if parts.len() != 7 || parts[0] != "O" {
            return Err(format!("malformed object line '{line}'"));
        }
        let code: usize = parts[1].parse().map_err(|_| "bad kind code")?;
        let kind = *SimpleKind::all()
            .get(code)
            .ok_or_else(|| format!("unknown kind code {code}"))?;
        ev.objects.push(SimpleParticle {
            kind,
            pt: parts[2].parse().map_err(|_| "bad pt")?,
            eta: parts[3].parse().map_err(|_| "bad eta")?,
            phi: parts[4].parse().map_err(|_| "bad phi")?,
            charge: parts[5].parse().map_err(|_| "bad charge")?,
            aux: parts[6].parse().map_err(|_| "bad aux")?,
        });
    }
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimplifiedEvent {
        SimplifiedEvent {
            run: 7,
            event: 12345,
            experiment: "cms".to_string(),
            met: 23.5,
            objects: vec![
                SimpleParticle {
                    kind: SimpleKind::Muon,
                    pt: 44.25,
                    eta: -1.5,
                    phi: 2.0,
                    charge: 1,
                    aux: 0.0,
                },
                SimpleParticle {
                    kind: SimpleKind::Jet,
                    pt: 120.0,
                    eta: 0.5,
                    phi: -0.75,
                    charge: 0,
                    aux: 130.0,
                },
                SimpleParticle {
                    kind: SimpleKind::V0,
                    pt: 2.5,
                    eta: 0.1,
                    phi: 1.0,
                    charge: 0,
                    aux: 0.4976,
                },
            ],
        }
    }

    #[test]
    fn all_formats_round_trip() {
        let ev = sample();
        for fmt in [
            OutreachFormat::IgJson,
            OutreachFormat::EventXml,
            OutreachFormat::Compact,
        ] {
            let text = fmt.write(&ev);
            let back = fmt
                .read(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", fmt.name()));
            assert_eq!(back, ev, "round trip via {}", fmt.name());
        }
    }

    #[test]
    fn self_documentation_flags_match_table1() {
        assert!(OutreachFormat::IgJson.self_documenting());
        assert!(OutreachFormat::EventXml.self_documenting());
        assert!(!OutreachFormat::Compact.self_documenting());
    }

    #[test]
    fn ig_contains_description_block() {
        let text = OutreachFormat::IgJson.write(&sample());
        assert!(text.contains("_description"));
        assert!(text.contains("GeV"));
    }

    #[test]
    fn formats_reject_each_other() {
        let ev = sample();
        let ig = OutreachFormat::IgJson.write(&ev);
        assert!(OutreachFormat::EventXml.read(&ig).is_err());
        assert!(OutreachFormat::Compact.read(&ig).is_err());
        let xml = OutreachFormat::EventXml.write(&ev);
        assert!(OutreachFormat::IgJson.read(&xml).is_err());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(OutreachFormat::IgJson.read("{}").is_err());
        assert!(OutreachFormat::EventXml.read("<wrong/>").is_err());
        assert!(OutreachFormat::Compact.read("E 1 2\n").is_err());
        assert!(OutreachFormat::Compact.read("E 1 2 cms 0\nO 99 1 1 1 1 1\n").is_err());
    }

    #[test]
    fn of_kind_filters() {
        let ev = sample();
        assert_eq!(ev.of_kind(SimpleKind::Muon).count(), 1);
        assert_eq!(ev.of_kind(SimpleKind::Electron).count(), 0);
    }

    #[test]
    fn compact_is_smallest_ig_is_largest() {
        let ev = sample();
        let compact = OutreachFormat::Compact.write(&ev).len();
        let xml = OutreachFormat::EventXml.write(&ev).len();
        let ig = OutreachFormat::IgJson.write(&ev).len();
        assert!(compact < xml, "compact {compact} vs xml {xml}");
        assert!(xml < ig || compact < ig, "self-documentation costs bytes");
    }
}
