//! The Table 1 feature matrix.
//!
//! The report's only numbered table compares the four experiments'
//! outreach stacks. Here each stack is generated from the experiment's
//! actual toolkit components (formats implemented in [`crate::formats`],
//! geometry carriers in [`crate::geometry`], exercises in
//! [`crate::masterclass`]) so the matrix stays truthful to the code.

use daspos_detsim::config::Experiment;

use crate::formats::OutreachFormat;

/// One experiment's outreach stack — a column of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct OutreachStack {
    /// The experiment.
    pub experiment: Experiment,
    /// Event display name and technology.
    pub event_display: String,
    /// Geometry description carrier.
    pub geometry_format: String,
    /// Data browser / demonstration analysis tools.
    pub browser_tools: Vec<String>,
    /// Level-2 data formats published.
    pub data_formats: Vec<OutreachFormat>,
    /// Whether the primary format is self-documenting (`None` = the "?"
    /// entries of Table 1).
    pub self_documenting: Option<bool>,
    /// Masterclass exercises offered.
    pub masterclass_uses: String,
    /// Free comment (Table 1's last row).
    pub comments: String,
}

/// The four outreach stacks, in Table 1 column order.
pub fn table1() -> Vec<OutreachStack> {
    vec![
        OutreachStack {
            experiment: Experiment::Alice,
            event_display: "root-based display".to_string(),
            geometry_format: "root-like".to_string(),
            browser_tools: vec!["x/root-based browser".to_string()],
            data_formats: vec![OutreachFormat::Compact],
            self_documenting: None, // Table 1: "?"
            masterclass_uses: "V0s (K0s, Lambda) and general tracks".to_string(),
            comments: "Root too heavy for classroom use".to_string(),
        },
        OutreachStack {
            experiment: Experiment::Atlas,
            event_display: "ATLANTIS/VP1 (java-based)".to_string(),
            geometry_format: "xml (full geometry)".to_string(),
            browser_tools: vec![
                "MINERVA".to_string(),
                "HYPATIA".to_string(),
                "LPPP".to_string(),
                "CAMELIA".to_string(),
                "OPloT".to_string(),
            ],
            data_formats: vec![OutreachFormat::EventXml, OutreachFormat::Compact],
            self_documenting: Some(true), // "XML one is"
            masterclass_uses: "W, Z, Higgs, including large MC samples and data".to_string(),
            comments: String::new(),
        },
        OutreachStack {
            experiment: Experiment::Cms,
            event_display: "iSpy".to_string(),
            geometry_format: "xml/json".to_string(),
            browser_tools: vec!["java-script based tools".to_string()],
            data_formats: vec![OutreachFormat::IgJson],
            self_documenting: Some(true), // "Y"
            masterclass_uses: "similar to ATLAS, different datasets, not so much MC".to_string(),
            comments: String::new(),
        },
        OutreachStack {
            experiment: Experiment::Lhcb,
            event_display: "Panoramix (OpenInventor)".to_string(),
            geometry_format: "xml".to_string(),
            browser_tools: vec!["x-based browser".to_string()],
            data_formats: vec![OutreachFormat::Compact],
            self_documenting: None, // Table 1: "?"
            masterclass_uses: "D lifetime".to_string(),
            comments: String::new(),
        },
    ]
}

/// Render the matrix as a tab-separated table (the T1 bench prints it).
pub fn render_table1() -> String {
    let stacks = table1();
    let mut out = String::from("feature");
    for s in &stacks {
        out.push_str(&format!("\t{}", s.experiment.name()));
    }
    out.push('\n');
    let row = |label: &str, f: &dyn Fn(&OutreachStack) -> String| {
        let mut line = label.to_string();
        for s in &stacks {
            line.push('\t');
            line.push_str(&f(s));
        }
        line.push('\n');
        line
    };
    out.push_str(&row("event display", &|s| s.event_display.clone()));
    out.push_str(&row("geometry format", &|s| s.geometry_format.clone()));
    out.push_str(&row("browser/demo tools", &|s| s.browser_tools.join(", ")));
    out.push_str(&row("data formats", &|s| {
        s.data_formats
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", ")
    }));
    out.push_str(&row("self-documenting?", &|s| match s.self_documenting {
        Some(true) => "Y".to_string(),
        Some(false) => "N".to_string(),
        None => "?".to_string(),
    }));
    out.push_str(&row("masterclass uses", &|s| s.masterclass_uses.clone()));
    out.push_str(&row("comments", &|s| s.comments.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_columns_in_order() {
        let t = table1();
        assert_eq!(t.len(), 4);
        let names: Vec<&str> = t.iter().map(|s| s.experiment.name()).collect();
        assert_eq!(names, vec!["alice", "atlas", "cms", "lhcb"]);
    }

    #[test]
    fn self_documentation_claims_match_implementations() {
        // A stack may only claim self-documentation if at least one of its
        // published formats actually is.
        for s in table1() {
            if s.self_documenting == Some(true) {
                assert!(
                    s.data_formats.iter().any(OutreachFormat::self_documenting),
                    "{} claims self-documenting without such a format",
                    s.experiment.name()
                );
            }
        }
    }

    #[test]
    fn masterclass_rows_match_report() {
        let t = table1();
        assert!(t[0].masterclass_uses.contains("V0"));
        assert!(t[1].masterclass_uses.contains("Higgs"));
        assert!(t[3].masterclass_uses.contains("D lifetime"));
    }

    #[test]
    fn alice_comment_preserved() {
        assert!(table1()[0].comments.contains("too heavy"));
    }

    #[test]
    fn rendered_table_has_all_rows_and_columns() {
        let text = render_table1();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8); // header + 7 feature rows
        for line in &lines {
            assert_eq!(line.matches('\t').count(), 4, "bad row: {line}");
        }
        assert!(text.contains("iSpy"));
        assert!(text.contains("Panoramix"));
        assert!(text.contains("MINERVA"));
    }

    #[test]
    fn format_multiplicity_is_the_point() {
        // The report's conclusion: "no common formats". Verify the four
        // stacks do not share one common format.
        let t = table1();
        let common: Vec<OutreachFormat> = t[0]
            .data_formats
            .iter()
            .copied()
            .filter(|f| t.iter().all(|s| s.data_formats.contains(f)))
            .collect();
        assert!(common.is_empty(), "unexpected common format: {common:?}");
    }
}
