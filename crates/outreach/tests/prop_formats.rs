//! Property tests: JSON engine and outreach format round-trips.

use daspos_outreach::formats::{OutreachFormat, SimpleKind, SimpleParticle, SimplifiedEvent};
use daspos_outreach::json::{parse, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_json(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1.0e9..1.0e9f64).prop_map(Value::Number),
        "[ -~]{0,24}".prop_map(Value::String), // printable ASCII incl. quotes/backslashes
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-zA-Z0-9_]{1,10}", inner, 0..6)
                .prop_map(|m| Value::Object(m.into_iter().collect::<BTreeMap<_, _>>())),
        ]
    })
}

fn arb_kind() -> impl Strategy<Value = SimpleKind> {
    prop_oneof![
        Just(SimpleKind::Track),
        Just(SimpleKind::Electron),
        Just(SimpleKind::Muon),
        Just(SimpleKind::Photon),
        Just(SimpleKind::Jet),
        Just(SimpleKind::V0),
    ]
}

fn arb_event() -> impl Strategy<Value = SimplifiedEvent> {
    (
        1u32..10_000,
        1u64..1_000_000,
        "[a-z]{2,8}",
        0.0..500.0f64,
        prop::collection::vec(
            (arb_kind(), 0.05..900.0f64, -5.0..5.0f64, -3.1..3.1f64, -1i8..=1, 0.0..2000.0f64),
            0..20,
        ),
    )
        .prop_map(|(run, event, experiment, met, objs)| SimplifiedEvent {
            run,
            event,
            experiment,
            met,
            objects: objs
                .into_iter()
                .map(|(kind, pt, eta, phi, charge, aux)| SimpleParticle {
                    kind,
                    pt,
                    eta,
                    phi,
                    charge,
                    aux,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn json_value_round_trip(v in arb_json(3)) {
        let text = v.to_json();
        let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_parser_never_panics_on_noise(s in "[ -~]{0,128}") {
        let _ = parse(&s);
    }

    #[test]
    fn all_outreach_formats_round_trip_arbitrary_events(ev in arb_event()) {
        for fmt in [
            OutreachFormat::IgJson,
            OutreachFormat::EventXml,
            OutreachFormat::Compact,
        ] {
            let text = fmt.write(&ev);
            let back = fmt
                .read(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", fmt.name()));
            prop_assert_eq!(&back, &ev, "via {}", fmt.name());
        }
    }

    #[test]
    fn format_readers_never_panic_on_noise(s in "[ -~\n]{0,256}") {
        for fmt in [
            OutreachFormat::IgJson,
            OutreachFormat::EventXml,
            OutreachFormat::Compact,
        ] {
            let _ = fmt.read(&s);
        }
    }
}
