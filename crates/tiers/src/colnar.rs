//! Columnar AOD tier: the "DPCF" container.
//!
//! The row codec ([`crate::codec`]) frames whole events, so *any* query
//! pays the full decode of every field it never looks at. DPCF re-lays
//! the same AOD events out as per-field columns — the ROOT-TTree-branch
//! idiom — so a skim predicate touches only the bytes it reads: a pT cut
//! over the standard ten-column schema decodes exactly the two lepton-p4
//! columns and copies survivors with plain `memcpy`, never materializing
//! an event. This is the DPHEP argument made structural: preserved data
//! must stay cheap to query even as the access software around it keeps
//! changing, so the layout itself carries the access pattern.
//!
//! ```text
//! file   := "DPCF" version:u16le tier:u8 n_rows:u32le n_cols:u8 table frames
//! table  := n_cols × (col_id:u8 offset:u32le length:u32le digest:u64le)
//! frames := column frames, concatenated in table order
//! v1 frame := raw column payload
//! v2 frame := tag:u8 body        (tag: 0 raw, 1 dict, 2 delta, 3 rle)
//! ```
//!
//! Offsets are relative to the end of the table and must tile the frames
//! region exactly — any truncation, extension or table edit is caught at
//! [`ColumnarFile::parse`] before a single column byte is read. Each
//! column is independently sealed by the `digest` in its table entry
//! (a 4-lane interleaved FNV-1a, [`fnv64_wide`]), so the verifying reader
//! detects every payload bit flip while the hot skim path may skip the
//! hash exactly as the row path trusts DPEF payloads (archive-level seals
//! cover both). The digest covers the *stored* frame bytes — tag
//! included — so an encoding-tag flip is caught like any payload flip.
//!
//! Version 2 writes each column frame with the cheapest of four
//! encodings, chosen by a per-column cost probe at encode time (the
//! probe *is* the candidate encoders; smallest output wins, ties go to
//! the lowest tag so the choice is a pure function of the raw column
//! bytes and skim output stays canonical). Version-1 files still parse
//! and decode; see DESIGN.md §14 for the per-encoding byte layouts and
//! when each wins.
//!
//! Fixed columns hold one `stride`-sized record per row; variable columns
//! hold `count:u32le` then `count × entry_size` bytes per row, walked by
//! count — there is no per-row length prefix to keep verbatim row copies
//! contiguous. Electron/muon/jet objects are split into a *p4* column
//! (the four-momentum every kinematic cut reads) and an *id* column (the
//! identification payload cuts almost never read).

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use daspos_hep::event::EventHeader;
use daspos_hep::fourvec::FourVector;
use daspos_obs::MetricsRegistry;
use daspos_reco::objects::{AodEvent, Electron, Jet, Met, Muon, Photon, TwoProngCandidate};

use crate::codec::{fnv64, CodecError, MAX_COUNT};
use crate::skim::{MassHypothesis, Selection, SkimReport, SlimSpec};
use crate::tier::DataTier;

/// Magic of the columnar container: "DASPOS Columnar File".
pub const COLUMNAR_MAGIC: &[u8; 4] = b"DPCF";

/// Current columnar format version: per-column encoded frames.
pub const COLUMNAR_VERSION: u16 = 2;

/// The original raw-frames format; still parsed and decoded.
pub const COLUMNAR_VERSION_V1: u16 = 1;

// v2 frame tags: the first byte of every column frame names the
// encoding of the remainder.
const TAG_RAW: u8 = 0;
const TAG_DICT: u8 = 1;
const TAG_DELTA: u8 = 2;
const TAG_RLE: u8 = 3;

// Counts-block modes for v2 variable columns.
const COUNTS_VARINT: u8 = 0;
const COUNTS_RLE: u8 = 1;

/// Longest run one RLE pair may cover. Caps how many output bytes a
/// single input pair can demand, so a forged tiny frame cannot request
/// an allocation out of proportion to its own size; the encoder just
/// splits longer runs into several pairs.
const MAX_RUN: u64 = 255;

/// Number of columns in the AOD schema.
pub const N_COLUMNS: usize = 10;

/// magic + version + tier + n_rows + n_cols.
const HEADER_LEN: usize = 4 + 2 + 1 + 4 + 1;

/// col_id + offset + length + digest.
const TABLE_ENTRY_LEN: usize = 1 + 4 + 4 + 8;

/// Byte offset of the frames region (end of the column table).
const FRAMES_BASE: usize = HEADER_LEN + N_COLUMNS * TABLE_ENTRY_LEN;

/// Which physical layout a tier file uses. The logical content — events,
/// skim semantics, provenance — is identical; only the byte layout and
/// therefore the access cost of partial reads differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierFormat {
    /// Row-major DPEF event frames (the default; archival baseline).
    #[default]
    Row,
    /// Column-major DPCF (predicate-pushdown skims).
    Columnar,
}

impl TierFormat {
    /// Stable name, used by the CLI switch.
    pub fn name(self) -> &'static str {
        match self {
            TierFormat::Row => "row",
            TierFormat::Columnar => "columnar",
        }
    }

    /// Inverse of [`TierFormat::name`].
    pub fn parse(s: &str) -> Option<TierFormat> {
        Some(match s {
            "row" => TierFormat::Row,
            "columnar" => TierFormat::Columnar,
            _ => return None,
        })
    }
}

/// 4-lane word-interleaved FNV-style mix — the column digest.
///
/// Plain [`fnv64`] is a strict serial dependency chain (one xor-multiply
/// per byte), which would make sealing skim output as expensive as the
/// row re-encode the columnar path exists to avoid. Each lane absorbs a
/// full little-endian u64 word per step (xor then multiply by the FNV
/// prime), and the four lanes stripe over 32-byte blocks, so the four
/// multiplies retire in parallel and the digest moves at word speed
/// instead of byte speed. A single corrupted word is always detected:
/// `lane ← (lane ⊕ w) · prime` is a bijection of `lane` for fixed `w`
/// and injective in `w` for fixed `lane`, so the damaged lane's final
/// state must differ. Trailing bytes (len % 32) feed the lanes
/// round-robin byte-wise; the lane states and the total length are
/// folded through a final plain [`fnv64`].
pub fn fnv64_wide(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut lanes = [
        OFFSET,
        OFFSET.wrapping_mul(PRIME),
        OFFSET.wrapping_mul(PRIME).wrapping_mul(PRIME),
        OFFSET
            .wrapping_mul(PRIME)
            .wrapping_mul(PRIME)
            .wrapping_mul(PRIME),
    ];
    let mut chunks = data.chunks_exact(32);
    for c in chunks.by_ref() {
        for (k, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(c[k * 8..k * 8 + 8].try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    for (i, byte) in chunks.remainder().iter().enumerate() {
        let lane = &mut lanes[i % 4];
        *lane ^= u64::from(*byte);
        *lane = lane.wrapping_mul(PRIME);
    }
    let mut tail = [0u8; 40];
    for (i, lane) in lanes.iter().enumerate() {
        tail[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
    }
    tail[32..40].copy_from_slice(&(data.len() as u64).to_le_bytes());
    fnv64(&tail)
}

/// The ten columns of the AOD schema, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ColumnId {
    /// Event coordinates: run, lumi, event (fixed 16 B/row).
    Header = 0,
    /// Electron four-momenta (32 B/entry).
    ElectronP4 = 1,
    /// Electron identification: charge, E/p, isolation (17 B/entry).
    ElectronId = 2,
    /// Muon four-momenta (32 B/entry).
    MuonP4 = 3,
    /// Muon identification: charge, stations, isolation (10 B/entry).
    MuonId = 4,
    /// Photons: four-momentum + isolation (40 B/entry).
    Photon = 5,
    /// Jet four-momenta (32 B/entry).
    JetP4 = 6,
    /// Jet identification: constituents, EM fraction (12 B/entry).
    JetId = 7,
    /// Two-prong candidates (96 B/entry).
    Candidate = 8,
    /// Event scalars: MET x/y, track multiplicity (fixed 20 B/row).
    Scalars = 9,
}

/// Physical layout of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColumnLayout {
    /// One `stride`-byte record per row.
    Fixed(usize),
    /// `count:u32` then `count × entry` bytes per row.
    Var(usize),
}

impl ColumnId {
    /// All columns in table order.
    pub const ALL: [ColumnId; N_COLUMNS] = [
        ColumnId::Header,
        ColumnId::ElectronP4,
        ColumnId::ElectronId,
        ColumnId::MuonP4,
        ColumnId::MuonId,
        ColumnId::Photon,
        ColumnId::JetP4,
        ColumnId::JetId,
        ColumnId::Candidate,
        ColumnId::Scalars,
    ];

    /// Stable short name (diagnostics, obs counters).
    pub fn name(self) -> &'static str {
        match self {
            ColumnId::Header => "header",
            ColumnId::ElectronP4 => "e-p4",
            ColumnId::ElectronId => "e-id",
            ColumnId::MuonP4 => "mu-p4",
            ColumnId::MuonId => "mu-id",
            ColumnId::Photon => "gamma",
            ColumnId::JetP4 => "jet-p4",
            ColumnId::JetId => "jet-id",
            ColumnId::Candidate => "cand",
            ColumnId::Scalars => "scalars",
        }
    }

    fn layout(self) -> ColumnLayout {
        match self {
            ColumnId::Header => ColumnLayout::Fixed(16),
            ColumnId::ElectronP4 => ColumnLayout::Var(32),
            ColumnId::ElectronId => ColumnLayout::Var(17),
            ColumnId::MuonP4 => ColumnLayout::Var(32),
            ColumnId::MuonId => ColumnLayout::Var(10),
            ColumnId::Photon => ColumnLayout::Var(40),
            ColumnId::JetP4 => ColumnLayout::Var(32),
            ColumnId::JetId => ColumnLayout::Var(12),
            ColumnId::Candidate => ColumnLayout::Var(96),
            ColumnId::Scalars => ColumnLayout::Fixed(20),
        }
    }
}

/// One validated table entry, with the offset made absolute.
#[derive(Debug, Clone, Copy)]
struct ColMeta {
    offset: usize,
    len: usize,
    digest: u64,
}

// --- Little-endian slice readers (columns are random-access, so these
// --- work on offsets rather than a consuming cursor) ------------------------

#[inline]
fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}
#[inline]
fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}
#[inline]
fn rd_f64(b: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}
#[inline]
fn rd_p4(b: &[u8], off: usize) -> FourVector {
    FourVector {
        px: rd_f64(b, off),
        py: rd_f64(b, off + 8),
        pz: rd_f64(b, off + 16),
        e: rd_f64(b, off + 24),
    }
}

/// Length laws a raw (unencoded) column payload must satisfy: fixed
/// columns are exactly `n_rows × stride`; variable columns carry at
/// least one `count:u32` per row.
fn check_raw_len(id: ColumnId, len: usize, n_rows: usize) -> Result<(), CodecError> {
    match id.layout() {
        ColumnLayout::Fixed(stride) => {
            if len != n_rows * stride {
                return Err(CodecError::Corrupt(format!(
                    "fixed column '{}' is {len} bytes for {n_rows} \
                     rows of {stride}",
                    id.name()
                )));
            }
        }
        ColumnLayout::Var(_) => {
            if len < 4 * n_rows {
                return Err(CodecError::Corrupt(format!(
                    "column '{}' is {len} bytes, too short for {n_rows} \
                     row counts",
                    id.name()
                )));
            }
        }
    }
    Ok(())
}

/// A parsed DPCF file: header and column table validated, column payloads
/// untouched. Reading is lazy — [`ColumnarFile::column`] decodes (and
/// digest-checks) exactly one column, so a query pays only for the bytes
/// it asks for.
#[derive(Debug, Clone)]
pub struct ColumnarFile {
    data: Bytes,
    version: u16,
    n_rows: usize,
    cols: [ColMeta; N_COLUMNS],
}

impl ColumnarFile {
    /// Validate the header and column table.
    ///
    /// The table must list the ten schema columns in canonical order with
    /// contiguous offsets that tile the frames region exactly; fixed
    /// columns must have length `n_rows × stride`. Any truncated,
    /// extended or table-edited file fails here, before column reads.
    pub fn parse(data: &Bytes) -> Result<ColumnarFile, CodecError> {
        let d: &[u8] = data;
        if d.len() < HEADER_LEN {
            return Err(CodecError::UnexpectedEof);
        }
        if &d[0..4] != COLUMNAR_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([d[4], d[5]]);
        if version != COLUMNAR_VERSION && version != COLUMNAR_VERSION_V1 {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: COLUMNAR_VERSION,
            });
        }
        if d[6] != DataTier::Aod.code() {
            return Err(CodecError::WrongTier {
                found: d[6],
                expected: DataTier::Aod.code(),
            });
        }
        let n_rows = rd_u32(d, 7);
        if n_rows > MAX_COUNT {
            return Err(CodecError::Corrupt(format!(
                "row count {n_rows} exceeds sanity limit"
            )));
        }
        let n_rows = n_rows as usize;
        if d[11] as usize != N_COLUMNS {
            return Err(CodecError::Corrupt(format!(
                "expected {N_COLUMNS} columns, found {}",
                d[11]
            )));
        }
        if d.len() < FRAMES_BASE {
            return Err(CodecError::UnexpectedEof);
        }
        let mut cols = [ColMeta {
            offset: 0,
            len: 0,
            digest: 0,
        }; N_COLUMNS];
        let mut expect_off = 0usize;
        for (i, id) in ColumnId::ALL.iter().enumerate() {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            if d[e] as usize != i {
                return Err(CodecError::Corrupt(format!(
                    "column table out of order: slot {i} holds id {}",
                    d[e]
                )));
            }
            let offset = rd_u32(d, e + 1) as usize;
            let len = rd_u32(d, e + 5) as usize;
            let digest = rd_u64(d, e + 9);
            if offset != expect_off {
                return Err(CodecError::Corrupt(format!(
                    "column '{}' offset {offset} breaks the frame tiling \
                     (expected {expect_off})",
                    id.name()
                )));
            }
            if version == COLUMNAR_VERSION_V1 {
                check_raw_len(*id, len, n_rows)?;
            } else if len == 0 {
                return Err(CodecError::Corrupt(format!(
                    "column '{}' has an empty v2 frame (no encoding tag)",
                    id.name()
                )));
            }
            cols[i] = ColMeta {
                offset: FRAMES_BASE + offset,
                len,
                digest,
            };
            expect_off += len;
        }
        if FRAMES_BASE + expect_off != d.len() {
            return Err(CodecError::Corrupt(format!(
                "column frames cover {expect_off} bytes but the file \
                 carries {}",
                d.len() - FRAMES_BASE
            )));
        }
        if version != COLUMNAR_VERSION_V1 {
            // The frames region is fully bounds-checked now; vet every
            // encoding tag, and hold raw frames to the v1 length laws.
            for (i, id) in ColumnId::ALL.iter().enumerate() {
                let tag = d[cols[i].offset];
                if tag > TAG_RLE {
                    return Err(CodecError::Corrupt(format!(
                        "column '{}' carries unknown encoding tag {tag}",
                        id.name()
                    )));
                }
                if tag == TAG_RAW {
                    check_raw_len(*id, cols[i].len - 1, n_rows)?;
                }
            }
        }
        Ok(ColumnarFile {
            data: data.clone(),
            version,
            n_rows,
            cols,
        })
    }

    /// Format version of the parsed file (1 or 2).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Rows (events) in the file.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Open one column with its digest verified — the archival read path.
    pub fn column(&self, id: ColumnId) -> Result<ColumnReader, CodecError> {
        self.open(id, true)
    }

    /// Open one column. `verify` checks the table digest over the stored
    /// frame before the structural walk; the hot skim path skips it,
    /// exactly as row-format DPEF payloads are trusted between archive
    /// seals. Encoded v2 frames are decoded transparently, so callers
    /// see the same reader regardless of the on-disk encoding.
    fn open(&self, id: ColumnId, verify: bool) -> Result<ColumnReader, CodecError> {
        let meta = self.cols[id as usize];
        let frame = self.data.slice(meta.offset..meta.offset + meta.len);
        if verify {
            let actual = fnv64_wide(&frame);
            if actual != meta.digest {
                return Err(CodecError::SealMismatch {
                    stored: meta.digest,
                    actual,
                });
            }
        }
        let layout = id.layout();
        if self.version == COLUMNAR_VERSION_V1 {
            return reader_from_raw(id, layout, frame, self.n_rows);
        }
        match frame[0] {
            TAG_RAW => reader_from_raw(id, layout, frame.slice(1..), self.n_rows),
            tag => decode_frame(id, layout, tag, &frame, self.n_rows),
        }
    }

    /// Open every column verified and cross-check the paired p4/id counts
    /// — the full-integrity read the verifier and faultlab lean on.
    fn open_checked(&self) -> Result<[ColumnReader; N_COLUMNS], CodecError> {
        let mut readers: [Option<ColumnReader>; N_COLUMNS] = Default::default();
        for id in ColumnId::ALL {
            readers[id as usize] = Some(self.column(id)?);
        }
        let readers = readers.map(|r| r.expect("all columns opened"));
        cross_check_counts(&readers, self.n_rows)?;
        Ok(readers)
    }

    /// Fully verify the file: every column digest, every structural walk,
    /// every cross-column count invariant.
    pub fn verify(&self) -> Result<(), CodecError> {
        self.open_checked().map(|_| ())
    }

    /// Decode every row back into AOD events — the verifying, archival
    /// inverse of [`from_rows`]. Byte-identical round trip:
    /// `AodEvent::encode_events(&file.to_rows()?)` reproduces the row
    /// file the events came from, and `from_rows(&file.to_rows()?)`
    /// reproduces this file.
    pub fn to_rows(&self) -> Result<Vec<AodEvent>, CodecError> {
        let r = self.open_checked()?;
        let mut out = Vec::with_capacity(self.n_rows);
        for row in 0..self.n_rows {
            out.push(decode_row(&r, row, &SlimSpec::keep_all()));
        }
        Ok(out)
    }

    /// Encode AOD events into a columnar file (current version, with
    /// each column frame written in its cheapest encoding).
    /// Deterministic: the same events always produce the same bytes.
    ///
    /// Panics if the row count exceeds the u32 field — truncating the
    /// count would archive a lie, same policy as the row codec.
    pub fn from_rows(events: &[AodEvent]) -> Bytes {
        let (n_rows, cols) = build_raw_columns(events);
        let mut frames: [BytesMut; N_COLUMNS] = Default::default();
        for (i, id) in ColumnId::ALL.iter().enumerate() {
            frames[i] = encode_column(*id, &cols[i], events.len());
        }
        assemble_file(COLUMNAR_VERSION, n_rows, &frames)
    }

    /// Encode AOD events as a version-1 file (raw frames throughout).
    /// Kept for backward-compat coverage and the v1-vs-v2 size
    /// comparison the bench reports; new files come from
    /// [`ColumnarFile::from_rows`].
    pub fn from_rows_v1(events: &[AodEvent]) -> Bytes {
        let (n_rows, cols) = build_raw_columns(events);
        assemble_file(COLUMNAR_VERSION_V1, n_rows, &cols)
    }
}

/// Lay `events` out as the ten raw column payloads in one pass.
fn build_raw_columns(events: &[AodEvent]) -> (u32, [BytesMut; N_COLUMNS]) {
    let n_rows = u32::try_from(events.len()).unwrap_or_else(|_| {
        panic!(
            "event count {} exceeds the u32 DPCF row field",
            events.len()
        )
    });
    let mut cols: [BytesMut; N_COLUMNS] = Default::default();
    for ev in events {
        let c = &mut cols;
        c[ColumnId::Header as usize].put_u32_le(ev.header.run.0);
        c[ColumnId::Header as usize].put_u32_le(ev.header.lumi_block.0);
        c[ColumnId::Header as usize].put_u64_le(ev.header.event.0);

        let ep4 = &mut c[ColumnId::ElectronP4 as usize];
        ep4.put_u32_le(ev.electrons.len() as u32);
        for e in &ev.electrons {
            put_p4(ep4, &e.momentum);
        }
        let eid = &mut c[ColumnId::ElectronId as usize];
        eid.put_u32_le(ev.electrons.len() as u32);
        for e in &ev.electrons {
            eid.put_i8(e.charge);
            eid.put_f64_le(e.e_over_p);
            eid.put_f64_le(e.isolation);
        }

        let mp4 = &mut c[ColumnId::MuonP4 as usize];
        mp4.put_u32_le(ev.muons.len() as u32);
        for m in &ev.muons {
            put_p4(mp4, &m.momentum);
        }
        let mid = &mut c[ColumnId::MuonId as usize];
        mid.put_u32_le(ev.muons.len() as u32);
        for m in &ev.muons {
            mid.put_i8(m.charge);
            mid.put_u8(m.n_stations);
            mid.put_f64_le(m.isolation);
        }

        let ph = &mut c[ColumnId::Photon as usize];
        ph.put_u32_le(ev.photons.len() as u32);
        for p in &ev.photons {
            put_p4(ph, &p.momentum);
            ph.put_f64_le(p.isolation);
        }

        let jp4 = &mut c[ColumnId::JetP4 as usize];
        jp4.put_u32_le(ev.jets.len() as u32);
        for j in &ev.jets {
            put_p4(jp4, &j.momentum);
        }
        let jid = &mut c[ColumnId::JetId as usize];
        jid.put_u32_le(ev.jets.len() as u32);
        for j in &ev.jets {
            jid.put_u32_le(j.n_constituents);
            jid.put_f64_le(j.em_fraction);
        }

        let cand = &mut c[ColumnId::Candidate as usize];
        cand.put_u32_le(ev.candidates.len() as u32);
        for t in &ev.candidates {
            put_p4(cand, &t.vertex);
            cand.put_f64_le(t.flight_xy);
            cand.put_f64_le(t.pt);
            cand.put_f64_le(t.eta);
            cand.put_f64_le(t.mass_pipi);
            cand.put_f64_le(t.mass_ppi);
            cand.put_f64_le(t.mass_kpi);
            cand.put_f64_le(t.proper_time_d0_ns);
            cand.put_u32_le(t.track_indices.0);
            cand.put_u32_le(t.track_indices.1);
        }

        let s = &mut c[ColumnId::Scalars as usize];
        s.put_f64_le(ev.met.mex);
        s.put_f64_le(ev.met.mey);
        s.put_u32_le(ev.n_tracks);
    }
    (n_rows, cols)
}

#[inline]
fn put_p4(buf: &mut BytesMut, v: &FourVector) {
    buf.put_f64_le(v.px);
    buf.put_f64_le(v.py);
    buf.put_f64_le(v.pz);
    buf.put_f64_le(v.e);
}

/// Stamp the header, table (with digests over the stored frames) and
/// frames into one buffer.
fn assemble_file(version: u16, n_rows: u32, cols: &[BytesMut; N_COLUMNS]) -> Bytes {
    let total: usize = cols.iter().map(|c| c.len()).sum();
    let mut buf = BytesMut::with_capacity(FRAMES_BASE + total);
    buf.put_slice(COLUMNAR_MAGIC);
    buf.put_u16_le(version);
    buf.put_u8(DataTier::Aod.code());
    buf.put_u32_le(n_rows);
    buf.put_u8(N_COLUMNS as u8);
    let mut off = 0u32;
    for (i, c) in cols.iter().enumerate() {
        let len = u32::try_from(c.len()).unwrap_or_else(|_| {
            panic!(
                "column {i} of {} bytes exceeds the u32 length field",
                c.len()
            )
        });
        buf.put_u8(i as u8);
        buf.put_u32_le(off);
        buf.put_u32_le(len);
        buf.put_u64_le(fnv64_wide(c));
        off = off
            .checked_add(len)
            .expect("columnar frames exceed the u32 offset field");
    }
    for c in cols {
        buf.put_slice(c);
    }
    buf.freeze()
}

// --- v2 per-column encodings ------------------------------------------------

/// How the delta encoding treats one record field. `U32`/`U64` store
/// the zigzag-varint of the difference to the previous record's field;
/// `F64` stores the varint of the XOR of the bit patterns (a repeated
/// value — isolation exactly 0.0, a constant run number — costs one
/// byte); `Byte` passes through verbatim.
#[derive(Debug, Clone, Copy)]
enum FieldKind {
    Byte,
    U32,
    U64,
    F64,
}

/// Widest field plan (fields per record) across the schema.
const MAX_PLAN_FIELDS: usize = 3;

/// Per-record field plan for the delta encoding, `None` for the fat
/// four-momentum-bearing columns whose float payloads rarely delta well:
/// there v2 stores the entries verbatim and compresses only the counts
/// block (still a large win — a 4-byte prefix per row shrinks to a
/// varint or a run). The plan is a static function of the column, so
/// the decoder needs no side channel.
fn delta_plan(id: ColumnId) -> Option<&'static [FieldKind]> {
    use FieldKind::{Byte, F64, U32, U64};
    Some(match id {
        ColumnId::Header => &[U32, U32, U64],
        ColumnId::Scalars => &[F64, F64, U32],
        ColumnId::ElectronId => &[Byte, F64, F64],
        ColumnId::MuonId => &[Byte, Byte, F64],
        ColumnId::JetId => &[U32, F64],
        ColumnId::ElectronP4
        | ColumnId::MuonP4
        | ColumnId::Photon
        | ColumnId::JetP4
        | ColumnId::Candidate => return None,
    })
}

/// LEB128 unsigned varint (7 bits per byte, high bit continues).
/// Staged through a stack buffer so the output lands in one
/// `put_slice` instead of up to ten capacity-checked single-byte
/// appends — varints dominate the delta streams, so this is hot.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    let mut tmp = [0u8; 10];
    let mut n = 0usize;
    while v >= 0x80 {
        tmp[n] = (v as u8) | 0x80;
        v >>= 7;
        n += 1;
    }
    tmp[n] = v as u8;
    buf.put_slice(&tmp[..=n]);
}

/// Encoded size of [`put_varint`]'s output, computed from the bit
/// width (branchless; the cost probes sum this over every field).
fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

/// Bounds-checked varint read; rejects encodings past 10 bytes or
/// overflowing 64 bits, so a corrupt stream cannot spin or wrap. When
/// at least a maximal varint's worth of bytes remains, the read runs
/// in a fixed-trip loop the optimizer can unroll, with the slice
/// bound hoisted out — XOR'd doubles routinely encode to 9–10 bytes,
/// so this path carries most of the delta decode.
fn get_varint(b: &[u8], off: &mut usize) -> Result<u64, CodecError> {
    let Some(s) = b.get(*off..) else {
        return get_varint_slow(b, off);
    };
    if s.len() < 10 {
        return get_varint_slow(b, off);
    }
    let mut v = 0u64;
    for (i, &raw) in s.iter().enumerate().take(9) {
        let byte = u64::from(raw);
        v |= (byte & 0x7f) << (7 * i as u32);
        if byte < 0x80 {
            *off += i + 1;
            return Ok(v);
        }
    }
    let last = u64::from(s[9]);
    if last > 1 {
        return Err(CodecError::Corrupt("varint overflows u64".into()));
    }
    v |= last << 63;
    *off += 10;
    Ok(v)
}

/// Buffer-tail fallback of [`get_varint`]: byte-at-a-time with a
/// bounds check per byte, reachable only within 10 bytes of the end.
fn get_varint_slow(b: &[u8], off: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = b.get(*off) else {
            return Err(CodecError::UnexpectedEof);
        };
        *off += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint runs past 10 bytes".into()));
        }
    }
}

/// Map signed deltas onto small unsigned varints (zigzag).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode the per-row entry counts of a variable column: one mode byte,
/// then either a plain varint per row or (run, count) varint pairs —
/// whichever is smaller (ties go to the varint mode).
fn encode_counts(counts: &[u32]) -> BytesMut {
    let varint_size: usize = counts.iter().map(|&c| varint_len(u64::from(c))).sum();
    let mut rle_size = 0usize;
    let mut i = 0usize;
    while i < counts.len() {
        let c = counts[i];
        let mut run = 1usize;
        while i + run < counts.len() && run < MAX_RUN as usize && counts[i + run] == c {
            run += 1;
        }
        rle_size += varint_len(run as u64) + varint_len(u64::from(c));
        i += run;
    }
    let mut block = BytesMut::with_capacity(1 + rle_size.min(varint_size));
    if rle_size < varint_size {
        block.put_u8(COUNTS_RLE);
        let mut i = 0usize;
        while i < counts.len() {
            let c = counts[i];
            let mut run = 1usize;
            while i + run < counts.len() && run < MAX_RUN as usize && counts[i + run] == c {
                run += 1;
            }
            put_varint(&mut block, run as u64);
            put_varint(&mut block, u64::from(c));
            i += run;
        }
    } else {
        block.put_u8(COUNTS_VARINT);
        for &c in counts {
            put_varint(&mut block, u64::from(c));
        }
    }
    block
}

/// Decode a v2 counts block. Every count and the running entry total
/// are capped at [`MAX_COUNT`], and the RLE mode may not overshoot the
/// row count, so a forged block cannot demand unbounded memory from the
/// readers that size buffers off these counts.
fn decode_counts(b: &[u8], off: &mut usize, n_rows: usize) -> Result<Vec<u32>, CodecError> {
    let Some(&mode) = b.get(*off) else {
        return Err(CodecError::UnexpectedEof);
    };
    *off += 1;
    let mut counts: Vec<u32> = Vec::with_capacity((n_rows + 1).min(4096));
    let mut total = 0u64;
    match mode {
        COUNTS_VARINT => {
            for _ in 0..n_rows {
                let c = get_varint(b, off)?;
                total += check_count(c, total)?;
                counts.push(c as u32);
            }
        }
        COUNTS_RLE => {
            while counts.len() < n_rows {
                let run = get_varint(b, off)?;
                if run == 0 || run > MAX_RUN {
                    return Err(CodecError::Corrupt(format!("count run {run} out of range")));
                }
                if run as usize > n_rows - counts.len() {
                    return Err(CodecError::Corrupt(
                        "count runs overshoot the row count".into(),
                    ));
                }
                let c = get_varint(b, off)?;
                for _ in 0..run {
                    total += check_count(c, total)?;
                    counts.push(c as u32);
                }
            }
        }
        _ => {
            return Err(CodecError::Corrupt(format!("unknown counts mode {mode}")));
        }
    }
    Ok(counts)
}

/// One count's sanity gate: itself and the running total stay under
/// [`MAX_COUNT`]. Returns the count for accumulation.
fn check_count(c: u64, total_so_far: u64) -> Result<u64, CodecError> {
    if c > u64::from(MAX_COUNT) || total_so_far + c > u64::from(MAX_COUNT) {
        return Err(CodecError::Corrupt(format!(
            "count {c} exceeds sanity limit"
        )));
    }
    Ok(c)
}

/// Encode `records` (concatenated `rec`-byte records) under `tag` into
/// `out` (which already carries the frame prefix). Returns false when
/// the encoding does not apply (dictionary cardinality above 256).
fn encode_records(
    tag: u8,
    records: &[u8],
    rec: usize,
    plan: &[FieldKind],
    out: &mut BytesMut,
) -> bool {
    match tag {
        TAG_DICT => {
            let n = records.len() / rec;
            let mut table: Vec<&[u8]> = Vec::new();
            let mut map: HashMap<&[u8], u8> = HashMap::new();
            let mut idx: Vec<u8> = Vec::with_capacity(n);
            for r in records.chunks_exact(rec) {
                let i = if let Some(&i) = map.get(r) {
                    i
                } else {
                    if table.len() == 256 {
                        return false;
                    }
                    let i = table.len() as u8;
                    table.push(r);
                    map.insert(r, i);
                    i
                };
                idx.push(i);
            }
            out.put_u16_le(table.len() as u16);
            for r in &table {
                out.put_slice(r);
            }
            out.put_slice(&idx);
            true
        }
        TAG_DELTA => {
            let mut prev = [0u64; MAX_PLAN_FIELDS];
            for r in records.chunks_exact(rec) {
                let mut off = 0usize;
                for (fi, kind) in plan.iter().enumerate() {
                    match kind {
                        FieldKind::Byte => {
                            out.put_u8(r[off]);
                            off += 1;
                        }
                        FieldKind::U32 => {
                            let v = u64::from(rd_u32(r, off));
                            put_varint(out, zigzag(v as i64 - prev[fi] as i64));
                            prev[fi] = v;
                            off += 4;
                        }
                        FieldKind::U64 => {
                            let v = rd_u64(r, off);
                            put_varint(out, zigzag((v as i64).wrapping_sub(prev[fi] as i64)));
                            prev[fi] = v;
                            off += 8;
                        }
                        FieldKind::F64 => {
                            let v = rd_u64(r, off);
                            put_varint(out, v ^ prev[fi]);
                            prev[fi] = v;
                            off += 8;
                        }
                    }
                }
                debug_assert_eq!(off, rec, "field plan must cover the record");
            }
            true
        }
        TAG_RLE => {
            let n = records.len() / rec;
            let mut i = 0usize;
            while i < n {
                let r = &records[i * rec..(i + 1) * rec];
                let mut run = 1usize;
                while i + run < n
                    && run < MAX_RUN as usize
                    && &records[(i + run) * rec..(i + run + 1) * rec] == r
                {
                    run += 1;
                }
                put_varint(out, run as u64);
                out.put_slice(r);
                i += run;
            }
            true
        }
        _ => unreachable!("raw is the baseline, not a candidate encoding"),
    }
}

/// Decode exactly `n_records` `rec`-byte records from `b` at `*off`
/// into `out`, under the encoding `tag` was validated to name. Corrupt
/// streams error before producing data, and the initial reserve is
/// clamped, so allocation stays proportional to the bytes the frame
/// actually carries — a forged count cannot demand memory the stream
/// never backs.
#[allow(clippy::too_many_arguments)]
fn decode_records(
    id: ColumnId,
    tag: u8,
    b: &[u8],
    off: &mut usize,
    n_records: usize,
    rec: usize,
    plan: &[FieldKind],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    out.reserve((n_records * rec).min(64 * 1024));
    match tag {
        TAG_DICT => {
            if b.len() - *off < 2 {
                return Err(CodecError::UnexpectedEof);
            }
            let n_dict = u16::from_le_bytes([b[*off], b[*off + 1]]) as usize;
            *off += 2;
            if n_dict > 256 {
                return Err(CodecError::Corrupt(format!(
                    "dictionary of {n_dict} entries exceeds the index range"
                )));
            }
            if b.len() - *off < n_dict * rec {
                return Err(CodecError::UnexpectedEof);
            }
            let table = &b[*off..*off + n_dict * rec];
            *off += n_dict * rec;
            if b.len() - *off < n_records {
                return Err(CodecError::UnexpectedEof);
            }
            for i in 0..n_records {
                let idx = b[*off + i] as usize;
                if idx >= n_dict {
                    return Err(CodecError::Corrupt(format!(
                        "dictionary index {idx} out of range in column '{}'",
                        id.name()
                    )));
                }
                out.extend_from_slice(&table[idx * rec..(idx + 1) * rec]);
            }
            *off += n_records;
        }
        TAG_DELTA => {
            let mut prev = [0u64; MAX_PLAN_FIELDS];
            for _ in 0..n_records {
                for (fi, kind) in plan.iter().enumerate() {
                    match kind {
                        FieldKind::Byte => {
                            let Some(&v) = b.get(*off) else {
                                return Err(CodecError::UnexpectedEof);
                            };
                            *off += 1;
                            out.push(v);
                        }
                        FieldKind::U32 => {
                            let d = get_varint(b, off)?;
                            let v = (prev[fi] as i64)
                                .checked_add(unzigzag(d))
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or_else(|| {
                                    CodecError::Corrupt("u32 delta lands out of range".into())
                                })?;
                            prev[fi] = u64::from(v);
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                        FieldKind::U64 => {
                            let d = get_varint(b, off)?;
                            let v = prev[fi].wrapping_add(unzigzag(d) as u64);
                            prev[fi] = v;
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                        FieldKind::F64 => {
                            let d = get_varint(b, off)?;
                            let v = prev[fi] ^ d;
                            prev[fi] = v;
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                }
            }
        }
        TAG_RLE => {
            let mut produced = 0usize;
            while produced < n_records {
                let run = get_varint(b, off)?;
                if run == 0 || run > MAX_RUN {
                    return Err(CodecError::Corrupt(format!("rle run {run} out of range")));
                }
                let run = run as usize;
                if run > n_records - produced {
                    return Err(CodecError::Corrupt(
                        "rle runs overshoot the record count".into(),
                    ));
                }
                if b.len() - *off < rec {
                    return Err(CodecError::UnexpectedEof);
                }
                let r = &b[*off..*off + rec];
                *off += rec;
                for _ in 0..run {
                    out.extend_from_slice(r);
                }
                produced += run;
            }
        }
        _ => {
            return Err(CodecError::Corrupt(format!(
                "column '{}' does not support encoding tag {tag}",
                id.name()
            )));
        }
    }
    Ok(())
}

/// FNV-1a over one record's bytes, for the dictionary cost probe.
fn hash_record(r: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in r {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Exact body size the dictionary encoder would emit for `records`,
/// or `None` when the cardinality exceeds the 256-entry index range —
/// the probe bails exactly where [`encode_records`] would. Distinct
/// records are tracked in a small open-addressed table (FNV hash,
/// linear probing, byte-compare on hit) so the common high-cardinality
/// columns bail after a few hundred cheap inserts.
fn dict_probe(records: &[u8], rec: usize) -> Option<usize> {
    const SLOTS: usize = 1024; // 4x the 256-entry cap keeps probe chains short
    let n = records.len() / rec;
    let mut slots = [0u32; SLOTS]; // record index + 1; 0 marks empty
    let mut distinct = 0usize;
    for (i, r) in records.chunks_exact(rec).enumerate() {
        let mut s = (hash_record(r) as usize) & (SLOTS - 1);
        loop {
            let j = slots[s] as usize;
            if j == 0 {
                if distinct == 256 {
                    return None;
                }
                slots[s] = i as u32 + 1;
                distinct += 1;
                break;
            }
            if &records[(j - 1) * rec..j * rec] == r {
                break;
            }
            s = (s + 1) & (SLOTS - 1);
        }
    }
    Some(2 + distinct * rec + n)
}

/// Exact body size the delta encoder would emit for `records`: the
/// same field walk as [`encode_records`], summing [`varint_len`]
/// instead of writing.
fn delta_probe(records: &[u8], rec: usize, plan: &[FieldKind]) -> usize {
    let mut prev = [0u64; MAX_PLAN_FIELDS];
    let mut size = 0usize;
    for r in records.chunks_exact(rec) {
        let mut off = 0usize;
        for (fi, kind) in plan.iter().enumerate() {
            match kind {
                FieldKind::Byte => {
                    size += 1;
                    off += 1;
                }
                FieldKind::U32 => {
                    let v = u64::from(rd_u32(r, off));
                    size += varint_len(zigzag(v as i64 - prev[fi] as i64));
                    prev[fi] = v;
                    off += 4;
                }
                FieldKind::U64 => {
                    let v = rd_u64(r, off);
                    size += varint_len(zigzag((v as i64).wrapping_sub(prev[fi] as i64)));
                    prev[fi] = v;
                    off += 8;
                }
                FieldKind::F64 => {
                    let v = rd_u64(r, off);
                    size += varint_len(v ^ prev[fi]);
                    prev[fi] = v;
                    off += 8;
                }
            }
        }
    }
    size
}

/// Exact body size the RLE encoder would emit for `records`.
fn rle_probe(records: &[u8], rec: usize) -> usize {
    let n = records.len() / rec;
    let mut size = 0usize;
    let mut i = 0usize;
    while i < n {
        let r = &records[i * rec..(i + 1) * rec];
        let mut run = 1usize;
        while i + run < n
            && run < MAX_RUN as usize
            && &records[(i + run) * rec..(i + run + 1) * rec] == r
        {
            run += 1;
        }
        size += varint_len(run as u64) + rec;
        i += run;
    }
    size
}

/// Probe all candidate encodings for `records` and return the winning
/// tag plus its frame size, starting from a raw frame of
/// `raw_frame_len` bytes. `prefix` is whatever the non-raw frames
/// carry between the tag and the record stream (the counts block for
/// variable columns, zero for fixed ones). Candidates are compared in
/// tag order with strict `<`, so ties resolve exactly as the old
/// encode-everything probe did: raw first, then the lowest tag.
fn pick_encoding(
    records: &[u8],
    rec: usize,
    plan: &[FieldKind],
    prefix: usize,
    raw_frame_len: usize,
) -> (u8, usize) {
    let mut best_tag = TAG_RAW;
    let mut best = raw_frame_len;
    if let Some(body) = dict_probe(records, rec) {
        let cand = 1 + prefix + body;
        if cand < best {
            best_tag = TAG_DICT;
            best = cand;
        }
    }
    let cand = 1 + prefix + delta_probe(records, rec, plan);
    if cand < best {
        best_tag = TAG_DELTA;
        best = cand;
    }
    let cand = 1 + prefix + rle_probe(records, rec);
    if cand < best {
        best_tag = TAG_RLE;
        best = cand;
    }
    (best_tag, best)
}

/// Build the raw (tag 0) frame for a column payload.
fn raw_frame(raw: &[u8]) -> BytesMut {
    let mut frame = BytesMut::with_capacity(raw.len() + 1);
    frame.put_u8(TAG_RAW);
    frame.put_slice(raw);
    frame
}

/// Encode one raw column payload into its cheapest v2 frame
/// (tag-prefixed). The cost probe computes each candidate's exact
/// output size in one arithmetic pass ([`dict_probe`], [`delta_probe`],
/// [`rle_probe`]) and only the winner is actually encoded — the sizes
/// are exact, so the output is byte-identical to encoding every
/// candidate and keeping the smallest, at a fraction of the cost. Ties
/// go to the lowest tag (raw first). A pure function of
/// (column, raw bytes, row count) — so re-encoding the rows a skim
/// keeps equals encoding the same events from scratch, and skim output
/// stays canonical.
fn encode_column(id: ColumnId, raw: &[u8], n_rows: usize) -> BytesMut {
    match id.layout() {
        ColumnLayout::Fixed(stride) => {
            let plan = delta_plan(id).expect("fixed columns carry a field plan");
            let (tag, size) = pick_encoding(raw, stride, plan, 0, 1 + raw.len());
            if tag == TAG_RAW {
                return raw_frame(raw);
            }
            let mut frame = BytesMut::with_capacity(size);
            frame.put_u8(tag);
            let applied = encode_records(tag, raw, stride, plan, &mut frame);
            debug_assert!(applied, "the probe only picks applicable encodings");
            debug_assert_eq!(frame.len(), size, "probe size must match the encoder");
            frame
        }
        ColumnLayout::Var(entry) => {
            // Scan the raw payload for per-row counts (the payload is
            // valid by construction here — it was just built from
            // events). Entries are only copied out for the thin
            // id-columns that feed the record probes; fat columns go
            // straight from `raw` into the winning frame.
            let mut counts: Vec<u32> = Vec::with_capacity(n_rows);
            let mut off = 0usize;
            for _ in 0..n_rows {
                let c = rd_u32(raw, off);
                counts.push(c);
                off += 4 + c as usize * entry;
            }
            let counts_block = encode_counts(&counts);
            match delta_plan(id) {
                None => {
                    // Fat column: entries verbatim under TAG_DELTA; the
                    // frame wins exactly when the counts block beats
                    // the 4 bytes/row of raw prefixes.
                    let entries_len = raw.len() - 4 * n_rows;
                    if counts_block.len() + entries_len >= raw.len() {
                        return raw_frame(raw);
                    }
                    let mut frame = BytesMut::with_capacity(1 + counts_block.len() + entries_len);
                    frame.put_u8(TAG_DELTA);
                    frame.put_slice(&counts_block);
                    let mut off = 0usize;
                    for &c in &counts {
                        let len = c as usize * entry;
                        frame.put_slice(&raw[off + 4..off + 4 + len]);
                        off += 4 + len;
                    }
                    frame
                }
                Some(plan) => {
                    let mut entries = BytesMut::with_capacity(raw.len().saturating_sub(4 * n_rows));
                    let mut off = 0usize;
                    for &c in &counts {
                        let len = c as usize * entry;
                        entries.put_slice(&raw[off + 4..off + 4 + len]);
                        off += 4 + len;
                    }
                    let (tag, size) =
                        pick_encoding(&entries, entry, plan, counts_block.len(), 1 + raw.len());
                    if tag == TAG_RAW {
                        return raw_frame(raw);
                    }
                    let mut frame = BytesMut::with_capacity(size);
                    frame.put_u8(tag);
                    frame.put_slice(&counts_block);
                    let applied = encode_records(tag, &entries, entry, plan, &mut frame);
                    debug_assert!(applied, "the probe only picks applicable encodings");
                    debug_assert_eq!(frame.len(), size, "probe size must match the encoder");
                    frame
                }
            }
        }
    }
}

/// Decode a non-raw v2 frame into a [`ColumnReader`]. Small-record
/// columns materialize their raw payload; fat variable columns come
/// back *packed* — a zero-copy window over the verbatim entries region,
/// with the counts decoded into `starts` alone.
fn decode_frame(
    id: ColumnId,
    layout: ColumnLayout,
    tag: u8,
    frame: &Bytes,
    n_rows: usize,
) -> Result<ColumnReader, CodecError> {
    let b: &[u8] = frame;
    let mut off = 1usize; // past the encoding tag
    match layout {
        ColumnLayout::Fixed(stride) => {
            let plan = delta_plan(id).expect("fixed columns carry a field plan");
            let mut records = Vec::new();
            decode_records(id, tag, b, &mut off, n_rows, stride, plan, &mut records)?;
            if off != b.len() {
                return Err(trailing_bytes(id, b.len() - off));
            }
            Ok(ColumnReader {
                id,
                layout,
                payload: Bytes::from(records),
                starts: Vec::new(),
                packed: false,
            })
        }
        ColumnLayout::Var(entry) => {
            let counts = decode_counts(b, &mut off, n_rows)?;
            let total: usize = counts.iter().map(|&c| c as usize).sum();
            match delta_plan(id) {
                None => {
                    if tag != TAG_DELTA {
                        return Err(CodecError::Corrupt(format!(
                            "column '{}' does not support encoding tag {tag}",
                            id.name()
                        )));
                    }
                    if b.len() - off != total * entry {
                        return Err(CodecError::Corrupt(format!(
                            "column '{}' entries region is {} bytes for \
                             {total} entries of {entry}",
                            id.name(),
                            b.len() - off
                        )));
                    }
                    let mut starts = Vec::with_capacity(counts.len() + 1);
                    let mut acc = 0u32;
                    for &c in &counts {
                        starts.push(acc);
                        acc += c * entry as u32; // total·entry < 2³⁰, no overflow
                    }
                    starts.push(acc);
                    Ok(ColumnReader {
                        id,
                        layout,
                        payload: frame.slice(off..),
                        starts,
                        packed: true,
                    })
                }
                Some(plan) => {
                    let mut records = Vec::new();
                    decode_records(id, tag, b, &mut off, total, entry, plan, &mut records)?;
                    if off != b.len() {
                        return Err(trailing_bytes(id, b.len() - off));
                    }
                    // Re-interleave the count prefixes into a raw payload.
                    let mut payload = Vec::with_capacity(records.len() + 4 * counts.len());
                    let mut starts = Vec::with_capacity(counts.len() + 1);
                    let mut eoff = 0usize;
                    for &c in &counts {
                        starts.push(payload.len() as u32);
                        payload.extend_from_slice(&c.to_le_bytes());
                        let len = c as usize * entry;
                        payload.extend_from_slice(&records[eoff..eoff + len]);
                        eoff += len;
                    }
                    starts.push(payload.len() as u32);
                    Ok(ColumnReader {
                        id,
                        layout,
                        payload: Bytes::from(payload),
                        starts,
                        packed: false,
                    })
                }
            }
        }
    }
}

fn trailing_bytes(id: ColumnId, n: usize) -> CodecError {
    CodecError::Corrupt(format!(
        "column '{}' has {n} bytes past its encoded stream",
        id.name()
    ))
}

/// The paired p4/id columns must agree on every row's entry count.
fn cross_check_counts(
    readers: &[ColumnReader; N_COLUMNS],
    n_rows: usize,
) -> Result<(), CodecError> {
    for (p4, id) in [
        (ColumnId::ElectronP4, ColumnId::ElectronId),
        (ColumnId::MuonP4, ColumnId::MuonId),
        (ColumnId::JetP4, ColumnId::JetId),
    ] {
        let (a, b) = (&readers[p4 as usize], &readers[id as usize]);
        for row in 0..n_rows {
            if a.count(row) != b.count(row) {
                return Err(CodecError::Corrupt(format!(
                    "columns '{}' and '{}' disagree on the entry \
                     count at row {row}",
                    p4.name(),
                    id.name()
                )));
            }
        }
    }
    Ok(())
}

// --- Worker-pool parallel encode / decode -----------------------------------

/// Decode a columnar file back into AOD events with the ten column
/// frames verified + decoded on the worker pool, then the row
/// materialization fanned over row ranges. Column frames are
/// independent by construction (each is separately digested and
/// self-contained), so this parallelism cannot change the result: any
/// thread count returns exactly what [`ColumnarFile::to_rows`] returns
/// (the 1/2/4-thread byte-equality is proven through the row codec in
/// tests). `threads <= 1` spawns nothing.
pub fn decode_columns_parallel(file: &Bytes, threads: usize) -> Result<Vec<AodEvent>, CodecError> {
    let cf = ColumnarFile::parse(file)?;
    let opened: Vec<Result<ColumnReader, CodecError>> =
        crate::par::map_chunks(&ColumnId::ALL, threads, |ids| {
            ids.iter().map(|&id| cf.column(id)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    let mut readers: [Option<ColumnReader>; N_COLUMNS] = Default::default();
    for r in opened {
        let r = r?;
        let slot = r.id() as usize;
        readers[slot] = Some(r);
    }
    let readers = readers.map(|r| r.expect("all columns opened"));
    cross_check_counts(&readers, cf.n_rows)?;

    let rows: Vec<u32> = (0..cf.n_rows as u32).collect();
    let slim = SlimSpec::keep_all();
    let chunks = crate::par::map_chunks(&rows, threads, |chunk| {
        chunk
            .iter()
            .map(|&row| decode_row(&readers, row as usize, &slim))
            .collect::<Vec<_>>()
    });
    Ok(chunks.into_iter().flatten().collect())
}

/// Encode AOD events into a columnar file with the ten column builds
/// and frame encodes fanned over the worker pool. Each worker lays out
/// and encodes whole columns, so the in-order merge concatenates
/// exactly the frames the sequential writer produces: byte-identical
/// to [`ColumnarFile::from_rows`] at any thread count.
pub fn encode_columnar_parallel(events: &[AodEvent], threads: usize) -> Bytes {
    let n_rows = u32::try_from(events.len()).unwrap_or_else(|_| {
        panic!(
            "event count {} exceeds the u32 DPCF row field",
            events.len()
        )
    });
    let frames_vec: Vec<BytesMut> = crate::par::map_chunks(&ColumnId::ALL, threads, |ids| {
        ids.iter()
            .map(|&id| {
                let raw = build_raw_column(id, events);
                encode_column(id, &raw, events.len())
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let mut frames: [BytesMut; N_COLUMNS] = Default::default();
    for (i, f) in frames_vec.into_iter().enumerate() {
        frames[i] = f;
    }
    assemble_file(COLUMNAR_VERSION, n_rows, &frames)
}

/// Lay out one raw column for `events` — the per-column worker of the
/// parallel encoder, column-for-column identical to the single-pass
/// [`build_raw_columns`].
fn build_raw_column(id: ColumnId, events: &[AodEvent]) -> BytesMut {
    let mut col = BytesMut::new();
    match id {
        ColumnId::Header => {
            for ev in events {
                col.put_u32_le(ev.header.run.0);
                col.put_u32_le(ev.header.lumi_block.0);
                col.put_u64_le(ev.header.event.0);
            }
        }
        ColumnId::ElectronP4 => {
            for ev in events {
                col.put_u32_le(ev.electrons.len() as u32);
                for e in &ev.electrons {
                    put_p4(&mut col, &e.momentum);
                }
            }
        }
        ColumnId::ElectronId => {
            for ev in events {
                col.put_u32_le(ev.electrons.len() as u32);
                for e in &ev.electrons {
                    col.put_i8(e.charge);
                    col.put_f64_le(e.e_over_p);
                    col.put_f64_le(e.isolation);
                }
            }
        }
        ColumnId::MuonP4 => {
            for ev in events {
                col.put_u32_le(ev.muons.len() as u32);
                for m in &ev.muons {
                    put_p4(&mut col, &m.momentum);
                }
            }
        }
        ColumnId::MuonId => {
            for ev in events {
                col.put_u32_le(ev.muons.len() as u32);
                for m in &ev.muons {
                    col.put_i8(m.charge);
                    col.put_u8(m.n_stations);
                    col.put_f64_le(m.isolation);
                }
            }
        }
        ColumnId::Photon => {
            for ev in events {
                col.put_u32_le(ev.photons.len() as u32);
                for p in &ev.photons {
                    put_p4(&mut col, &p.momentum);
                    col.put_f64_le(p.isolation);
                }
            }
        }
        ColumnId::JetP4 => {
            for ev in events {
                col.put_u32_le(ev.jets.len() as u32);
                for j in &ev.jets {
                    put_p4(&mut col, &j.momentum);
                }
            }
        }
        ColumnId::JetId => {
            for ev in events {
                col.put_u32_le(ev.jets.len() as u32);
                for j in &ev.jets {
                    col.put_u32_le(j.n_constituents);
                    col.put_f64_le(j.em_fraction);
                }
            }
        }
        ColumnId::Candidate => {
            for ev in events {
                col.put_u32_le(ev.candidates.len() as u32);
                for t in &ev.candidates {
                    put_p4(&mut col, &t.vertex);
                    col.put_f64_le(t.flight_xy);
                    col.put_f64_le(t.pt);
                    col.put_f64_le(t.eta);
                    col.put_f64_le(t.mass_pipi);
                    col.put_f64_le(t.mass_ppi);
                    col.put_f64_le(t.mass_kpi);
                    col.put_f64_le(t.proper_time_d0_ns);
                    col.put_u32_le(t.track_indices.0);
                    col.put_u32_le(t.track_indices.1);
                }
            }
        }
        ColumnId::Scalars => {
            for ev in events {
                col.put_f64_le(ev.met.mex);
                col.put_f64_le(ev.met.mey);
                col.put_u32_le(ev.n_tracks);
            }
        }
    }
    col
}

/// A decoded (structurally walked) column. For raw frames `payload` is
/// a zero-copy window into the file buffer; for encoded v2 frames it is
/// either the decoded raw payload (small-record columns) or, in
/// *packed* form, a zero-copy window over the verbatim entries region
/// with the row counts carried by `starts` alone (the fat
/// four-momentum columns, whose entries v2 never transforms). `starts`
/// indexes row extents for variable columns so row access is O(1).
#[derive(Debug, Clone)]
pub struct ColumnReader {
    id: ColumnId,
    layout: ColumnLayout,
    payload: Bytes,
    starts: Vec<u32>,
    /// Variable column whose payload is entries-only (no interleaved
    /// `count:u32` prefixes); `starts` holds entry-byte offsets.
    packed: bool,
}

/// Build a reader over a raw (v1-layout) payload: zero-copy, with the
/// counting walk for variable columns.
fn reader_from_raw(
    id: ColumnId,
    layout: ColumnLayout,
    payload: Bytes,
    n_rows: usize,
) -> Result<ColumnReader, CodecError> {
    let starts = match layout {
        ColumnLayout::Fixed(_) => Vec::new(),
        ColumnLayout::Var(entry) => walk_var(&payload, entry, n_rows, id)?,
    };
    Ok(ColumnReader {
        id,
        layout,
        payload,
        starts,
        packed: false,
    })
}

/// Walk a raw variable-column payload row by row, validating counts and
/// extents, and return the per-row byte offsets (`n_rows + 1` entries).
fn walk_var(b: &[u8], entry: usize, n_rows: usize, id: ColumnId) -> Result<Vec<u32>, CodecError> {
    // Raw payloads are at least 4 bytes per row (checked at parse), so
    // `n_rows` is bounded by the bytes actually present and this
    // preallocation cannot outrun the file.
    let mut starts = Vec::with_capacity(n_rows + 1);
    let mut off = 0usize;
    for _ in 0..n_rows {
        starts.push(off as u32);
        if off + 4 > b.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let count = rd_u32(b, off);
        if count > MAX_COUNT {
            return Err(CodecError::Corrupt(format!(
                "count {count} exceeds sanity limit"
            )));
        }
        let row_len = 4 + count as usize * entry;
        if b.len() - off < row_len {
            return Err(CodecError::UnexpectedEof);
        }
        off += row_len;
    }
    if off != b.len() {
        return Err(CodecError::Corrupt(format!(
            "column '{}' has {} trailing bytes",
            id.name(),
            b.len() - off
        )));
    }
    starts.push(off as u32);
    Ok(starts)
}

impl ColumnReader {
    /// Which column this reads.
    pub fn id(&self) -> ColumnId {
        self.id
    }

    /// Entries in `row` (1 for fixed columns).
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        match self.layout {
            ColumnLayout::Fixed(_) => 1,
            ColumnLayout::Var(entry) => {
                (self.starts[row + 1] - self.starts[row]) as usize / entry
                // interleaved rows carry a count prefix: (len - 4) /
                // entry, but 4/entry == 0 since entry > 4 for every
                // schema column; packed rows divide exactly.
            }
        }
    }

    /// The fixed-stride record of `row`.
    #[inline]
    pub fn fixed_row(&self, row: usize) -> &[u8] {
        let stride = match self.layout {
            ColumnLayout::Fixed(s) => s,
            ColumnLayout::Var(_) => unreachable!("fixed_row on var column"),
        };
        &self.payload[row * stride..(row + 1) * stride]
    }

    /// The packed entries of `row` (count prefix stripped, when present).
    #[inline]
    pub fn entries(&self, row: usize) -> &[u8] {
        let skip = if self.packed { 0 } else { 4 };
        &self.payload[self.starts[row] as usize + skip..self.starts[row + 1] as usize]
    }
}

// Entry strides, used by the decoders below.
const E_ID_STRIDE: usize = 17;
const MU_ID_STRIDE: usize = 10;
const PHOTON_STRIDE: usize = 40;
const JET_ID_STRIDE: usize = 12;
const CAND_STRIDE: usize = 96;
const P4_STRIDE: usize = 32;

/// Materialize one row with a slim applied (dropped collections are
/// never decoded). `keep_all` gives the exact stored event.
fn decode_row(r: &[ColumnReader; N_COLUMNS], row: usize, slim: &SlimSpec) -> AodEvent {
    let hb = r[ColumnId::Header as usize].fixed_row(row);
    let header = EventHeader::new(rd_u32(hb, 0), rd_u32(hb, 4), rd_u64(hb, 8));
    let mut ev = AodEvent::new(header);
    if slim.keep_electrons {
        let p4 = r[ColumnId::ElectronP4 as usize].entries(row);
        let id = r[ColumnId::ElectronId as usize].entries(row);
        let n = r[ColumnId::ElectronP4 as usize].count(row);
        ev.electrons.reserve(n);
        for i in 0..n {
            ev.electrons.push(Electron {
                momentum: rd_p4(p4, i * P4_STRIDE),
                charge: id[i * E_ID_STRIDE] as i8,
                e_over_p: rd_f64(id, i * E_ID_STRIDE + 1),
                isolation: rd_f64(id, i * E_ID_STRIDE + 9),
            });
        }
    }
    if slim.keep_muons {
        let p4 = r[ColumnId::MuonP4 as usize].entries(row);
        let id = r[ColumnId::MuonId as usize].entries(row);
        let n = r[ColumnId::MuonP4 as usize].count(row);
        ev.muons.reserve(n);
        for i in 0..n {
            ev.muons.push(Muon {
                momentum: rd_p4(p4, i * P4_STRIDE),
                charge: id[i * MU_ID_STRIDE] as i8,
                n_stations: id[i * MU_ID_STRIDE + 1],
                isolation: rd_f64(id, i * MU_ID_STRIDE + 2),
            });
        }
    }
    if slim.keep_photons {
        let b = r[ColumnId::Photon as usize].entries(row);
        let n = r[ColumnId::Photon as usize].count(row);
        ev.photons.reserve(n);
        for i in 0..n {
            ev.photons.push(Photon {
                momentum: rd_p4(b, i * PHOTON_STRIDE),
                isolation: rd_f64(b, i * PHOTON_STRIDE + 32),
            });
        }
    }
    let n_jets = if slim.max_jets == 0 {
        0 // the jet columns may not even be open; don't touch them
    } else {
        r[ColumnId::JetP4 as usize]
            .count(row)
            .min(slim.max_jets as usize)
    };
    if n_jets > 0 {
        let p4 = r[ColumnId::JetP4 as usize].entries(row);
        let id = r[ColumnId::JetId as usize].entries(row);
        ev.jets.reserve(n_jets);
        for i in 0..n_jets {
            ev.jets.push(Jet {
                momentum: rd_p4(p4, i * P4_STRIDE),
                n_constituents: rd_u32(id, i * JET_ID_STRIDE),
                em_fraction: rd_f64(id, i * JET_ID_STRIDE + 4),
            });
        }
    }
    if slim.keep_candidates {
        let b = r[ColumnId::Candidate as usize].entries(row);
        let n = r[ColumnId::Candidate as usize].count(row);
        ev.candidates.reserve(n);
        for i in 0..n {
            let o = i * CAND_STRIDE;
            ev.candidates.push(TwoProngCandidate {
                vertex: rd_p4(b, o),
                flight_xy: rd_f64(b, o + 32),
                pt: rd_f64(b, o + 40),
                eta: rd_f64(b, o + 48),
                mass_pipi: rd_f64(b, o + 56),
                mass_ppi: rd_f64(b, o + 64),
                mass_kpi: rd_f64(b, o + 72),
                proper_time_d0_ns: rd_f64(b, o + 80),
                track_indices: (rd_u32(b, o + 88), rd_u32(b, o + 92)),
            });
        }
    }
    let s = r[ColumnId::Scalars as usize].fixed_row(row);
    ev.met = Met {
        mex: rd_f64(s, 0),
        mey: rd_f64(s, 8),
    };
    ev.n_tracks = rd_u32(s, 16);
    ev
}

// --- Predicate-pushdown skim ------------------------------------------------

/// Lazily opened columns for one skim pass. Tracks which columns were
/// actually touched so the `tier.columnar.cols_read` / `cols_skipped`
/// counters report the real pushdown, not the schema width.
struct ColumnCache<'a> {
    file: &'a ColumnarFile,
    readers: [Option<ColumnReader>; N_COLUMNS],
}

impl<'a> ColumnCache<'a> {
    fn new(file: &'a ColumnarFile) -> Self {
        ColumnCache {
            file,
            readers: Default::default(),
        }
    }

    /// Open (trusted, structural walk only) if not already open.
    fn ensure(&mut self, id: ColumnId) -> Result<(), CodecError> {
        if self.readers[id as usize].is_none() {
            self.readers[id as usize] = Some(self.file.open(id, false)?);
        }
        Ok(())
    }

    /// Borrow a column [`ColumnCache::ensure`]d earlier.
    fn get(&self, id: ColumnId) -> &ColumnReader {
        self.readers[id as usize]
            .as_ref()
            .expect("column opened before use")
    }

    fn opened(&self) -> usize {
        self.readers.iter().filter(|r| r.is_some()).count()
    }
}

/// Evaluate a selection into a per-row keep mask, opening only the
/// columns the predicate actually reads. Leaf semantics mirror
/// [`Selection::passes`] operation-for-operation (same `sqrt`-then-compare,
/// same `>=`), so the mask equals the row-path verdicts bit-for-bit.
fn eval_mask(cache: &mut ColumnCache<'_>, sel: &Selection) -> Result<Vec<bool>, CodecError> {
    let n_rows = cache.file.n_rows;
    Ok(match sel {
        Selection::All => vec![true; n_rows],
        Selection::NLeptons { n, pt } => {
            cache.ensure(ColumnId::ElectronP4)?;
            cache.ensure(ColumnId::MuonP4)?;
            let cols = [cache.get(ColumnId::ElectronP4), cache.get(ColumnId::MuonP4)];
            (0..n_rows)
                .map(|row| {
                    let mut count = 0u32;
                    for col in cols {
                        let b = col.entries(row);
                        for i in 0..col.count(row) {
                            let px = rd_f64(b, i * P4_STRIDE);
                            let py = rd_f64(b, i * P4_STRIDE + 8);
                            if (px * px + py * py).sqrt() >= *pt {
                                count += 1;
                            }
                        }
                    }
                    count >= *n
                })
                .collect()
        }
        Selection::NPhotons { n, pt } => {
            cache.ensure(ColumnId::Photon)?;
            let col = cache.get(ColumnId::Photon);
            count_mask(col, n_rows, PHOTON_STRIDE, *n, *pt)
        }
        Selection::NJets { n, pt } => {
            cache.ensure(ColumnId::JetP4)?;
            let col = cache.get(ColumnId::JetP4);
            count_mask(col, n_rows, P4_STRIDE, *n, *pt)
        }
        Selection::MetAbove(min) => {
            cache.ensure(ColumnId::Scalars)?;
            let col = cache.get(ColumnId::Scalars);
            (0..n_rows)
                .map(|row| {
                    let s = col.fixed_row(row);
                    let (mex, mey) = (rd_f64(s, 0), rd_f64(s, 8));
                    (mex * mex + mey * mey).sqrt() >= *min
                })
                .collect()
        }
        Selection::CandidateMass {
            hypothesis,
            mass,
            window,
        } => {
            cache.ensure(ColumnId::Candidate)?;
            let col = cache.get(ColumnId::Candidate);
            let off = match hypothesis {
                MassHypothesis::PiPi => 56,
                MassHypothesis::PPi => 64,
                MassHypothesis::KPi => 72,
            };
            (0..n_rows)
                .map(|row| {
                    let b = col.entries(row);
                    (0..col.count(row))
                        .any(|i| (rd_f64(b, i * CAND_STRIDE + off) - mass).abs() <= *window)
                })
                .collect()
        }
        Selection::NTracksAtLeast(n) => {
            cache.ensure(ColumnId::Scalars)?;
            let col = cache.get(ColumnId::Scalars);
            (0..n_rows)
                .map(|row| rd_u32(col.fixed_row(row), 16) >= *n)
                .collect()
        }
        Selection::And(a, b) => {
            let ma = eval_mask(cache, a)?;
            let mb = eval_mask(cache, b)?;
            ma.iter().zip(&mb).map(|(x, y)| *x && *y).collect()
        }
        Selection::Or(a, b) => {
            let ma = eval_mask(cache, a)?;
            let mb = eval_mask(cache, b)?;
            ma.iter().zip(&mb).map(|(x, y)| *x || *y).collect()
        }
        Selection::Not(a) => {
            let ma = eval_mask(cache, a)?;
            ma.iter().map(|x| !*x).collect()
        }
    })
}

/// Mask for "at least `n` entries with four-momentum pT ≥ `pt`" over one
/// var column whose entries start with a four-vector.
fn count_mask(col: &ColumnReader, n_rows: usize, stride: usize, n: u32, pt: f64) -> Vec<bool> {
    (0..n_rows)
        .map(|row| {
            let b = col.entries(row);
            let mut count = 0u32;
            for i in 0..col.count(row) {
                let px = rd_f64(b, i * stride);
                let py = rd_f64(b, i * stride + 8);
                if (px * px + py * py).sqrt() >= pt {
                    count += 1;
                }
            }
            count >= n
        })
        .collect()
}

/// Predicate-pushdown skim+slim over a columnar file.
///
/// The selection opens only the columns its leaves read; survivors are
/// carried into the output by verbatim row copies (no event is ever
/// decoded), slim-dropped collections become empty rows without their
/// source column being touched at all, and the jet cap truncates by
/// entry arithmetic. The surviving *events* are exactly those
/// [`crate::skim::skim_slim_streaming`] keeps over the row encoding of
/// the same data; byte accounting in the report is per-format (file
/// sizes), since the two layouts price the same events differently.
///
/// When `registry` is given, `tier.columnar.cols_read` /
/// `tier.columnar.cols_skipped` count the columns the pass did and did
/// not open — a deterministic function of the selection and slim.
pub fn skim_slim_columnar(
    file: &Bytes,
    selection: &Selection,
    slim: &SlimSpec,
    registry: Option<&MetricsRegistry>,
) -> Result<(Bytes, SkimReport), CodecError> {
    skim_columnar_core(file, selection, slim, registry, None)
}

/// [`skim_slim_columnar`] with a per-survivor callback receiving each
/// slimmed event (the workflow fills the analysis ntuple with it). Only
/// survivors are materialized, and only their kept columns are decoded.
pub fn skim_slim_columnar_with(
    file: &Bytes,
    selection: &Selection,
    slim: &SlimSpec,
    registry: Option<&MetricsRegistry>,
    mut on_survivor: impl FnMut(&AodEvent),
) -> Result<(Bytes, SkimReport), CodecError> {
    skim_columnar_core(file, selection, slim, registry, Some(&mut on_survivor))
}

fn skim_columnar_core(
    file: &Bytes,
    selection: &Selection,
    slim: &SlimSpec,
    registry: Option<&MetricsRegistry>,
    on_survivor: Option<&mut dyn FnMut(&AodEvent)>,
) -> Result<(Bytes, SkimReport), CodecError> {
    let cf = ColumnarFile::parse(file)?;
    let mut cache = ColumnCache::new(&cf);
    let mask = eval_mask(&mut cache, selection)?;

    // Columns the output (and the survivor callback) needs.
    let keep: [bool; N_COLUMNS] = {
        let mut k = [false; N_COLUMNS];
        k[ColumnId::Header as usize] = true;
        k[ColumnId::Scalars as usize] = true;
        k[ColumnId::ElectronP4 as usize] = slim.keep_electrons;
        k[ColumnId::ElectronId as usize] = slim.keep_electrons;
        k[ColumnId::MuonP4 as usize] = slim.keep_muons;
        k[ColumnId::MuonId as usize] = slim.keep_muons;
        k[ColumnId::Photon as usize] = slim.keep_photons;
        k[ColumnId::JetP4 as usize] = slim.max_jets > 0;
        k[ColumnId::JetId as usize] = slim.max_jets > 0;
        k[ColumnId::Candidate as usize] = slim.keep_candidates;
        k
    };
    for (i, kept) in keep.iter().enumerate() {
        if *kept {
            cache.ensure(ColumnId::ALL[i])?;
        }
    }

    let survivors: Vec<u32> = mask
        .iter()
        .enumerate()
        .filter_map(|(row, keep)| keep.then_some(row as u32))
        .collect();
    let n_out = survivors.len();

    // Consecutive surviving rows are contiguous in every column frame,
    // so each run of the mask is one memcpy per column instead of one
    // per row — on low-rejection skims this collapses ~n_rows copies
    // into a handful.
    let runs: Vec<(usize, usize)> = {
        let mut runs = Vec::new();
        let mut it = survivors.iter().peekable();
        while let Some(&start) = it.next() {
            let mut end = start;
            while it.peek().is_some_and(|&&next| next == end + 1) {
                end = *it.next().expect("peeked");
            }
            runs.push((start as usize, end as usize + 1));
        }
        runs
    };

    // One raw-column scratch is reused (cleared, capacity kept) across
    // all ten columns, so the pass holds a single raw column plus the
    // much smaller encoded frames instead of ten raw columns at once —
    // that was the columnar skim's allocation peak.
    let mut raw = BytesMut::new();
    let mut frames: [BytesMut; N_COLUMNS] = Default::default();
    for (i, id) in ColumnId::ALL.iter().enumerate() {
        raw.clear();
        if !keep[i] {
            // Dropped collection: every surviving row becomes count = 0,
            // without ever opening the source column.
            raw.reserve(n_out * 4);
            for _ in 0..n_out {
                raw.put_u32_le(0);
            }
            frames[i] = encode_column(*id, &raw, n_out);
            continue;
        }
        let col = cache.get(*id);
        match id.layout() {
            ColumnLayout::Fixed(stride) => {
                raw.reserve(n_out * stride);
                for &(a, b) in &runs {
                    raw.put_slice(&col.payload[a * stride..b * stride]);
                }
            }
            ColumnLayout::Var(entry) => {
                let truncate_jets =
                    matches!(id, ColumnId::JetP4 | ColumnId::JetId) && slim.max_jets != u32::MAX;
                if col.packed {
                    // Packed readers carry no interleaved count
                    // prefixes, so rows re-interleave one by one (a run
                    // cannot memcpy across the missing prefixes).
                    let max = if truncate_jets {
                        slim.max_jets as usize
                    } else {
                        usize::MAX
                    };
                    raw.reserve(4 * n_out + (col.starts[cf.n_rows] as usize).min(1 << 20));
                    for &(a, b) in &runs {
                        for row in a..b {
                            let n = col.count(row).min(max);
                            raw.put_u32_le(n as u32);
                            raw.put_slice(&col.entries(row)[..n * entry]);
                        }
                    }
                } else if truncate_jets {
                    let max = slim.max_jets as usize;
                    raw.reserve(n_out * (4 + max * entry));
                    for &(a, b) in &runs {
                        // Within a run, stretches of rows already under
                        // the jet cap copy verbatim in one slice; only
                        // rows that actually truncate go entry-by-entry.
                        let mut row = a;
                        while row < b {
                            if col.count(row) <= max {
                                let start = row;
                                while row < b && col.count(row) <= max {
                                    row += 1;
                                }
                                raw.put_slice(
                                    &col.payload
                                        [col.starts[start] as usize..col.starts[row] as usize],
                                );
                            } else {
                                raw.put_u32_le(max as u32);
                                raw.put_slice(&col.entries(row)[..max * entry]);
                                row += 1;
                            }
                        }
                    }
                } else {
                    let total: usize = runs
                        .iter()
                        .map(|&(a, b)| (col.starts[b] - col.starts[a]) as usize)
                        .sum();
                    raw.reserve(total);
                    for &(a, b) in &runs {
                        raw.put_slice(&col.payload[col.starts[a] as usize..col.starts[b] as usize]);
                    }
                }
            }
        }
        frames[i] = encode_column(*id, &raw, n_out);
    }

    if let Some(cb) = on_survivor {
        // Materialize survivors (slimmed) straight off the kept input
        // columns — non-survivors and dropped collections never decode.
        let readers: [ColumnReader; N_COLUMNS] = {
            let mut rs: [Option<ColumnReader>; N_COLUMNS] = Default::default();
            for (i, slot) in cache.readers.iter().enumerate() {
                rs[i] = match slot {
                    Some(r) => Some(r.clone()),
                    // decode_row only touches kept columns; placeholder
                    // readers for dropped ones keep the array total.
                    None => Some(ColumnReader {
                        id: ColumnId::ALL[i],
                        layout: ColumnId::ALL[i].layout(),
                        payload: Bytes::new(),
                        starts: Vec::new(),
                        packed: false,
                    }),
                };
            }
            rs.map(|r| r.expect("reader slot filled"))
        };
        for &row in &survivors {
            let ev = decode_row(&readers, row as usize, slim);
            cb(&ev);
        }
    }

    if let Some(reg) = registry {
        let read = cache.opened() as u64;
        reg.counter("tier.columnar.cols_read").add(read);
        reg.counter("tier.columnar.cols_skipped")
            .add(N_COLUMNS as u64 - read);
    }

    let out = assemble_file(COLUMNAR_VERSION, n_out as u32, &frames);
    let report = SkimReport {
        events_in: cf.n_rows as u64,
        events_out: n_out as u64,
        bytes_in: file.len() as u64,
        bytes_out: out.len() as u64,
    };
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encodable;
    use crate::skim::skim_slim;

    fn sample_events(n: usize) -> Vec<AodEvent> {
        (0..n)
            .map(|i| {
                let mut ev = AodEvent::new(EventHeader::new(
                    194_270 + (i / 7) as u32,
                    1 + (i % 5) as u32,
                    900_000 + i as u64,
                ));
                for k in 0..(i % 3) {
                    ev.electrons.push(Electron {
                        momentum: FourVector {
                            px: 11.0 + i as f64 + k as f64,
                            py: -3.5 * (k as f64 + 1.0),
                            pz: 20.0 - i as f64,
                            e: 40.0 + i as f64,
                        },
                        charge: if k % 2 == 0 { 1 } else { -1 },
                        e_over_p: 0.97 + 0.01 * k as f64,
                        isolation: 0.04 * k as f64,
                    });
                }
                for k in 0..((i + 1) % 4) {
                    ev.muons.push(Muon {
                        momentum: FourVector {
                            px: -8.0 - k as f64,
                            py: 14.0 + i as f64,
                            pz: -2.0,
                            e: 30.0 + k as f64,
                        },
                        charge: if k % 2 == 0 { -1 } else { 1 },
                        n_stations: 2 + (k % 3) as u8,
                        isolation: 0.02 + 0.01 * i as f64,
                    });
                }
                for k in 0..(i % 2) {
                    ev.photons.push(Photon {
                        momentum: FourVector {
                            px: 5.0 + k as f64,
                            py: 6.0,
                            pz: 1.0,
                            e: 9.0,
                        },
                        isolation: 0.1,
                    });
                }
                for k in 0..(i % 5) {
                    ev.jets.push(Jet {
                        momentum: FourVector {
                            px: 25.0 + 3.0 * k as f64,
                            py: -12.0,
                            pz: 40.0,
                            e: 60.0 + k as f64,
                        },
                        n_constituents: 3 + k as u32,
                        em_fraction: 0.3 + 0.05 * k as f64,
                    });
                }
                for k in 0..(i % 2) {
                    ev.candidates.push(TwoProngCandidate {
                        vertex: FourVector {
                            px: 1.0,
                            py: 2.0,
                            pz: 3.0,
                            e: 0.0,
                        },
                        flight_xy: 4.2 + k as f64,
                        pt: 3.3,
                        eta: 0.4,
                        mass_pipi: 0.497 + 0.001 * i as f64,
                        mass_ppi: 1.115,
                        mass_kpi: 1.864,
                        proper_time_d0_ns: 4.1e-4,
                        track_indices: (i as u32, i as u32 + 1),
                    });
                }
                ev.met = Met {
                    mex: 10.0 + i as f64,
                    mey: -7.0,
                };
                ev.n_tracks = 40 + i as u32;
                ev
            })
            .collect()
    }

    fn selections() -> Vec<Selection> {
        vec![
            Selection::All,
            Selection::NLeptons { n: 1, pt: 12.0 },
            Selection::NLeptons { n: 2, pt: 5.0 },
            Selection::NPhotons { n: 1, pt: 5.0 },
            Selection::NJets { n: 2, pt: 20.0 },
            Selection::MetAbove(15.0),
            Selection::CandidateMass {
                hypothesis: MassHypothesis::PiPi,
                mass: 0.4976,
                window: 0.01,
            },
            Selection::NTracksAtLeast(45),
            Selection::NLeptons { n: 1, pt: 10.0 }
                .and(Selection::MetAbove(12.0).not())
                .or(Selection::NJets { n: 3, pt: 10.0 }),
        ]
    }

    #[test]
    fn round_trip_preserves_events_exactly() {
        let events = sample_events(23);
        let file = ColumnarFile::from_rows(&events);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        assert_eq!(parsed.n_rows(), 23);
        let back = parsed.to_rows().expect("decodes");
        assert_eq!(back, events);
    }

    #[test]
    fn round_trip_is_byte_identical_against_the_row_codec() {
        let events = sample_events(17);
        let row_file = AodEvent::encode_events(&events);
        let col_file = ColumnarFile::from_rows(&events);
        // row -> columnar -> row reproduces the row bytes…
        let via_col = ColumnarFile::parse(&col_file)
            .and_then(|f| f.to_rows())
            .expect("col decodes");
        assert_eq!(AodEvent::encode_events(&via_col), row_file);
        // …and columnar -> row -> columnar reproduces the columnar bytes.
        let via_row = AodEvent::decode_events(&row_file).expect("row decodes");
        assert_eq!(ColumnarFile::from_rows(&via_row), col_file);
    }

    #[test]
    fn empty_file_round_trips() {
        let file = ColumnarFile::from_rows(&[]);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        assert_eq!(parsed.n_rows(), 0);
        assert!(parsed.to_rows().expect("decodes").is_empty());
        let (out, report) =
            skim_slim_columnar(&file, &Selection::All, &SlimSpec::keep_all(), None).expect("skims");
        assert_eq!(report.events_in, 0);
        assert_eq!(out, file);
    }

    #[test]
    fn every_truncation_is_detected() {
        let events = sample_events(6);
        let file = ColumnarFile::from_rows(&events);
        for len in 0..file.len() {
            let cut = file.slice(0..len);
            let err = ColumnarFile::parse(&cut)
                .and_then(|f| f.to_rows().map(|_| ()))
                .expect_err("truncation must error");
            let _ = err.category();
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        let events = sample_events(5);
        let file = ColumnarFile::from_rows(&events);
        for pos in 0..file.len() {
            let mut bytes = file.to_vec();
            bytes[pos] ^= 0x40;
            let mutated = Bytes::from(bytes);
            match ColumnarFile::parse(&mutated).and_then(|f| f.to_rows()) {
                Err(_) => {}
                Ok(back) => assert_eq!(
                    back, events,
                    "undetected corruption at byte {pos} changed the decode"
                ),
            }
        }
    }

    #[test]
    fn verify_passes_on_pristine_and_catches_column_swap() {
        let events = sample_events(9);
        let file = ColumnarFile::from_rows(&events);
        ColumnarFile::parse(&file)
            .unwrap()
            .verify()
            .expect("pristine verifies");

        // Swap the e-p4 and mu-p4 frames (equal layout, different data):
        // every per-column structure stays valid, only the table digests
        // can notice.
        let parsed = ColumnarFile::parse(&file).unwrap();
        let e = parsed.cols[ColumnId::ElectronP4 as usize];
        let m = parsed.cols[ColumnId::MuonP4 as usize];
        if e.len == m.len {
            let mut bytes = file.to_vec();
            let (a, b) = (e.offset, m.offset);
            for i in 0..e.len {
                bytes.swap(a + i, b + i);
            }
            let swapped = Bytes::from(bytes);
            assert!(
                ColumnarFile::parse(&swapped).unwrap().verify().is_err(),
                "frame swap must fail digest verification"
            );
        }
    }

    #[test]
    fn skim_matches_the_row_path_for_every_selection_and_slim() {
        let events = sample_events(40);
        let col_file = ColumnarFile::from_rows(&events);
        for sel in selections() {
            for slim in [
                SlimSpec::keep_all(),
                SlimSpec::leptons_only(),
                SlimSpec::candidates_only(),
            ] {
                let (expected, exp_report) = skim_slim(&events, &sel, &slim);
                let (out, report) =
                    skim_slim_columnar(&col_file, &sel, &slim, None).expect("skims");
                let survivors = ColumnarFile::parse(&out)
                    .and_then(|f| f.to_rows())
                    .expect("output decodes");
                assert_eq!(survivors, expected, "sel {} slim {}", sel, slim.to_text());
                assert_eq!(report.events_in, exp_report.events_in);
                assert_eq!(report.events_out, exp_report.events_out);
                // The output is canonical: exactly what encoding the
                // survivors from scratch produces.
                assert_eq!(out, ColumnarFile::from_rows(&expected));
            }
        }
    }

    #[test]
    fn skim_callback_sees_each_slimmed_survivor_in_order() {
        let events = sample_events(30);
        let col_file = ColumnarFile::from_rows(&events);
        let sel = Selection::NLeptons { n: 1, pt: 10.0 };
        let slim = SlimSpec::leptons_only();
        let (expected, _) = skim_slim(&events, &sel, &slim);
        let mut seen = Vec::new();
        skim_slim_columnar_with(&col_file, &sel, &slim, None, |ev| seen.push(ev.clone()))
            .expect("skims");
        assert_eq!(seen, expected);
    }

    #[test]
    fn pushdown_counters_report_the_columns_actually_opened() {
        let events = sample_events(20);
        let col_file = ColumnarFile::from_rows(&events);
        // NLeptons + leptons_only: e/mu p4 for the cut, header + scalars
        // + e/mu id + both jet columns for the copy = 8 read, 2 skipped.
        let registry = MetricsRegistry::default();
        skim_slim_columnar(
            &col_file,
            &Selection::NLeptons { n: 2, pt: 10.0 },
            &SlimSpec::leptons_only(),
            Some(&registry),
        )
        .expect("skims");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tier.columnar.cols_read"), 8);
        assert_eq!(snap.counter("tier.columnar.cols_skipped"), 2);

        // MET cut + candidates_only touches only scalars, header, cand.
        let registry = MetricsRegistry::default();
        skim_slim_columnar(
            &col_file,
            &Selection::MetAbove(12.0),
            &SlimSpec::candidates_only(),
            Some(&registry),
        )
        .expect("skims");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tier.columnar.cols_read"), 3);
        assert_eq!(snap.counter("tier.columnar.cols_skipped"), 7);
    }

    #[test]
    fn wide_digest_is_deterministic_and_discriminating() {
        let a = fnv64_wide(b"daspos columnar tier");
        assert_eq!(a, fnv64_wide(b"daspos columnar tier"));
        assert_ne!(a, fnv64_wide(b"daspos columnar tieR"));
        assert_ne!(fnv64_wide(b""), fnv64_wide(b"\0"));
        assert_ne!(fnv64_wide(b"ab"), fnv64_wide(b"ba"));
    }

    #[test]
    fn tier_format_names_round_trip() {
        for fmt in [TierFormat::Row, TierFormat::Columnar] {
            assert_eq!(TierFormat::parse(fmt.name()), Some(fmt));
        }
        assert_eq!(TierFormat::parse("parquet"), None);
        assert_eq!(TierFormat::default(), TierFormat::Row);
    }

    #[test]
    fn wrong_magic_version_tier_are_rejected() {
        let file = ColumnarFile::from_rows(&sample_events(3));
        let mut bad = file.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            ColumnarFile::parse(&Bytes::from(bad)),
            Err(CodecError::BadMagic)
        ));
        let mut bad = file.to_vec();
        bad[4] = 9;
        assert!(matches!(
            ColumnarFile::parse(&Bytes::from(bad)),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut bad = file.to_vec();
        bad[6] = DataTier::Raw.code();
        assert!(matches!(
            ColumnarFile::parse(&Bytes::from(bad)),
            Err(CodecError::WrongTier { .. })
        ));
    }

    /// The encoding tag a parsed file stores for `col` (first frame byte).
    fn frame_tag(file: &Bytes, parsed: &ColumnarFile, col: ColumnId) -> u8 {
        file[parsed.cols[col as usize].offset]
    }

    #[test]
    fn v1_files_still_parse_decode_and_skim() {
        let events = sample_events(19);
        let v1 = ColumnarFile::from_rows_v1(&events);
        let parsed = ColumnarFile::parse(&v1).expect("v1 parses");
        assert_eq!(parsed.version(), COLUMNAR_VERSION_V1);
        assert_eq!(parsed.to_rows().expect("v1 decodes"), events);
        // A v2 writer re-encoding the same rows carries the new version…
        let v2 = ColumnarFile::from_rows(&events);
        assert_eq!(
            ColumnarFile::parse(&v2).unwrap().version(),
            COLUMNAR_VERSION
        );
        // …and skimming a v1 file yields the canonical v2 output.
        let sel = Selection::NLeptons { n: 1, pt: 10.0 };
        let slim = SlimSpec::leptons_only();
        let (expected, _) = skim_slim(&events, &sel, &slim);
        let (out, _) = skim_slim_columnar(&v1, &sel, &slim, None).expect("v1 skims");
        assert_eq!(out, ColumnarFile::from_rows(&expected));
    }

    #[test]
    fn v1_truncations_and_flips_are_detected_or_harmless() {
        let events = sample_events(4);
        let file = ColumnarFile::from_rows_v1(&events);
        for len in 0..file.len() {
            ColumnarFile::parse(&file.slice(0..len))
                .and_then(|f| f.to_rows().map(|_| ()))
                .expect_err("v1 truncation must error");
        }
        for pos in 0..file.len() {
            let mut bytes = file.to_vec();
            bytes[pos] ^= 0x40;
            match ColumnarFile::parse(&Bytes::from(bytes)).and_then(|f| f.to_rows()) {
                Err(_) => {}
                Ok(back) => assert_eq!(back, events, "undetected v1 flip at byte {pos}"),
            }
        }
    }

    #[test]
    fn cost_probe_picks_the_expected_encodings() {
        // Constant run/lumi + incrementing event number: the header column
        // deltas down to ~3 bytes/row. Default (empty) events leave the
        // scalars column one long run and the fat columns all-zero counts.
        let runs: Vec<AodEvent> = (0..600)
            .map(|i| AodEvent::new(EventHeader::new(194_270, 12, 900_000 + i as u64)))
            .collect();
        let file = ColumnarFile::from_rows(&runs);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        assert_eq!(frame_tag(&file, &parsed, ColumnId::Header), TAG_DELTA);
        assert_eq!(frame_tag(&file, &parsed, ColumnId::Scalars), TAG_RLE);
        assert_eq!(frame_tag(&file, &parsed, ColumnId::ElectronP4), TAG_DELTA);
        // The all-empty fat column compresses to a handful of bytes where
        // raw spends 4 bytes per row on zero counts.
        assert!(parsed.cols[ColumnId::ElectronP4 as usize].len < 32);
        assert_eq!(parsed.to_rows().expect("decodes"), runs);

        // Scalars alternating between two distinct records: dictionary
        // territory (2 records + 1 index byte/row beats 20 bytes/row raw).
        let alternating: Vec<AodEvent> = (0..600)
            .map(|i| {
                let mut ev = AodEvent::new(EventHeader::new(1, 1, i as u64));
                ev.met = Met {
                    mex: if i % 2 == 0 { 17.25 } else { -4.5 },
                    mey: 3.0,
                };
                ev.n_tracks = 7;
                ev
            })
            .collect();
        let file = ColumnarFile::from_rows(&alternating);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        assert_eq!(frame_tag(&file, &parsed, ColumnId::Scalars), TAG_DICT);
        assert_eq!(parsed.to_rows().expect("decodes"), alternating);
    }

    #[test]
    fn mixed_encoding_file_round_trips() {
        // Heterogeneous events drive different winners per column; the
        // file must still decode exactly and expose at least two distinct
        // non-raw encodings.
        let events = sample_events(300);
        let file = ColumnarFile::from_rows(&events);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        let tags: std::collections::BTreeSet<u8> = ColumnId::ALL
            .iter()
            .map(|&id| frame_tag(&file, &parsed, id))
            .collect();
        assert!(
            tags.iter().filter(|&&t| t != TAG_RAW).count() >= 2,
            "expected a mix of encodings, got tags {tags:?}"
        );
        assert_eq!(parsed.to_rows().expect("decodes"), events);
    }

    #[test]
    fn each_forced_encoding_round_trips_at_the_record_level() {
        // 700 scalar records (rec = 20) cycling over 17 distinct values
        // with runs: exercises dictionary, delta and RLE on one input.
        let rec = 20; // Scalars stride: mex f64 ++ mey f64 ++ n_tracks u32
        let plan = delta_plan(ColumnId::Scalars).unwrap();
        let mut records = Vec::new();
        for i in 0..700u64 {
            let v = (i * i / 40) % 17;
            records.extend_from_slice(&(v as f64 * 1.5).to_le_bytes());
            records.extend_from_slice(&(-(v as f64)).to_le_bytes());
            records.extend_from_slice(&(v as u32).to_le_bytes());
        }
        let n = records.len() / rec;
        for tag in [TAG_DICT, TAG_DELTA, TAG_RLE] {
            let mut enc = BytesMut::new();
            assert!(
                encode_records(tag, &records, rec, plan, &mut enc),
                "tag {tag}"
            );
            let mut out = Vec::new();
            let mut off = 0usize;
            decode_records(
                ColumnId::Scalars,
                tag,
                &enc,
                &mut off,
                n,
                rec,
                plan,
                &mut out,
            )
            .expect("forced encoding decodes");
            assert_eq!(off, enc.len(), "tag {tag} must consume its stream exactly");
            assert_eq!(out, records, "tag {tag} round trip");
        }
        // Runs longer than MAX_RUN are split by the encoder and re-joined
        // by the decoder.
        let long_run: Vec<u8> = records[..rec].repeat(600);
        let mut enc = BytesMut::new();
        assert!(encode_records(TAG_RLE, &long_run, rec, plan, &mut enc));
        let mut out = Vec::new();
        let mut off = 0usize;
        decode_records(
            ColumnId::Scalars,
            TAG_RLE,
            &enc,
            &mut off,
            600,
            rec,
            plan,
            &mut out,
        )
        .expect("long run decodes");
        assert_eq!(out, long_run);
        // A dictionary encoder bails above 256 distinct records.
        let mut wide = Vec::new();
        for i in 0..300u32 {
            wide.extend_from_slice(&(i as f64).to_le_bytes());
            wide.extend_from_slice(&0f64.to_le_bytes());
            wide.extend_from_slice(&i.to_le_bytes());
        }
        let mut enc = BytesMut::new();
        assert!(!encode_records(TAG_DICT, &wide, rec, plan, &mut enc));
    }

    #[test]
    fn varint_edge_values_round_trip_and_corruption_errors() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v));
            let mut off = 0usize;
            assert_eq!(get_varint(&buf, &mut off).unwrap(), v);
            assert_eq!(off, buf.len());
        }
        for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Truncated mid-varint: every prefix with the continuation bit
        // still set must error, not loop or read past the end.
        let mut off = 0usize;
        assert!(get_varint(&[0x80, 0x80], &mut off).is_err());
        // An 11-byte continuation chain overflows u64.
        let mut off = 0usize;
        assert!(get_varint(&[0xFF; 11], &mut off).is_err());
        // Ten bytes whose last byte pushes past 64 bits also overflow.
        let mut over = vec![0x80u8; 9];
        over.push(0x02);
        let mut off = 0usize;
        assert!(get_varint(&over, &mut off).is_err());
    }

    #[test]
    fn parallel_decode_and_encode_are_byte_identical_at_1_2_4_threads() {
        let events = sample_events(50);
        let file = ColumnarFile::from_rows(&events);
        let sequential = ColumnarFile::parse(&file).unwrap().to_rows().unwrap();
        let sequential_bytes = AodEvent::encode_events(&sequential);
        for threads in [1usize, 2, 4] {
            let rows = decode_columns_parallel(&file, threads).expect("parallel decode");
            assert_eq!(rows, sequential, "{threads} threads");
            assert_eq!(
                AodEvent::encode_events(&rows),
                sequential_bytes,
                "{threads}-thread decode must be byte-identical to sequential"
            );
            assert_eq!(
                encode_columnar_parallel(&events, threads),
                file,
                "{threads}-thread encode must be byte-identical to sequential"
            );
        }
        // Parallel decode surfaces corruption exactly like sequential.
        let mut bad = file.to_vec();
        let pos = file.len() - 3;
        bad[pos] ^= 0xFF;
        let bad = Bytes::from(bad);
        let seq_err = ColumnarFile::parse(&bad).and_then(|f| f.to_rows()).is_err();
        assert_eq!(decode_columns_parallel(&bad, 4).is_err(), seq_err);
    }
}
