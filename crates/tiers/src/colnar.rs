//! Columnar AOD tier: the "DPCF" container.
//!
//! The row codec ([`crate::codec`]) frames whole events, so *any* query
//! pays the full decode of every field it never looks at. DPCF re-lays
//! the same AOD events out as per-field columns — the ROOT-TTree-branch
//! idiom — so a skim predicate touches only the bytes it reads: a pT cut
//! over the standard ten-column schema decodes exactly the two lepton-p4
//! columns and copies survivors with plain `memcpy`, never materializing
//! an event. This is the DPHEP argument made structural: preserved data
//! must stay cheap to query even as the access software around it keeps
//! changing, so the layout itself carries the access pattern.
//!
//! ```text
//! file   := "DPCF" version:u16le tier:u8 n_rows:u32le n_cols:u8 table frames
//! table  := n_cols × (col_id:u8 offset:u32le length:u32le digest:u64le)
//! frames := column payloads, concatenated in table order
//! ```
//!
//! Offsets are relative to the end of the table and must tile the frames
//! region exactly — any truncation, extension or table edit is caught at
//! [`ColumnarFile::parse`] before a single column byte is read. Each
//! column is independently sealed by the `digest` in its table entry
//! (a 4-lane interleaved FNV-1a, [`fnv64_wide`]), so the verifying reader
//! detects every payload bit flip while the hot skim path may skip the
//! hash exactly as the row path trusts DPEF payloads (archive-level seals
//! cover both).
//!
//! Fixed columns hold one `stride`-sized record per row; variable columns
//! hold `count:u32le` then `count × entry_size` bytes per row, walked by
//! count — there is no per-row length prefix to keep verbatim row copies
//! contiguous. Electron/muon/jet objects are split into a *p4* column
//! (the four-momentum every kinematic cut reads) and an *id* column (the
//! identification payload cuts almost never read).

use bytes::{BufMut, Bytes, BytesMut};
use daspos_hep::event::EventHeader;
use daspos_hep::fourvec::FourVector;
use daspos_obs::MetricsRegistry;
use daspos_reco::objects::{
    AodEvent, Electron, Jet, Met, Muon, Photon, TwoProngCandidate,
};

use crate::codec::{fnv64, CodecError, MAX_COUNT};
use crate::skim::{MassHypothesis, Selection, SkimReport, SlimSpec};
use crate::tier::DataTier;

/// Magic of the columnar container: "DASPOS Columnar File".
pub const COLUMNAR_MAGIC: &[u8; 4] = b"DPCF";

/// Current columnar format version.
pub const COLUMNAR_VERSION: u16 = 1;

/// Number of columns in the AOD schema.
pub const N_COLUMNS: usize = 10;

/// magic + version + tier + n_rows + n_cols.
const HEADER_LEN: usize = 4 + 2 + 1 + 4 + 1;

/// col_id + offset + length + digest.
const TABLE_ENTRY_LEN: usize = 1 + 4 + 4 + 8;

/// Byte offset of the frames region (end of the column table).
const FRAMES_BASE: usize = HEADER_LEN + N_COLUMNS * TABLE_ENTRY_LEN;

/// Which physical layout a tier file uses. The logical content — events,
/// skim semantics, provenance — is identical; only the byte layout and
/// therefore the access cost of partial reads differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierFormat {
    /// Row-major DPEF event frames (the default; archival baseline).
    #[default]
    Row,
    /// Column-major DPCF (predicate-pushdown skims).
    Columnar,
}

impl TierFormat {
    /// Stable name, used by the CLI switch.
    pub fn name(self) -> &'static str {
        match self {
            TierFormat::Row => "row",
            TierFormat::Columnar => "columnar",
        }
    }

    /// Inverse of [`TierFormat::name`].
    pub fn parse(s: &str) -> Option<TierFormat> {
        Some(match s {
            "row" => TierFormat::Row,
            "columnar" => TierFormat::Columnar,
            _ => return None,
        })
    }
}

/// 4-lane word-interleaved FNV-style mix — the column digest.
///
/// Plain [`fnv64`] is a strict serial dependency chain (one xor-multiply
/// per byte), which would make sealing skim output as expensive as the
/// row re-encode the columnar path exists to avoid. Each lane absorbs a
/// full little-endian u64 word per step (xor then multiply by the FNV
/// prime), and the four lanes stripe over 32-byte blocks, so the four
/// multiplies retire in parallel and the digest moves at word speed
/// instead of byte speed. A single corrupted word is always detected:
/// `lane ← (lane ⊕ w) · prime` is a bijection of `lane` for fixed `w`
/// and injective in `w` for fixed `lane`, so the damaged lane's final
/// state must differ. Trailing bytes (len % 32) feed the lanes
/// round-robin byte-wise; the lane states and the total length are
/// folded through a final plain [`fnv64`].
pub fn fnv64_wide(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut lanes = [
        OFFSET,
        OFFSET.wrapping_mul(PRIME),
        OFFSET.wrapping_mul(PRIME).wrapping_mul(PRIME),
        OFFSET
            .wrapping_mul(PRIME)
            .wrapping_mul(PRIME)
            .wrapping_mul(PRIME),
    ];
    let mut chunks = data.chunks_exact(32);
    for c in chunks.by_ref() {
        for (k, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(c[k * 8..k * 8 + 8].try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    for (i, byte) in chunks.remainder().iter().enumerate() {
        let lane = &mut lanes[i % 4];
        *lane ^= u64::from(*byte);
        *lane = lane.wrapping_mul(PRIME);
    }
    let mut tail = [0u8; 40];
    for (i, lane) in lanes.iter().enumerate() {
        tail[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
    }
    tail[32..40].copy_from_slice(&(data.len() as u64).to_le_bytes());
    fnv64(&tail)
}

/// The ten columns of the AOD schema, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ColumnId {
    /// Event coordinates: run, lumi, event (fixed 16 B/row).
    Header = 0,
    /// Electron four-momenta (32 B/entry).
    ElectronP4 = 1,
    /// Electron identification: charge, E/p, isolation (17 B/entry).
    ElectronId = 2,
    /// Muon four-momenta (32 B/entry).
    MuonP4 = 3,
    /// Muon identification: charge, stations, isolation (10 B/entry).
    MuonId = 4,
    /// Photons: four-momentum + isolation (40 B/entry).
    Photon = 5,
    /// Jet four-momenta (32 B/entry).
    JetP4 = 6,
    /// Jet identification: constituents, EM fraction (12 B/entry).
    JetId = 7,
    /// Two-prong candidates (96 B/entry).
    Candidate = 8,
    /// Event scalars: MET x/y, track multiplicity (fixed 20 B/row).
    Scalars = 9,
}

/// Physical layout of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColumnLayout {
    /// One `stride`-byte record per row.
    Fixed(usize),
    /// `count:u32` then `count × entry` bytes per row.
    Var(usize),
}

impl ColumnId {
    /// All columns in table order.
    pub const ALL: [ColumnId; N_COLUMNS] = [
        ColumnId::Header,
        ColumnId::ElectronP4,
        ColumnId::ElectronId,
        ColumnId::MuonP4,
        ColumnId::MuonId,
        ColumnId::Photon,
        ColumnId::JetP4,
        ColumnId::JetId,
        ColumnId::Candidate,
        ColumnId::Scalars,
    ];

    /// Stable short name (diagnostics, obs counters).
    pub fn name(self) -> &'static str {
        match self {
            ColumnId::Header => "header",
            ColumnId::ElectronP4 => "e-p4",
            ColumnId::ElectronId => "e-id",
            ColumnId::MuonP4 => "mu-p4",
            ColumnId::MuonId => "mu-id",
            ColumnId::Photon => "gamma",
            ColumnId::JetP4 => "jet-p4",
            ColumnId::JetId => "jet-id",
            ColumnId::Candidate => "cand",
            ColumnId::Scalars => "scalars",
        }
    }

    fn layout(self) -> ColumnLayout {
        match self {
            ColumnId::Header => ColumnLayout::Fixed(16),
            ColumnId::ElectronP4 => ColumnLayout::Var(32),
            ColumnId::ElectronId => ColumnLayout::Var(17),
            ColumnId::MuonP4 => ColumnLayout::Var(32),
            ColumnId::MuonId => ColumnLayout::Var(10),
            ColumnId::Photon => ColumnLayout::Var(40),
            ColumnId::JetP4 => ColumnLayout::Var(32),
            ColumnId::JetId => ColumnLayout::Var(12),
            ColumnId::Candidate => ColumnLayout::Var(96),
            ColumnId::Scalars => ColumnLayout::Fixed(20),
        }
    }
}

/// One validated table entry, with the offset made absolute.
#[derive(Debug, Clone, Copy)]
struct ColMeta {
    offset: usize,
    len: usize,
    digest: u64,
}

// --- Little-endian slice readers (columns are random-access, so these
// --- work on offsets rather than a consuming cursor) ------------------------

#[inline]
fn rd_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}
#[inline]
fn rd_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}
#[inline]
fn rd_f64(b: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}
#[inline]
fn rd_p4(b: &[u8], off: usize) -> FourVector {
    FourVector {
        px: rd_f64(b, off),
        py: rd_f64(b, off + 8),
        pz: rd_f64(b, off + 16),
        e: rd_f64(b, off + 24),
    }
}

/// A parsed DPCF file: header and column table validated, column payloads
/// untouched. Reading is lazy — [`ColumnarFile::column`] decodes (and
/// digest-checks) exactly one column, so a query pays only for the bytes
/// it asks for.
#[derive(Debug, Clone)]
pub struct ColumnarFile {
    data: Bytes,
    n_rows: usize,
    cols: [ColMeta; N_COLUMNS],
}

impl ColumnarFile {
    /// Validate the header and column table.
    ///
    /// The table must list the ten schema columns in canonical order with
    /// contiguous offsets that tile the frames region exactly; fixed
    /// columns must have length `n_rows × stride`. Any truncated,
    /// extended or table-edited file fails here, before column reads.
    pub fn parse(data: &Bytes) -> Result<ColumnarFile, CodecError> {
        let d: &[u8] = data;
        if d.len() < HEADER_LEN {
            return Err(CodecError::UnexpectedEof);
        }
        if &d[0..4] != COLUMNAR_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([d[4], d[5]]);
        if version != COLUMNAR_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: COLUMNAR_VERSION,
            });
        }
        if d[6] != DataTier::Aod.code() {
            return Err(CodecError::WrongTier {
                found: d[6],
                expected: DataTier::Aod.code(),
            });
        }
        let n_rows = rd_u32(d, 7);
        if n_rows > MAX_COUNT {
            return Err(CodecError::Corrupt(format!(
                "row count {n_rows} exceeds sanity limit"
            )));
        }
        let n_rows = n_rows as usize;
        if d[11] as usize != N_COLUMNS {
            return Err(CodecError::Corrupt(format!(
                "expected {N_COLUMNS} columns, found {}",
                d[11]
            )));
        }
        if d.len() < FRAMES_BASE {
            return Err(CodecError::UnexpectedEof);
        }
        let mut cols = [ColMeta { offset: 0, len: 0, digest: 0 }; N_COLUMNS];
        let mut expect_off = 0usize;
        for (i, id) in ColumnId::ALL.iter().enumerate() {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            if d[e] as usize != i {
                return Err(CodecError::Corrupt(format!(
                    "column table out of order: slot {i} holds id {}",
                    d[e]
                )));
            }
            let offset = rd_u32(d, e + 1) as usize;
            let len = rd_u32(d, e + 5) as usize;
            let digest = rd_u64(d, e + 9);
            if offset != expect_off {
                return Err(CodecError::Corrupt(format!(
                    "column '{}' offset {offset} breaks the frame tiling \
                     (expected {expect_off})",
                    id.name()
                )));
            }
            if let ColumnLayout::Fixed(stride) = id.layout() {
                if len != n_rows * stride {
                    return Err(CodecError::Corrupt(format!(
                        "fixed column '{}' is {len} bytes for {n_rows} \
                         rows of {stride}",
                        id.name()
                    )));
                }
            } else if len < 4 * n_rows {
                return Err(CodecError::Corrupt(format!(
                    "column '{}' is {len} bytes, too short for {n_rows} \
                     row counts",
                    id.name()
                )));
            }
            cols[i] = ColMeta {
                offset: FRAMES_BASE + offset,
                len,
                digest,
            };
            expect_off += len;
        }
        if FRAMES_BASE + expect_off != d.len() {
            return Err(CodecError::Corrupt(format!(
                "column frames cover {expect_off} bytes but the file \
                 carries {}",
                d.len() - FRAMES_BASE
            )));
        }
        Ok(ColumnarFile {
            data: data.clone(),
            n_rows,
            cols,
        })
    }

    /// Rows (events) in the file.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Open one column with its digest verified — the archival read path.
    pub fn column(&self, id: ColumnId) -> Result<ColumnReader, CodecError> {
        self.open(id, true)
    }

    /// Open one column. `verify` checks the table digest over the payload
    /// before the structural walk; the hot skim path skips it, exactly as
    /// row-format DPEF payloads are trusted between archive seals.
    fn open(&self, id: ColumnId, verify: bool) -> Result<ColumnReader, CodecError> {
        let meta = self.cols[id as usize];
        let payload = self.data.slice(meta.offset..meta.offset + meta.len);
        if verify {
            let actual = fnv64_wide(&payload);
            if actual != meta.digest {
                return Err(CodecError::SealMismatch {
                    stored: meta.digest,
                    actual,
                });
            }
        }
        let layout = id.layout();
        let starts = match layout {
            ColumnLayout::Fixed(_) => Vec::new(),
            ColumnLayout::Var(entry) => {
                let b: &[u8] = &payload;
                let mut starts = Vec::with_capacity(self.n_rows + 1);
                let mut off = 0usize;
                for _ in 0..self.n_rows {
                    starts.push(off as u32);
                    if off + 4 > b.len() {
                        return Err(CodecError::UnexpectedEof);
                    }
                    let count = rd_u32(b, off);
                    if count > MAX_COUNT {
                        return Err(CodecError::Corrupt(format!(
                            "count {count} exceeds sanity limit"
                        )));
                    }
                    let row_len = 4 + count as usize * entry;
                    if b.len() - off < row_len {
                        return Err(CodecError::UnexpectedEof);
                    }
                    off += row_len;
                }
                if off != b.len() {
                    return Err(CodecError::Corrupt(format!(
                        "column '{}' has {} trailing bytes",
                        id.name(),
                        b.len() - off
                    )));
                }
                starts.push(off as u32);
                starts
            }
        };
        Ok(ColumnReader {
            id,
            layout,
            payload,
            starts,
        })
    }

    /// Open every column verified and cross-check the paired p4/id counts
    /// — the full-integrity read the verifier and faultlab lean on.
    fn open_checked(&self) -> Result<[ColumnReader; N_COLUMNS], CodecError> {
        let mut readers: [Option<ColumnReader>; N_COLUMNS] = Default::default();
        for id in ColumnId::ALL {
            readers[id as usize] = Some(self.column(id)?);
        }
        let readers = readers.map(|r| r.expect("all columns opened"));
        for (p4, id) in [
            (ColumnId::ElectronP4, ColumnId::ElectronId),
            (ColumnId::MuonP4, ColumnId::MuonId),
            (ColumnId::JetP4, ColumnId::JetId),
        ] {
            let (a, b) = (&readers[p4 as usize], &readers[id as usize]);
            for row in 0..self.n_rows {
                if a.count(row) != b.count(row) {
                    return Err(CodecError::Corrupt(format!(
                        "columns '{}' and '{}' disagree on the entry \
                         count at row {row}",
                        p4.name(),
                        id.name()
                    )));
                }
            }
        }
        Ok(readers)
    }

    /// Fully verify the file: every column digest, every structural walk,
    /// every cross-column count invariant.
    pub fn verify(&self) -> Result<(), CodecError> {
        self.open_checked().map(|_| ())
    }

    /// Decode every row back into AOD events — the verifying, archival
    /// inverse of [`from_rows`]. Byte-identical round trip:
    /// `AodEvent::encode_events(&file.to_rows()?)` reproduces the row
    /// file the events came from, and `from_rows(&file.to_rows()?)`
    /// reproduces this file.
    pub fn to_rows(&self) -> Result<Vec<AodEvent>, CodecError> {
        let r = self.open_checked()?;
        let mut out = Vec::with_capacity(self.n_rows);
        for row in 0..self.n_rows {
            out.push(decode_row(&r, row, &SlimSpec::keep_all()));
        }
        Ok(out)
    }

    /// Encode AOD events into a columnar file. Deterministic: the same
    /// events always produce the same bytes.
    ///
    /// Panics if the row count exceeds the u32 field — truncating the
    /// count would archive a lie, same policy as the row codec.
    pub fn from_rows(events: &[AodEvent]) -> Bytes {
        let n_rows = u32::try_from(events.len()).unwrap_or_else(|_| {
            panic!("event count {} exceeds the u32 DPCF row field", events.len())
        });
        let mut cols: [BytesMut; N_COLUMNS] = Default::default();
        for ev in events {
            let c = &mut cols;
            c[ColumnId::Header as usize].put_u32_le(ev.header.run.0);
            c[ColumnId::Header as usize].put_u32_le(ev.header.lumi_block.0);
            c[ColumnId::Header as usize].put_u64_le(ev.header.event.0);

            let ep4 = &mut c[ColumnId::ElectronP4 as usize];
            ep4.put_u32_le(ev.electrons.len() as u32);
            for e in &ev.electrons {
                put_p4(ep4, &e.momentum);
            }
            let eid = &mut c[ColumnId::ElectronId as usize];
            eid.put_u32_le(ev.electrons.len() as u32);
            for e in &ev.electrons {
                eid.put_i8(e.charge);
                eid.put_f64_le(e.e_over_p);
                eid.put_f64_le(e.isolation);
            }

            let mp4 = &mut c[ColumnId::MuonP4 as usize];
            mp4.put_u32_le(ev.muons.len() as u32);
            for m in &ev.muons {
                put_p4(mp4, &m.momentum);
            }
            let mid = &mut c[ColumnId::MuonId as usize];
            mid.put_u32_le(ev.muons.len() as u32);
            for m in &ev.muons {
                mid.put_i8(m.charge);
                mid.put_u8(m.n_stations);
                mid.put_f64_le(m.isolation);
            }

            let ph = &mut c[ColumnId::Photon as usize];
            ph.put_u32_le(ev.photons.len() as u32);
            for p in &ev.photons {
                put_p4(ph, &p.momentum);
                ph.put_f64_le(p.isolation);
            }

            let jp4 = &mut c[ColumnId::JetP4 as usize];
            jp4.put_u32_le(ev.jets.len() as u32);
            for j in &ev.jets {
                put_p4(jp4, &j.momentum);
            }
            let jid = &mut c[ColumnId::JetId as usize];
            jid.put_u32_le(ev.jets.len() as u32);
            for j in &ev.jets {
                jid.put_u32_le(j.n_constituents);
                jid.put_f64_le(j.em_fraction);
            }

            let cand = &mut c[ColumnId::Candidate as usize];
            cand.put_u32_le(ev.candidates.len() as u32);
            for t in &ev.candidates {
                put_p4(cand, &t.vertex);
                cand.put_f64_le(t.flight_xy);
                cand.put_f64_le(t.pt);
                cand.put_f64_le(t.eta);
                cand.put_f64_le(t.mass_pipi);
                cand.put_f64_le(t.mass_ppi);
                cand.put_f64_le(t.mass_kpi);
                cand.put_f64_le(t.proper_time_d0_ns);
                cand.put_u32_le(t.track_indices.0);
                cand.put_u32_le(t.track_indices.1);
            }

            let s = &mut c[ColumnId::Scalars as usize];
            s.put_f64_le(ev.met.mex);
            s.put_f64_le(ev.met.mey);
            s.put_u32_le(ev.n_tracks);
        }
        assemble_file(n_rows, &cols)
    }
}

#[inline]
fn put_p4(buf: &mut BytesMut, v: &FourVector) {
    buf.put_f64_le(v.px);
    buf.put_f64_le(v.py);
    buf.put_f64_le(v.pz);
    buf.put_f64_le(v.e);
}

/// Stamp the header, table (with digests) and frames into one buffer.
fn assemble_file(n_rows: u32, cols: &[BytesMut; N_COLUMNS]) -> Bytes {
    let total: usize = cols.iter().map(|c| c.len()).sum();
    let mut buf = BytesMut::with_capacity(FRAMES_BASE + total);
    buf.put_slice(COLUMNAR_MAGIC);
    buf.put_u16_le(COLUMNAR_VERSION);
    buf.put_u8(DataTier::Aod.code());
    buf.put_u32_le(n_rows);
    buf.put_u8(N_COLUMNS as u8);
    let mut off = 0u32;
    for (i, c) in cols.iter().enumerate() {
        let len = u32::try_from(c.len()).unwrap_or_else(|_| {
            panic!("column {i} of {} bytes exceeds the u32 length field", c.len())
        });
        buf.put_u8(i as u8);
        buf.put_u32_le(off);
        buf.put_u32_le(len);
        buf.put_u64_le(fnv64_wide(c));
        off = off
            .checked_add(len)
            .expect("columnar frames exceed the u32 offset field");
    }
    for c in cols {
        buf.put_slice(c);
    }
    buf.freeze()
}

/// A decoded (structurally walked) column. Zero-copy: `payload` is a
/// window into the file buffer; `starts` indexes row extents for
/// variable columns so row access is O(1) after the one walk.
#[derive(Debug, Clone)]
pub struct ColumnReader {
    id: ColumnId,
    layout: ColumnLayout,
    payload: Bytes,
    starts: Vec<u32>,
}

impl ColumnReader {
    /// Which column this reads.
    pub fn id(&self) -> ColumnId {
        self.id
    }

    /// Entries in `row` (1 for fixed columns).
    #[inline]
    pub fn count(&self, row: usize) -> usize {
        match self.layout {
            ColumnLayout::Fixed(_) => 1,
            ColumnLayout::Var(entry) => {
                (self.starts[row + 1] - self.starts[row]) as usize / entry
                // count prefix: (len - 4) / entry, but 4/entry == 0 only
                // when entry > 4, which holds for every schema column.
            }
        }
    }

    /// The fixed-stride record of `row`.
    #[inline]
    pub fn fixed_row(&self, row: usize) -> &[u8] {
        let stride = match self.layout {
            ColumnLayout::Fixed(s) => s,
            ColumnLayout::Var(_) => unreachable!("fixed_row on var column"),
        };
        &self.payload[row * stride..(row + 1) * stride]
    }

    /// The packed entries of `row` (count prefix stripped).
    #[inline]
    pub fn entries(&self, row: usize) -> &[u8] {
        &self.payload[self.starts[row] as usize + 4..self.starts[row + 1] as usize]
    }
}

// Entry strides, used by the decoders below.
const E_ID_STRIDE: usize = 17;
const MU_ID_STRIDE: usize = 10;
const PHOTON_STRIDE: usize = 40;
const JET_ID_STRIDE: usize = 12;
const CAND_STRIDE: usize = 96;
const P4_STRIDE: usize = 32;

/// Materialize one row with a slim applied (dropped collections are
/// never decoded). `keep_all` gives the exact stored event.
fn decode_row(r: &[ColumnReader; N_COLUMNS], row: usize, slim: &SlimSpec) -> AodEvent {
    let hb = r[ColumnId::Header as usize].fixed_row(row);
    let header = EventHeader::new(rd_u32(hb, 0), rd_u32(hb, 4), rd_u64(hb, 8));
    let mut ev = AodEvent::new(header);
    if slim.keep_electrons {
        let p4 = r[ColumnId::ElectronP4 as usize].entries(row);
        let id = r[ColumnId::ElectronId as usize].entries(row);
        let n = r[ColumnId::ElectronP4 as usize].count(row);
        ev.electrons.reserve(n);
        for i in 0..n {
            ev.electrons.push(Electron {
                momentum: rd_p4(p4, i * P4_STRIDE),
                charge: id[i * E_ID_STRIDE] as i8,
                e_over_p: rd_f64(id, i * E_ID_STRIDE + 1),
                isolation: rd_f64(id, i * E_ID_STRIDE + 9),
            });
        }
    }
    if slim.keep_muons {
        let p4 = r[ColumnId::MuonP4 as usize].entries(row);
        let id = r[ColumnId::MuonId as usize].entries(row);
        let n = r[ColumnId::MuonP4 as usize].count(row);
        ev.muons.reserve(n);
        for i in 0..n {
            ev.muons.push(Muon {
                momentum: rd_p4(p4, i * P4_STRIDE),
                charge: id[i * MU_ID_STRIDE] as i8,
                n_stations: id[i * MU_ID_STRIDE + 1],
                isolation: rd_f64(id, i * MU_ID_STRIDE + 2),
            });
        }
    }
    if slim.keep_photons {
        let b = r[ColumnId::Photon as usize].entries(row);
        let n = r[ColumnId::Photon as usize].count(row);
        ev.photons.reserve(n);
        for i in 0..n {
            ev.photons.push(Photon {
                momentum: rd_p4(b, i * PHOTON_STRIDE),
                isolation: rd_f64(b, i * PHOTON_STRIDE + 32),
            });
        }
    }
    let n_jets = if slim.max_jets == 0 {
        0 // the jet columns may not even be open; don't touch them
    } else {
        r[ColumnId::JetP4 as usize].count(row).min(slim.max_jets as usize)
    };
    if n_jets > 0 {
        let p4 = r[ColumnId::JetP4 as usize].entries(row);
        let id = r[ColumnId::JetId as usize].entries(row);
        ev.jets.reserve(n_jets);
        for i in 0..n_jets {
            ev.jets.push(Jet {
                momentum: rd_p4(p4, i * P4_STRIDE),
                n_constituents: rd_u32(id, i * JET_ID_STRIDE),
                em_fraction: rd_f64(id, i * JET_ID_STRIDE + 4),
            });
        }
    }
    if slim.keep_candidates {
        let b = r[ColumnId::Candidate as usize].entries(row);
        let n = r[ColumnId::Candidate as usize].count(row);
        ev.candidates.reserve(n);
        for i in 0..n {
            let o = i * CAND_STRIDE;
            ev.candidates.push(TwoProngCandidate {
                vertex: rd_p4(b, o),
                flight_xy: rd_f64(b, o + 32),
                pt: rd_f64(b, o + 40),
                eta: rd_f64(b, o + 48),
                mass_pipi: rd_f64(b, o + 56),
                mass_ppi: rd_f64(b, o + 64),
                mass_kpi: rd_f64(b, o + 72),
                proper_time_d0_ns: rd_f64(b, o + 80),
                track_indices: (rd_u32(b, o + 88), rd_u32(b, o + 92)),
            });
        }
    }
    let s = r[ColumnId::Scalars as usize].fixed_row(row);
    ev.met = Met {
        mex: rd_f64(s, 0),
        mey: rd_f64(s, 8),
    };
    ev.n_tracks = rd_u32(s, 16);
    ev
}

// --- Predicate-pushdown skim ------------------------------------------------

/// Lazily opened columns for one skim pass. Tracks which columns were
/// actually touched so the `tier.columnar.cols_read` / `cols_skipped`
/// counters report the real pushdown, not the schema width.
struct ColumnCache<'a> {
    file: &'a ColumnarFile,
    readers: [Option<ColumnReader>; N_COLUMNS],
}

impl<'a> ColumnCache<'a> {
    fn new(file: &'a ColumnarFile) -> Self {
        ColumnCache {
            file,
            readers: Default::default(),
        }
    }

    /// Open (trusted, structural walk only) if not already open.
    fn ensure(&mut self, id: ColumnId) -> Result<(), CodecError> {
        if self.readers[id as usize].is_none() {
            self.readers[id as usize] = Some(self.file.open(id, false)?);
        }
        Ok(())
    }

    /// Borrow a column [`ColumnCache::ensure`]d earlier.
    fn get(&self, id: ColumnId) -> &ColumnReader {
        self.readers[id as usize]
            .as_ref()
            .expect("column opened before use")
    }

    fn opened(&self) -> usize {
        self.readers.iter().filter(|r| r.is_some()).count()
    }
}

/// Evaluate a selection into a per-row keep mask, opening only the
/// columns the predicate actually reads. Leaf semantics mirror
/// [`Selection::passes`] operation-for-operation (same `sqrt`-then-compare,
/// same `>=`), so the mask equals the row-path verdicts bit-for-bit.
fn eval_mask(cache: &mut ColumnCache<'_>, sel: &Selection) -> Result<Vec<bool>, CodecError> {
    let n_rows = cache.file.n_rows;
    Ok(match sel {
        Selection::All => vec![true; n_rows],
        Selection::NLeptons { n, pt } => {
            cache.ensure(ColumnId::ElectronP4)?;
            cache.ensure(ColumnId::MuonP4)?;
            let cols = [cache.get(ColumnId::ElectronP4), cache.get(ColumnId::MuonP4)];
            (0..n_rows)
                .map(|row| {
                    let mut count = 0u32;
                    for col in cols {
                        let b = col.entries(row);
                        for i in 0..col.count(row) {
                            let px = rd_f64(b, i * P4_STRIDE);
                            let py = rd_f64(b, i * P4_STRIDE + 8);
                            if (px * px + py * py).sqrt() >= *pt {
                                count += 1;
                            }
                        }
                    }
                    count >= *n
                })
                .collect()
        }
        Selection::NPhotons { n, pt } => {
            cache.ensure(ColumnId::Photon)?;
            let col = cache.get(ColumnId::Photon);
            count_mask(col, n_rows, PHOTON_STRIDE, *n, *pt)
        }
        Selection::NJets { n, pt } => {
            cache.ensure(ColumnId::JetP4)?;
            let col = cache.get(ColumnId::JetP4);
            count_mask(col, n_rows, P4_STRIDE, *n, *pt)
        }
        Selection::MetAbove(min) => {
            cache.ensure(ColumnId::Scalars)?;
            let col = cache.get(ColumnId::Scalars);
            (0..n_rows)
                .map(|row| {
                    let s = col.fixed_row(row);
                    let (mex, mey) = (rd_f64(s, 0), rd_f64(s, 8));
                    (mex * mex + mey * mey).sqrt() >= *min
                })
                .collect()
        }
        Selection::CandidateMass {
            hypothesis,
            mass,
            window,
        } => {
            cache.ensure(ColumnId::Candidate)?;
            let col = cache.get(ColumnId::Candidate);
            let off = match hypothesis {
                MassHypothesis::PiPi => 56,
                MassHypothesis::PPi => 64,
                MassHypothesis::KPi => 72,
            };
            (0..n_rows)
                .map(|row| {
                    let b = col.entries(row);
                    (0..col.count(row)).any(|i| {
                        (rd_f64(b, i * CAND_STRIDE + off) - mass).abs() <= *window
                    })
                })
                .collect()
        }
        Selection::NTracksAtLeast(n) => {
            cache.ensure(ColumnId::Scalars)?;
            let col = cache.get(ColumnId::Scalars);
            (0..n_rows)
                .map(|row| rd_u32(col.fixed_row(row), 16) >= *n)
                .collect()
        }
        Selection::And(a, b) => {
            let ma = eval_mask(cache, a)?;
            let mb = eval_mask(cache, b)?;
            ma.iter().zip(&mb).map(|(x, y)| *x && *y).collect()
        }
        Selection::Or(a, b) => {
            let ma = eval_mask(cache, a)?;
            let mb = eval_mask(cache, b)?;
            ma.iter().zip(&mb).map(|(x, y)| *x || *y).collect()
        }
        Selection::Not(a) => {
            let ma = eval_mask(cache, a)?;
            ma.iter().map(|x| !*x).collect()
        }
    })
}

/// Mask for "at least `n` entries with four-momentum pT ≥ `pt`" over one
/// var column whose entries start with a four-vector.
fn count_mask(col: &ColumnReader, n_rows: usize, stride: usize, n: u32, pt: f64) -> Vec<bool> {
    (0..n_rows)
        .map(|row| {
            let b = col.entries(row);
            let mut count = 0u32;
            for i in 0..col.count(row) {
                let px = rd_f64(b, i * stride);
                let py = rd_f64(b, i * stride + 8);
                if (px * px + py * py).sqrt() >= pt {
                    count += 1;
                }
            }
            count >= n
        })
        .collect()
}

/// Predicate-pushdown skim+slim over a columnar file.
///
/// The selection opens only the columns its leaves read; survivors are
/// carried into the output by verbatim row copies (no event is ever
/// decoded), slim-dropped collections become empty rows without their
/// source column being touched at all, and the jet cap truncates by
/// entry arithmetic. The surviving *events* are exactly those
/// [`crate::skim::skim_slim_streaming`] keeps over the row encoding of
/// the same data; byte accounting in the report is per-format (file
/// sizes), since the two layouts price the same events differently.
///
/// When `registry` is given, `tier.columnar.cols_read` /
/// `tier.columnar.cols_skipped` count the columns the pass did and did
/// not open — a deterministic function of the selection and slim.
pub fn skim_slim_columnar(
    file: &Bytes,
    selection: &Selection,
    slim: &SlimSpec,
    registry: Option<&MetricsRegistry>,
) -> Result<(Bytes, SkimReport), CodecError> {
    skim_columnar_core(file, selection, slim, registry, None)
}

/// [`skim_slim_columnar`] with a per-survivor callback receiving each
/// slimmed event (the workflow fills the analysis ntuple with it). Only
/// survivors are materialized, and only their kept columns are decoded.
pub fn skim_slim_columnar_with(
    file: &Bytes,
    selection: &Selection,
    slim: &SlimSpec,
    registry: Option<&MetricsRegistry>,
    mut on_survivor: impl FnMut(&AodEvent),
) -> Result<(Bytes, SkimReport), CodecError> {
    skim_columnar_core(file, selection, slim, registry, Some(&mut on_survivor))
}

fn skim_columnar_core(
    file: &Bytes,
    selection: &Selection,
    slim: &SlimSpec,
    registry: Option<&MetricsRegistry>,
    on_survivor: Option<&mut dyn FnMut(&AodEvent)>,
) -> Result<(Bytes, SkimReport), CodecError> {
    let cf = ColumnarFile::parse(file)?;
    let mut cache = ColumnCache::new(&cf);
    let mask = eval_mask(&mut cache, selection)?;

    // Columns the output (and the survivor callback) needs.
    let keep: [bool; N_COLUMNS] = {
        let mut k = [false; N_COLUMNS];
        k[ColumnId::Header as usize] = true;
        k[ColumnId::Scalars as usize] = true;
        k[ColumnId::ElectronP4 as usize] = slim.keep_electrons;
        k[ColumnId::ElectronId as usize] = slim.keep_electrons;
        k[ColumnId::MuonP4 as usize] = slim.keep_muons;
        k[ColumnId::MuonId as usize] = slim.keep_muons;
        k[ColumnId::Photon as usize] = slim.keep_photons;
        k[ColumnId::JetP4 as usize] = slim.max_jets > 0;
        k[ColumnId::JetId as usize] = slim.max_jets > 0;
        k[ColumnId::Candidate as usize] = slim.keep_candidates;
        k
    };
    for (i, kept) in keep.iter().enumerate() {
        if *kept {
            cache.ensure(ColumnId::ALL[i])?;
        }
    }

    let survivors: Vec<u32> = mask
        .iter()
        .enumerate()
        .filter_map(|(row, keep)| keep.then_some(row as u32))
        .collect();
    let n_out = survivors.len();

    // Consecutive surviving rows are contiguous in every column frame,
    // so each run of the mask is one memcpy per column instead of one
    // per row — on low-rejection skims this collapses ~n_rows copies
    // into a handful.
    let runs: Vec<(usize, usize)> = {
        let mut runs = Vec::new();
        let mut it = survivors.iter().peekable();
        while let Some(&start) = it.next() {
            let mut end = start;
            while it.peek().is_some_and(|&&next| next == end + 1) {
                end = *it.next().expect("peeked");
            }
            runs.push((start as usize, end as usize + 1));
        }
        runs
    };

    let mut out_cols: [BytesMut; N_COLUMNS] = Default::default();
    for (i, id) in ColumnId::ALL.iter().enumerate() {
        let out = &mut out_cols[i];
        if !keep[i] {
            // Dropped collection: every surviving row becomes count = 0,
            // without ever opening the source column.
            out.reserve(n_out * 4);
            for _ in 0..n_out {
                out.put_u32_le(0);
            }
            continue;
        }
        let col = cache.get(*id);
        match id.layout() {
            ColumnLayout::Fixed(stride) => {
                out.reserve(n_out * stride);
                for &(a, b) in &runs {
                    out.put_slice(&col.payload[a * stride..b * stride]);
                }
            }
            ColumnLayout::Var(entry) => {
                let truncate_jets = matches!(id, ColumnId::JetP4 | ColumnId::JetId)
                    && slim.max_jets != u32::MAX;
                if truncate_jets {
                    let max = slim.max_jets as usize;
                    out.reserve(n_out * (4 + max * entry));
                    for &(a, b) in &runs {
                        // Within a run, stretches of rows already under
                        // the jet cap copy verbatim in one slice; only
                        // rows that actually truncate go entry-by-entry.
                        let mut row = a;
                        while row < b {
                            if col.count(row) <= max {
                                let start = row;
                                while row < b && col.count(row) <= max {
                                    row += 1;
                                }
                                out.put_slice(
                                    &col.payload
                                        [col.starts[start] as usize..col.starts[row] as usize],
                                );
                            } else {
                                out.put_u32_le(max as u32);
                                out.put_slice(&col.entries(row)[..max * entry]);
                                row += 1;
                            }
                        }
                    }
                } else {
                    let total: usize = runs
                        .iter()
                        .map(|&(a, b)| (col.starts[b] - col.starts[a]) as usize)
                        .sum();
                    out.reserve(total);
                    for &(a, b) in &runs {
                        out.put_slice(
                            &col.payload[col.starts[a] as usize..col.starts[b] as usize],
                        );
                    }
                }
            }
        }
    }

    if let Some(cb) = on_survivor {
        // Materialize survivors (slimmed) straight off the kept input
        // columns — non-survivors and dropped collections never decode.
        let readers: [ColumnReader; N_COLUMNS] = {
            let mut rs: [Option<ColumnReader>; N_COLUMNS] = Default::default();
            for (i, slot) in cache.readers.iter().enumerate() {
                rs[i] = match slot {
                    Some(r) => Some(r.clone()),
                    // decode_row only touches kept columns; placeholder
                    // readers for dropped ones keep the array total.
                    None => Some(ColumnReader {
                        id: ColumnId::ALL[i],
                        layout: ColumnId::ALL[i].layout(),
                        payload: Bytes::new(),
                        starts: Vec::new(),
                    }),
                };
            }
            rs.map(|r| r.expect("reader slot filled"))
        };
        for &row in &survivors {
            let ev = decode_row(&readers, row as usize, slim);
            cb(&ev);
        }
    }

    if let Some(reg) = registry {
        let read = cache.opened() as u64;
        reg.counter("tier.columnar.cols_read").add(read);
        reg.counter("tier.columnar.cols_skipped")
            .add(N_COLUMNS as u64 - read);
    }

    let out = assemble_file(n_out as u32, &out_cols);
    let report = SkimReport {
        events_in: cf.n_rows as u64,
        events_out: n_out as u64,
        bytes_in: file.len() as u64,
        bytes_out: out.len() as u64,
    };
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encodable;
    use crate::skim::skim_slim;

    fn sample_events(n: usize) -> Vec<AodEvent> {
        (0..n)
            .map(|i| {
                let mut ev = AodEvent::new(EventHeader::new(
                    194_270 + (i / 7) as u32,
                    1 + (i % 5) as u32,
                    900_000 + i as u64,
                ));
                for k in 0..(i % 3) {
                    ev.electrons.push(Electron {
                        momentum: FourVector {
                            px: 11.0 + i as f64 + k as f64,
                            py: -3.5 * (k as f64 + 1.0),
                            pz: 20.0 - i as f64,
                            e: 40.0 + i as f64,
                        },
                        charge: if k % 2 == 0 { 1 } else { -1 },
                        e_over_p: 0.97 + 0.01 * k as f64,
                        isolation: 0.04 * k as f64,
                    });
                }
                for k in 0..((i + 1) % 4) {
                    ev.muons.push(Muon {
                        momentum: FourVector {
                            px: -8.0 - k as f64,
                            py: 14.0 + i as f64,
                            pz: -2.0,
                            e: 30.0 + k as f64,
                        },
                        charge: if k % 2 == 0 { -1 } else { 1 },
                        n_stations: 2 + (k % 3) as u8,
                        isolation: 0.02 + 0.01 * i as f64,
                    });
                }
                for k in 0..(i % 2) {
                    ev.photons.push(Photon {
                        momentum: FourVector {
                            px: 5.0 + k as f64,
                            py: 6.0,
                            pz: 1.0,
                            e: 9.0,
                        },
                        isolation: 0.1,
                    });
                }
                for k in 0..(i % 5) {
                    ev.jets.push(Jet {
                        momentum: FourVector {
                            px: 25.0 + 3.0 * k as f64,
                            py: -12.0,
                            pz: 40.0,
                            e: 60.0 + k as f64,
                        },
                        n_constituents: 3 + k as u32,
                        em_fraction: 0.3 + 0.05 * k as f64,
                    });
                }
                for k in 0..(i % 2) {
                    ev.candidates.push(TwoProngCandidate {
                        vertex: FourVector {
                            px: 1.0,
                            py: 2.0,
                            pz: 3.0,
                            e: 0.0,
                        },
                        flight_xy: 4.2 + k as f64,
                        pt: 3.3,
                        eta: 0.4,
                        mass_pipi: 0.497 + 0.001 * i as f64,
                        mass_ppi: 1.115,
                        mass_kpi: 1.864,
                        proper_time_d0_ns: 4.1e-4,
                        track_indices: (i as u32, i as u32 + 1),
                    });
                }
                ev.met = Met {
                    mex: 10.0 + i as f64,
                    mey: -7.0,
                };
                ev.n_tracks = 40 + i as u32;
                ev
            })
            .collect()
    }

    fn selections() -> Vec<Selection> {
        vec![
            Selection::All,
            Selection::NLeptons { n: 1, pt: 12.0 },
            Selection::NLeptons { n: 2, pt: 5.0 },
            Selection::NPhotons { n: 1, pt: 5.0 },
            Selection::NJets { n: 2, pt: 20.0 },
            Selection::MetAbove(15.0),
            Selection::CandidateMass {
                hypothesis: MassHypothesis::PiPi,
                mass: 0.4976,
                window: 0.01,
            },
            Selection::NTracksAtLeast(45),
            Selection::NLeptons { n: 1, pt: 10.0 }
                .and(Selection::MetAbove(12.0).not())
                .or(Selection::NJets { n: 3, pt: 10.0 }),
        ]
    }

    #[test]
    fn round_trip_preserves_events_exactly() {
        let events = sample_events(23);
        let file = ColumnarFile::from_rows(&events);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        assert_eq!(parsed.n_rows(), 23);
        let back = parsed.to_rows().expect("decodes");
        assert_eq!(back, events);
    }

    #[test]
    fn round_trip_is_byte_identical_against_the_row_codec() {
        let events = sample_events(17);
        let row_file = AodEvent::encode_events(&events);
        let col_file = ColumnarFile::from_rows(&events);
        // row -> columnar -> row reproduces the row bytes…
        let via_col = ColumnarFile::parse(&col_file)
            .and_then(|f| f.to_rows())
            .expect("col decodes");
        assert_eq!(AodEvent::encode_events(&via_col), row_file);
        // …and columnar -> row -> columnar reproduces the columnar bytes.
        let via_row = AodEvent::decode_events(&row_file).expect("row decodes");
        assert_eq!(ColumnarFile::from_rows(&via_row), col_file);
    }

    #[test]
    fn empty_file_round_trips() {
        let file = ColumnarFile::from_rows(&[]);
        let parsed = ColumnarFile::parse(&file).expect("parses");
        assert_eq!(parsed.n_rows(), 0);
        assert!(parsed.to_rows().expect("decodes").is_empty());
        let (out, report) = skim_slim_columnar(
            &file,
            &Selection::All,
            &SlimSpec::keep_all(),
            None,
        )
        .expect("skims");
        assert_eq!(report.events_in, 0);
        assert_eq!(out, file);
    }

    #[test]
    fn every_truncation_is_detected() {
        let events = sample_events(6);
        let file = ColumnarFile::from_rows(&events);
        for len in 0..file.len() {
            let cut = file.slice(0..len);
            let err = ColumnarFile::parse(&cut)
                .and_then(|f| f.to_rows().map(|_| ()))
                .expect_err("truncation must error");
            let _ = err.category();
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        let events = sample_events(5);
        let file = ColumnarFile::from_rows(&events);
        for pos in 0..file.len() {
            let mut bytes = file.to_vec();
            bytes[pos] ^= 0x40;
            let mutated = Bytes::from(bytes);
            match ColumnarFile::parse(&mutated).and_then(|f| f.to_rows()) {
                Err(_) => {}
                Ok(back) => assert_eq!(
                    back, events,
                    "undetected corruption at byte {pos} changed the decode"
                ),
            }
        }
    }

    #[test]
    fn verify_passes_on_pristine_and_catches_column_swap() {
        let events = sample_events(9);
        let file = ColumnarFile::from_rows(&events);
        ColumnarFile::parse(&file).unwrap().verify().expect("pristine verifies");

        // Swap the e-p4 and mu-p4 frames (equal layout, different data):
        // every per-column structure stays valid, only the table digests
        // can notice.
        let parsed = ColumnarFile::parse(&file).unwrap();
        let e = parsed.cols[ColumnId::ElectronP4 as usize];
        let m = parsed.cols[ColumnId::MuonP4 as usize];
        if e.len == m.len {
            let mut bytes = file.to_vec();
            let (a, b) = (e.offset, m.offset);
            for i in 0..e.len {
                bytes.swap(a + i, b + i);
            }
            let swapped = Bytes::from(bytes);
            assert!(
                ColumnarFile::parse(&swapped).unwrap().verify().is_err(),
                "frame swap must fail digest verification"
            );
        }
    }

    #[test]
    fn skim_matches_the_row_path_for_every_selection_and_slim() {
        let events = sample_events(40);
        let col_file = ColumnarFile::from_rows(&events);
        for sel in selections() {
            for slim in [
                SlimSpec::keep_all(),
                SlimSpec::leptons_only(),
                SlimSpec::candidates_only(),
            ] {
                let (expected, exp_report) = skim_slim(&events, &sel, &slim);
                let (out, report) =
                    skim_slim_columnar(&col_file, &sel, &slim, None).expect("skims");
                let survivors = ColumnarFile::parse(&out)
                    .and_then(|f| f.to_rows())
                    .expect("output decodes");
                assert_eq!(survivors, expected, "sel {} slim {}", sel, slim.to_text());
                assert_eq!(report.events_in, exp_report.events_in);
                assert_eq!(report.events_out, exp_report.events_out);
                // The output is canonical: exactly what encoding the
                // survivors from scratch produces.
                assert_eq!(out, ColumnarFile::from_rows(&expected));
            }
        }
    }

    #[test]
    fn skim_callback_sees_each_slimmed_survivor_in_order() {
        let events = sample_events(30);
        let col_file = ColumnarFile::from_rows(&events);
        let sel = Selection::NLeptons { n: 1, pt: 10.0 };
        let slim = SlimSpec::leptons_only();
        let (expected, _) = skim_slim(&events, &sel, &slim);
        let mut seen = Vec::new();
        skim_slim_columnar_with(&col_file, &sel, &slim, None, |ev| seen.push(ev.clone()))
            .expect("skims");
        assert_eq!(seen, expected);
    }

    #[test]
    fn pushdown_counters_report_the_columns_actually_opened() {
        let events = sample_events(20);
        let col_file = ColumnarFile::from_rows(&events);
        // NLeptons + leptons_only: e/mu p4 for the cut, header + scalars
        // + e/mu id + both jet columns for the copy = 8 read, 2 skipped.
        let registry = MetricsRegistry::default();
        skim_slim_columnar(
            &col_file,
            &Selection::NLeptons { n: 2, pt: 10.0 },
            &SlimSpec::leptons_only(),
            Some(&registry),
        )
        .expect("skims");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tier.columnar.cols_read"), 8);
        assert_eq!(snap.counter("tier.columnar.cols_skipped"), 2);

        // MET cut + candidates_only touches only scalars, header, cand.
        let registry = MetricsRegistry::default();
        skim_slim_columnar(
            &col_file,
            &Selection::MetAbove(12.0),
            &SlimSpec::candidates_only(),
            Some(&registry),
        )
        .expect("skims");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tier.columnar.cols_read"), 3);
        assert_eq!(snap.counter("tier.columnar.cols_skipped"), 7);
    }

    #[test]
    fn wide_digest_is_deterministic_and_discriminating() {
        let a = fnv64_wide(b"daspos columnar tier");
        assert_eq!(a, fnv64_wide(b"daspos columnar tier"));
        assert_ne!(a, fnv64_wide(b"daspos columnar tieR"));
        assert_ne!(fnv64_wide(b""), fnv64_wide(b"\0"));
        assert_ne!(fnv64_wide(b"ab"), fnv64_wide(b"ba"));
    }

    #[test]
    fn tier_format_names_round_trip() {
        for fmt in [TierFormat::Row, TierFormat::Columnar] {
            assert_eq!(TierFormat::parse(fmt.name()), Some(fmt));
        }
        assert_eq!(TierFormat::parse("parquet"), None);
        assert_eq!(TierFormat::default(), TierFormat::Row);
    }

    #[test]
    fn wrong_magic_version_tier_are_rejected() {
        let file = ColumnarFile::from_rows(&sample_events(3));
        let mut bad = file.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            ColumnarFile::parse(&Bytes::from(bad)),
            Err(CodecError::BadMagic)
        ));
        let mut bad = file.to_vec();
        bad[4] = 9;
        assert!(matches!(
            ColumnarFile::parse(&Bytes::from(bad)),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut bad = file.to_vec();
        bad[6] = DataTier::Raw.code();
        assert!(matches!(
            ColumnarFile::parse(&Bytes::from(bad)),
            Err(CodecError::WrongTier { .. })
        ));
    }
}
