//! # daspos-tiers — data tiers, storage and the skim/slim engine
//!
//! Implements the report's data-lifecycle substrate (§3.2 and Appendix A
//! Q2): events move through tiers RAW → RECO → AOD → NTUP, shrinking at
//! every step through *skimming* ("the dropping of events") and
//! *slimming* ("the reduction of the event content").
//!
//! Design decisions taken straight from the report:
//!
//! * **Custom binary codec** ([`codec`]) with an explicit format version —
//!   the preservation hazard of format evolution (experiment P1) needs a
//!   version to bump.
//! * **Declarative skim/slim descriptions** ([`skim`]): §3.2 observes that
//!   *"each processing step between the final centrally-processed format
//!   and some reduced format can be reduced to a logical
//!   skimming/slimming description"*. Selections here are data (a small
//!   expression language with a text form), so a preserved workflow can
//!   re-execute them forever; closures could not be archived.
//! * **Dataset catalog** ([`dataset`]): named, tiered, size-accounted
//!   collections — the coordinates provenance edges point at.
//! * **Flat ntuples** ([`ntuple`]): the final analysis formats, produced
//!   by per-analysis column specs.

pub mod codec;
pub mod colnar;
pub mod dataset;
pub mod ntuple;
pub mod par;
pub mod skim;
pub mod tier;

pub use codec::{CodecError, FORMAT_VERSION};
pub use colnar::{
    decode_columns_parallel, encode_columnar_parallel, skim_slim_columnar, skim_slim_columnar_with,
    ColumnarFile, TierFormat,
};
pub use dataset::{Dataset, DatasetCatalog, DatasetMeta};
pub use ntuple::{ColumnSpec, Ntuple, NtupleSchema};
pub use skim::{Selection, SkimReport, SlimSpec};
pub use tier::DataTier;
