//! Chunked fan-out over slices with scoped threads.
//!
//! The tier operations (per-event payload encoding, skim/slim) are
//! embarrassingly parallel: each event's contribution is a pure function
//! of that event. This helper splits a slice into contiguous chunks, maps
//! each chunk on its own thread, and returns the per-chunk results **in
//! slice order**, so any associative merge (byte concatenation, count
//! sums) reproduces the sequential result exactly.

/// Map `f` over contiguous chunks of `items` using up to `threads`
/// worker threads, returning one result per chunk in slice order.
///
/// With `threads <= 1` (or a slice too small to split) this degrades to
/// a plain sequential call on the whole slice — no threads are spawned.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return vec![f(items)];
    }
    // Contiguous chunks, one per worker: ceil division so every item is
    // covered and the final chunk may be short.
    let chunk = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(chunks.len(), || None);
    std::thread::scope(|scope| {
        for (slot, part) in out.iter_mut().zip(&chunks) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(part));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::map_chunks;

    #[test]
    fn preserves_order_and_coverage() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 4, 7] {
            let parts = map_chunks(&items, threads, |c| c.to_vec());
            let flat: Vec<u64> = parts.into_iter().flatten().collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty: [u8; 0] = [];
        assert_eq!(map_chunks(&empty, 4, |c| c.len()), vec![0]);
        assert_eq!(map_chunks(&[1], 8, |c| c.len()), vec![1]);
    }
}
