//! Data tiers and their mapping to the DPHEP preservation levels.

use std::fmt;

/// The processing tiers of the synthetic experiments' data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataTier {
    /// Raw detector readout (hits and cells).
    Raw,
    /// Full reconstruction output (tracks, clusters, segments).
    Reco,
    /// Analysis Object Data: candidate physics objects only.
    Aod,
    /// Flat per-analysis ntuples.
    Ntuple,
}

impl DataTier {
    /// All tiers in processing order.
    pub fn all() -> [DataTier; 4] {
        [DataTier::Raw, DataTier::Reco, DataTier::Aod, DataTier::Ntuple]
    }

    /// Stable code for the binary codec.
    pub fn code(&self) -> u8 {
        match self {
            DataTier::Raw => 0,
            DataTier::Reco => 1,
            DataTier::Aod => 2,
            DataTier::Ntuple => 3,
        }
    }

    /// Inverse of [`DataTier::code`].
    pub fn from_code(code: u8) -> Option<DataTier> {
        Some(match code {
            0 => DataTier::Raw,
            1 => DataTier::Reco,
            2 => DataTier::Aod,
            3 => DataTier::Ntuple,
            _ => return None,
        })
    }

    /// Short name used in dataset paths.
    pub fn name(&self) -> &'static str {
        match self {
            DataTier::Raw => "raw",
            DataTier::Reco => "reco",
            DataTier::Aod => "aod",
            DataTier::Ntuple => "ntup",
        }
    }

    /// The DPHEP data level this tier maps to. Level 2 is *"actual data
    /// and simulation presented in higher-level simplified formats"* (§2);
    /// Levels 3/4 are the analysis-grade and raw tiers.
    pub fn dphep_level(&self) -> u8 {
        match self {
            DataTier::Ntuple => 2,
            DataTier::Aod => 3,
            DataTier::Reco => 3,
            DataTier::Raw => 4,
        }
    }

    /// The tier a processing step starting from this tier produces.
    pub fn next(&self) -> Option<DataTier> {
        match self {
            DataTier::Raw => Some(DataTier::Reco),
            DataTier::Reco => Some(DataTier::Aod),
            DataTier::Aod => Some(DataTier::Ntuple),
            DataTier::Ntuple => None,
        }
    }
}

impl fmt::Display for DataTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for t in DataTier::all() {
            assert_eq!(DataTier::from_code(t.code()), Some(t));
        }
        assert_eq!(DataTier::from_code(99), None);
    }

    #[test]
    fn chain_order() {
        assert_eq!(DataTier::Raw.next(), Some(DataTier::Reco));
        assert_eq!(DataTier::Ntuple.next(), None);
        let mut t = DataTier::Raw;
        let mut steps = 0;
        while let Some(n) = t.next() {
            t = n;
            steps += 1;
        }
        assert_eq!(steps, 3);
    }

    #[test]
    fn dphep_levels_decrease_along_chain() {
        assert_eq!(DataTier::Raw.dphep_level(), 4);
        assert_eq!(DataTier::Aod.dphep_level(), 3);
        assert_eq!(DataTier::Ntuple.dphep_level(), 2);
    }
}
