//! The binary event codec.
//!
//! A bespoke, versioned, self-framing format — the stand-in for the
//! experiments' ROOT-based persistency. Layout:
//!
//! ```text
//! file   := magic("DPEF") version:u16 tier:u8 n_events:u32 event*
//! event  := length:u32 payload
//! ```
//!
//! Every payload starts with the event header (run, lumi block, event
//! number) so any tier of the same collision can be correlated. The
//! `version` field is the handle the platform-migration experiment (P1)
//! turns: decoding rejects versions it does not support, exactly the
//! failure mode that strands un-migrated archives.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use daspos_detsim::raw::{CaloCell, MuonHit, RawEvent, TrackerHit};
use daspos_hep::event::EventHeader;
use daspos_reco::objects::{
    AodEvent, CaloCluster, Electron, Jet, Met, Muon, MuonSegment, Photon, RecoEvent, Track,
    TwoProngCandidate,
};
use std::fmt;

use crate::tier::DataTier;

/// File magic: "DASPOS Preservation Event File".
pub const MAGIC: &[u8; 4] = b"DPEF";

/// The format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure was complete.
    UnexpectedEof,
    /// The file does not start with the DPEF magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the file.
        found: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The tier byte is unknown or does not match the requested decode.
    WrongTier {
        /// Tier code found.
        found: u8,
        /// Tier expected by the caller.
        expected: u8,
    },
    /// A structural inconsistency (bad status code, absurd count).
    Corrupt(String),
    /// An integrity seal's stored digest does not match its payload.
    SealMismatch {
        /// Digest stored in the seal.
        stored: u64,
        /// Digest recomputed over the payload.
        actual: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("unexpected end of buffer"),
            CodecError::BadMagic => f.write_str("bad file magic (not a DPEF file)"),
            CodecError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads {supported})"
            ),
            CodecError::WrongTier { found, expected } => {
                write!(f, "tier mismatch: file has {found}, expected {expected}")
            }
            CodecError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
            CodecError::SealMismatch { stored, actual } => write!(
                f,
                "integrity seal mismatch: seal says {stored:016x}, payload hashes to {actual:016x}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Coarse classification of a decode failure — the taxonomy the
/// fault-injection campaign (`daspos::faultlab`) uses to histogram *how*
/// each corruption was caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ErrorCategory {
    /// The buffer ended before the structure was complete (truncation).
    Framing,
    /// Magic bytes did not match.
    Magic,
    /// A version gate rejected the file.
    Version,
    /// The tier byte was wrong for the requested decode.
    Tier,
    /// Structural corruption: absurd counts, trailing bytes, zero frames.
    Structure,
    /// An integrity digest did not verify.
    Integrity,
}

impl ErrorCategory {
    /// Stable short name used in campaign reports.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCategory::Framing => "framing",
            ErrorCategory::Magic => "magic",
            ErrorCategory::Version => "version",
            ErrorCategory::Tier => "tier",
            ErrorCategory::Structure => "structure",
            ErrorCategory::Integrity => "integrity",
        }
    }
}

impl CodecError {
    /// The coarse category of this failure.
    pub fn category(&self) -> ErrorCategory {
        match self {
            CodecError::UnexpectedEof => ErrorCategory::Framing,
            CodecError::BadMagic => ErrorCategory::Magic,
            CodecError::UnsupportedVersion { .. } => ErrorCategory::Version,
            CodecError::WrongTier { .. } => ErrorCategory::Tier,
            CodecError::Corrupt(_) => ErrorCategory::Structure,
            CodecError::SealMismatch { .. } => ErrorCategory::Integrity,
        }
    }
}

/// FNV-1a 64 over a byte slice — the toolkit's standard content digest,
/// shared by the integrity seal, the archive container and the
/// conditions-snapshot text form.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Magic of the integrity seal: "DASPOS Sealed".
pub const SEAL_MAGIC: &[u8; 4] = b"DPSL";

/// Bytes the seal prepends to a payload: the magic plus the u64 digest.
pub const SEAL_OVERHEAD: usize = 12;

/// Wrap a serialized artifact in an integrity seal:
/// `"DPSL" fnv64(payload):u64 payload`.
///
/// DPEF tier files carry no digest of their own (floats re-parse happily
/// after a payload bit flips), so archived tier files travel sealed: the
/// seal makes any byte-level change detectable before decode, which is
/// what the faultlab invariant "detected or harmless" rests on.
pub fn seal(payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(SEAL_OVERHEAD + payload.len());
    buf.put_slice(SEAL_MAGIC);
    buf.put_u64_le(fnv64(payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Verify and strip an integrity seal, returning the payload.
///
/// Zero-copy: the returned `Bytes` is a window into the same backing
/// allocation as `data`, offset past the seal — no payload bytes are
/// copied (the digest pass reads them once, as it must). Holding the
/// result keeps the sealed buffer alive.
pub fn unseal(data: &Bytes) -> Result<Bytes, CodecError> {
    let mut b = data.clone();
    need(&b, SEAL_OVERHEAD)?;
    let mut magic = [0u8; 4];
    b.copy_to_slice(&mut magic);
    if &magic != SEAL_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let stored = b.get_u64_le();
    let actual = fnv64(&b);
    if stored != actual {
        return Err(CodecError::SealMismatch { stored, actual });
    }
    Ok(b)
}

#[inline]
fn need(buf: &impl Buf, n: usize) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(CodecError::UnexpectedEof)
    } else {
        Ok(())
    }
}

#[inline]
fn get_u8(b: &mut impl Buf) -> Result<u8, CodecError> {
    need(b, 1)?;
    Ok(b.get_u8())
}
#[inline]
fn get_i8(b: &mut impl Buf) -> Result<i8, CodecError> {
    need(b, 1)?;
    Ok(b.get_i8())
}
#[inline]
fn get_u16(b: &mut impl Buf) -> Result<u16, CodecError> {
    need(b, 2)?;
    Ok(b.get_u16_le())
}
#[inline]
fn get_u32(b: &mut impl Buf) -> Result<u32, CodecError> {
    need(b, 4)?;
    Ok(b.get_u32_le())
}
#[inline]
fn get_i32(b: &mut impl Buf) -> Result<i32, CodecError> {
    need(b, 4)?;
    Ok(b.get_i32_le())
}
#[inline]
fn get_u64(b: &mut impl Buf) -> Result<u64, CodecError> {
    need(b, 8)?;
    Ok(b.get_u64_le())
}
#[inline]
fn get_f64(b: &mut impl Buf) -> Result<f64, CodecError> {
    need(b, 8)?;
    Ok(b.get_f64_le())
}

/// Counts are sanity-limited so a corrupt length cannot allocate the moon.
/// Shared with the columnar codec, whose row and entry counts obey the
/// same bound.
pub(crate) const MAX_COUNT: u32 = 10_000_000;

fn get_count(b: &mut impl Buf) -> Result<u32, CodecError> {
    let n = get_u32(b)?;
    if n > MAX_COUNT {
        return Err(CodecError::Corrupt(format!("count {n} exceeds sanity limit")));
    }
    Ok(n)
}

/// Pre-allocation bound for a declared element count: never reserve more
/// elements than the remaining bytes could possibly hold. A corrupt count
/// below `MAX_COUNT` but far beyond the actual data (e.g. 10M elements
/// declared in a 30-byte file) then allocates at most
/// `remaining / min_wire_size` slots before the decode loop hits
/// `UnexpectedEof` on the missing bytes.
fn clamped_capacity(declared: u32, remaining: usize, min_wire_size: usize) -> usize {
    (declared as usize).min(remaining / min_wire_size.max(1))
}

// Minimum wire sizes (bytes) per element, used only to bound allocation.
mod wire {
    pub const TRACKER_HIT: usize = 1 + 3 * 8 + 4; // layer, x/y/z, stub
    pub const CALO_CELL: usize = 2 * 4 + 2 * 8; // ieta/iphi, em/had
    pub const MUON_HIT: usize = 1 + 2 * 8 + 4; // station, eta/phi, stub
    pub const TRUTH_LINK: usize = 4;
    pub const TRACK: usize = 10 * 8 + 1 + 1; // ten f64 fields, charge, n_hits
    pub const CLUSTER: usize = 4 * 8 + 4;
    pub const MUON_SEGMENT: usize = 2 * 8 + 1;
    pub const ELECTRON: usize = 4 * 8 + 1 + 2 * 8;
    pub const MUON: usize = 4 * 8 + 1 + 1 + 8;
    pub const PHOTON: usize = 4 * 8 + 8;
    pub const JET: usize = 4 * 8 + 4 + 8;
    pub const CANDIDATE: usize = 4 * 8 + 7 * 8 + 2 * 4;
    // Every event frame carries a u32 length and a payload that starts
    // with the 16-byte event header.
    pub const EVENT_FRAME: usize = 4 + 16;
}

// --- Event header ----------------------------------------------------------

fn put_header(buf: &mut BytesMut, h: &EventHeader) {
    buf.put_u32_le(h.run.0);
    buf.put_u32_le(h.lumi_block.0);
    buf.put_u64_le(h.event.0);
}

fn get_header(b: &mut impl Buf) -> Result<EventHeader, CodecError> {
    Ok(EventHeader::new(get_u32(b)?, get_u32(b)?, get_u64(b)?))
}

// --- RAW -------------------------------------------------------------------

fn put_raw(buf: &mut BytesMut, ev: &RawEvent) {
    put_header(buf, &ev.header);
    buf.put_u32_le(ev.tracker_hits.len() as u32);
    for h in &ev.tracker_hits {
        buf.put_u8(h.layer);
        buf.put_f64_le(h.x);
        buf.put_f64_le(h.y);
        buf.put_f64_le(h.z);
        buf.put_u32_le(h.stub);
    }
    buf.put_u32_le(ev.calo_cells.len() as u32);
    for c in &ev.calo_cells {
        buf.put_i32_le(c.ieta);
        buf.put_i32_le(c.iphi);
        buf.put_f64_le(c.em);
        buf.put_f64_le(c.had);
    }
    buf.put_u32_le(ev.muon_hits.len() as u32);
    for m in &ev.muon_hits {
        buf.put_u8(m.station);
        buf.put_f64_le(m.eta);
        buf.put_f64_le(m.phi);
        buf.put_u32_le(m.stub);
    }
    buf.put_u32_le(ev.truth_links.len() as u32);
    for l in &ev.truth_links {
        buf.put_u32_le(*l);
    }
}

fn get_raw(b: &mut impl Buf) -> Result<RawEvent, CodecError> {
    let mut ev = RawEvent::new(EventHeader::new(0, 0, 0));
    get_raw_into(b, &mut ev)?;
    Ok(ev)
}

/// Decode one RAW event into `ev`, reusing its collection capacity. The
/// previous contents are cleared; on error the event is partially filled
/// and must not be used.
fn get_raw_into(b: &mut impl Buf, ev: &mut RawEvent) -> Result<(), CodecError> {
    ev.header = get_header(b)?;
    ev.tracker_hits.clear();
    ev.calo_cells.clear();
    ev.muon_hits.clear();
    ev.truth_links.clear();
    let n = get_count(b)?;
    ev.tracker_hits
        .reserve(clamped_capacity(n, b.remaining(), wire::TRACKER_HIT));
    for _ in 0..n {
        ev.tracker_hits.push(TrackerHit {
            layer: get_u8(b)?,
            x: get_f64(b)?,
            y: get_f64(b)?,
            z: get_f64(b)?,
            stub: get_u32(b)?,
        });
    }
    let n = get_count(b)?;
    ev.calo_cells
        .reserve(clamped_capacity(n, b.remaining(), wire::CALO_CELL));
    for _ in 0..n {
        ev.calo_cells.push(CaloCell {
            ieta: get_i32(b)?,
            iphi: get_i32(b)?,
            em: get_f64(b)?,
            had: get_f64(b)?,
        });
    }
    let n = get_count(b)?;
    ev.muon_hits
        .reserve(clamped_capacity(n, b.remaining(), wire::MUON_HIT));
    for _ in 0..n {
        ev.muon_hits.push(MuonHit {
            station: get_u8(b)?,
            eta: get_f64(b)?,
            phi: get_f64(b)?,
            stub: get_u32(b)?,
        });
    }
    let n = get_count(b)?;
    ev.truth_links
        .reserve(clamped_capacity(n, b.remaining(), wire::TRUTH_LINK));
    for _ in 0..n {
        ev.truth_links.push(get_u32(b)?);
    }
    Ok(())
}

// --- RECO ------------------------------------------------------------------

fn put_track(buf: &mut BytesMut, t: &Track) {
    buf.put_f64_le(t.pt);
    buf.put_f64_le(t.eta);
    buf.put_f64_le(t.phi);
    buf.put_i8(t.charge);
    buf.put_f64_le(t.d0);
    buf.put_f64_le(t.z0);
    buf.put_u8(t.n_hits);
    buf.put_f64_le(t.first_hit_radius);
    buf.put_f64_le(t.circle_cx);
    buf.put_f64_le(t.circle_cy);
    buf.put_f64_le(t.circle_r);
    buf.put_f64_le(t.cot_theta);
}

fn get_track(b: &mut impl Buf) -> Result<Track, CodecError> {
    Ok(Track {
        pt: get_f64(b)?,
        eta: get_f64(b)?,
        phi: get_f64(b)?,
        charge: get_i8(b)?,
        d0: get_f64(b)?,
        z0: get_f64(b)?,
        n_hits: get_u8(b)?,
        first_hit_radius: get_f64(b)?,
        circle_cx: get_f64(b)?,
        circle_cy: get_f64(b)?,
        circle_r: get_f64(b)?,
        cot_theta: get_f64(b)?,
    })
}

fn put_reco(buf: &mut BytesMut, ev: &RecoEvent) {
    put_header(buf, &ev.header);
    buf.put_u32_le(ev.tracks.len() as u32);
    for t in &ev.tracks {
        put_track(buf, t);
    }
    buf.put_u32_le(ev.clusters.len() as u32);
    for c in &ev.clusters {
        buf.put_f64_le(c.energy);
        buf.put_f64_le(c.eta);
        buf.put_f64_le(c.phi);
        buf.put_f64_le(c.em_fraction);
        buf.put_u32_le(c.n_towers);
    }
    buf.put_u32_le(ev.muon_segments.len() as u32);
    for s in &ev.muon_segments {
        buf.put_f64_le(s.eta);
        buf.put_f64_le(s.phi);
        buf.put_u8(s.n_stations);
    }
}

fn get_reco(b: &mut impl Buf) -> Result<RecoEvent, CodecError> {
    let mut ev = RecoEvent {
        header: EventHeader::new(0, 0, 0),
        tracks: Vec::new(),
        clusters: Vec::new(),
        muon_segments: Vec::new(),
    };
    get_reco_into(b, &mut ev)?;
    Ok(ev)
}

/// Decode one RECO event into `ev`, reusing its collection capacity.
fn get_reco_into(b: &mut impl Buf, ev: &mut RecoEvent) -> Result<(), CodecError> {
    ev.header = get_header(b)?;
    ev.tracks.clear();
    ev.clusters.clear();
    ev.muon_segments.clear();
    let n = get_count(b)?;
    ev.tracks
        .reserve(clamped_capacity(n, b.remaining(), wire::TRACK));
    for _ in 0..n {
        ev.tracks.push(get_track(b)?);
    }
    let n = get_count(b)?;
    ev.clusters
        .reserve(clamped_capacity(n, b.remaining(), wire::CLUSTER));
    for _ in 0..n {
        ev.clusters.push(CaloCluster {
            energy: get_f64(b)?,
            eta: get_f64(b)?,
            phi: get_f64(b)?,
            em_fraction: get_f64(b)?,
            n_towers: get_u32(b)?,
        });
    }
    let n = get_count(b)?;
    ev.muon_segments
        .reserve(clamped_capacity(n, b.remaining(), wire::MUON_SEGMENT));
    for _ in 0..n {
        ev.muon_segments.push(MuonSegment {
            eta: get_f64(b)?,
            phi: get_f64(b)?,
            n_stations: get_u8(b)?,
        });
    }
    Ok(())
}

// --- AOD -------------------------------------------------------------------

fn put_fourvec(buf: &mut BytesMut, v: &daspos_hep::FourVector) {
    buf.put_f64_le(v.px);
    buf.put_f64_le(v.py);
    buf.put_f64_le(v.pz);
    buf.put_f64_le(v.e);
}

fn get_fourvec(b: &mut impl Buf) -> Result<daspos_hep::FourVector, CodecError> {
    Ok(daspos_hep::FourVector::new(
        get_f64(b)?,
        get_f64(b)?,
        get_f64(b)?,
        get_f64(b)?,
    ))
}

fn put_aod(buf: &mut BytesMut, ev: &AodEvent) {
    put_header(buf, &ev.header);
    buf.put_u32_le(ev.electrons.len() as u32);
    for e in &ev.electrons {
        put_fourvec(buf, &e.momentum);
        buf.put_i8(e.charge);
        buf.put_f64_le(e.e_over_p);
        buf.put_f64_le(e.isolation);
    }
    buf.put_u32_le(ev.muons.len() as u32);
    for m in &ev.muons {
        put_fourvec(buf, &m.momentum);
        buf.put_i8(m.charge);
        buf.put_u8(m.n_stations);
        buf.put_f64_le(m.isolation);
    }
    buf.put_u32_le(ev.photons.len() as u32);
    for p in &ev.photons {
        put_fourvec(buf, &p.momentum);
        buf.put_f64_le(p.isolation);
    }
    buf.put_u32_le(ev.jets.len() as u32);
    for j in &ev.jets {
        put_fourvec(buf, &j.momentum);
        buf.put_u32_le(j.n_constituents);
        buf.put_f64_le(j.em_fraction);
    }
    buf.put_f64_le(ev.met.mex);
    buf.put_f64_le(ev.met.mey);
    buf.put_u32_le(ev.candidates.len() as u32);
    for c in &ev.candidates {
        put_fourvec(buf, &c.vertex);
        buf.put_f64_le(c.flight_xy);
        buf.put_f64_le(c.pt);
        buf.put_f64_le(c.eta);
        buf.put_f64_le(c.mass_pipi);
        buf.put_f64_le(c.mass_ppi);
        buf.put_f64_le(c.mass_kpi);
        buf.put_f64_le(c.proper_time_d0_ns);
        buf.put_u32_le(c.track_indices.0);
        buf.put_u32_le(c.track_indices.1);
    }
    buf.put_u32_le(ev.n_tracks);
}

fn get_aod(b: &mut impl Buf) -> Result<AodEvent, CodecError> {
    let mut ev = AodEvent::new(EventHeader::new(0, 0, 0));
    get_aod_into(b, &mut ev)?;
    Ok(ev)
}

/// Decode one AOD event into `ev`, reusing its collection capacity.
fn get_aod_into(b: &mut impl Buf, ev: &mut AodEvent) -> Result<(), CodecError> {
    ev.header = get_header(b)?;
    ev.electrons.clear();
    ev.muons.clear();
    ev.photons.clear();
    ev.jets.clear();
    ev.candidates.clear();
    let n = get_count(b)?;
    ev.electrons
        .reserve(clamped_capacity(n, b.remaining(), wire::ELECTRON));
    for _ in 0..n {
        ev.electrons.push(Electron {
            momentum: get_fourvec(b)?,
            charge: get_i8(b)?,
            e_over_p: get_f64(b)?,
            isolation: get_f64(b)?,
        });
    }
    let n = get_count(b)?;
    ev.muons
        .reserve(clamped_capacity(n, b.remaining(), wire::MUON));
    for _ in 0..n {
        ev.muons.push(Muon {
            momentum: get_fourvec(b)?,
            charge: get_i8(b)?,
            n_stations: get_u8(b)?,
            isolation: get_f64(b)?,
        });
    }
    let n = get_count(b)?;
    ev.photons
        .reserve(clamped_capacity(n, b.remaining(), wire::PHOTON));
    for _ in 0..n {
        ev.photons.push(Photon {
            momentum: get_fourvec(b)?,
            isolation: get_f64(b)?,
        });
    }
    let n = get_count(b)?;
    ev.jets
        .reserve(clamped_capacity(n, b.remaining(), wire::JET));
    for _ in 0..n {
        ev.jets.push(Jet {
            momentum: get_fourvec(b)?,
            n_constituents: get_u32(b)?,
            em_fraction: get_f64(b)?,
        });
    }
    ev.met = Met {
        mex: get_f64(b)?,
        mey: get_f64(b)?,
    };
    let n = get_count(b)?;
    ev.candidates
        .reserve(clamped_capacity(n, b.remaining(), wire::CANDIDATE));
    for _ in 0..n {
        ev.candidates.push(TwoProngCandidate {
            vertex: get_fourvec(b)?,
            flight_xy: get_f64(b)?,
            pt: get_f64(b)?,
            eta: get_f64(b)?,
            mass_pipi: get_f64(b)?,
            mass_ppi: get_f64(b)?,
            mass_kpi: get_f64(b)?,
            proper_time_d0_ns: get_f64(b)?,
            track_indices: (get_u32(b)?, get_u32(b)?),
        });
    }
    ev.n_tracks = get_u32(b)?;
    Ok(())
}

// --- File framing -----------------------------------------------------------

fn encode_file<T>(tier: DataTier, events: &[T], put: impl Fn(&mut BytesMut, &T)) -> Bytes {
    encode_file_versioned(tier, events, put, FORMAT_VERSION)
}

/// Encode with an explicit version (the migration experiment writes
/// "future" files this build then refuses to read).
pub fn encode_file_with_version<T>(
    tier: DataTier,
    events: &[T],
    version: u16,
) -> Bytes
where
    T: Encodable,
{
    encode_file_versioned(tier, events, T::put, version)
}

/// Write the file header (magic, version, tier, event count).
///
/// Panics if `n_events` does not fit the u32 count field: silently
/// truncating the count would archive a file claiming fewer events than
/// it holds — a preservation corruption worse than an aborted write.
fn put_file_header(buf: &mut BytesMut, tier: DataTier, version: u16, n_events: usize) {
    let n = u32::try_from(n_events)
        .unwrap_or_else(|_| panic!("event count {n_events} exceeds the u32 DPEF count field"));
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    buf.put_u8(tier.code());
    buf.put_u32_le(n);
}

/// Frame one event: length prefix + payload, encoded directly into
/// `buf`. A placeholder length is written first and backpatched once the
/// payload is down, so every event byte is produced exactly once — the
/// scratch-buffer-then-copy of the previous framing cost a second pass
/// over the full payload on the hot encode path. Panics (rather than
/// writing a silently truncated length) if a payload exceeds the u32
/// frame field.
#[inline]
fn put_frame<T>(buf: &mut BytesMut, ev: &T, put: &impl Fn(&mut BytesMut, &T)) {
    let len_pos = buf.len();
    buf.put_u32_le(0);
    put(buf, ev);
    let payload_len = buf.len() - len_pos - 4;
    let len = u32::try_from(payload_len).unwrap_or_else(|_| {
        panic!("event payload of {payload_len} bytes exceeds the u32 DPEF frame field")
    });
    buf[len_pos..len_pos + 4].copy_from_slice(&len.to_le_bytes());
}

fn encode_file_versioned<T>(
    tier: DataTier,
    events: &[T],
    put: impl Fn(&mut BytesMut, &T),
    version: u16,
) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + events.len() * 256);
    put_file_header(&mut buf, tier, version, events.len());
    for ev in events {
        put_frame(&mut buf, ev, &put);
    }
    buf.freeze()
}

/// Parallel encode: per-event payloads are produced on up to `threads`
/// worker threads over contiguous event chunks, then the DPEF frame is
/// assembled sequentially (header, then each chunk's frames in event
/// order) — the output is byte-identical to the sequential encoder.
fn encode_file_parallel<T>(
    tier: DataTier,
    events: &[T],
    put: fn(&mut BytesMut, &T),
    version: u16,
    threads: usize,
) -> Bytes
where
    T: Sync,
{
    // Below this size thread spawn overhead dominates; stay sequential.
    const MIN_PARALLEL_EVENTS: usize = 64;
    if threads <= 1 || events.len() < MIN_PARALLEL_EVENTS {
        return encode_file_versioned(tier, events, put, version);
    }
    let chunks = crate::par::map_chunks(events, threads, |part| {
        let mut buf = BytesMut::with_capacity(part.len() * 256);
        for ev in part {
            put_frame(&mut buf, ev, &put);
        }
        buf
    });
    let body: usize = chunks.iter().map(|c| c.len()).sum();
    let mut buf = BytesMut::with_capacity(16 + body);
    put_file_header(&mut buf, tier, version, events.len());
    for chunk in chunks {
        buf.put_slice(&chunk);
    }
    buf.freeze()
}

/// The validated file header plus the frame cursor — the machinery both
/// decode paths share, so the batch and streaming decoders are the same
/// code and cannot disagree on framing or error order.
struct FrameCursor {
    buf: Bytes,
    n_events: u32,
    seen: u32,
}

impl FrameCursor {
    /// Parse and validate the DPEF file header (magic, version, tier,
    /// event count). `buf` is left positioned at the first frame.
    fn new(data: &Bytes, tier: DataTier) -> Result<FrameCursor, CodecError> {
        let mut b = data.clone();
        need(&b, 7)?;
        let mut magic = [0u8; 4];
        b.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = get_u16(&mut b)?;
        if version != FORMAT_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let file_tier = get_u8(&mut b)?;
        if file_tier != tier.code() {
            return Err(CodecError::WrongTier {
                found: file_tier,
                expected: tier.code(),
            });
        }
        let n_events = get_count(&mut b)?;
        Ok(FrameCursor {
            buf: b,
            n_events,
            seen: 0,
        })
    }

    /// The next event payload as a zero-copy window into the file buffer,
    /// or `None` once the declared event count is exhausted.
    fn next_frame(&mut self) -> Result<Option<Bytes>, CodecError> {
        if self.seen == self.n_events {
            return Ok(None);
        }
        let len = get_count(&mut self.buf)? as usize;
        if len == 0 {
            // Every tier's payload starts with the 16-byte event header,
            // so a zero-length frame is structurally impossible.
            return Err(CodecError::Corrupt(
                "zero-length event frame".to_string(),
            ));
        }
        need(&self.buf, len)?;
        self.seen += 1;
        Ok(Some(self.buf.split_to(len)))
    }
}

/// Decode one framed payload, rejecting trailing bytes. Shared by the
/// batch and streaming decoders so both report identical errors.
fn finish_payload(payload: &mut Bytes) -> Result<(), CodecError> {
    if payload.has_remaining() {
        return Err(CodecError::Corrupt(format!(
            "{} trailing bytes in event payload",
            payload.remaining()
        )));
    }
    Ok(())
}

fn decode_file<T>(
    data: &Bytes,
    tier: DataTier,
    get: impl Fn(&mut Bytes) -> Result<T, CodecError>,
) -> Result<Vec<T>, CodecError> {
    let mut cursor = FrameCursor::new(data, tier)?;
    let mut out = Vec::with_capacity(clamped_capacity(
        cursor.n_events,
        cursor.buf.remaining(),
        wire::EVENT_FRAME,
    ));
    while let Some(mut payload) = cursor.next_frame()? {
        let ev = get(&mut payload)?;
        finish_payload(&mut payload)?;
        out.push(ev);
    }
    Ok(out)
}

/// An incremental DPEF decoder: yields events one at a time from a
/// `Bytes` slice. Each frame payload is a zero-copy window into the file
/// buffer, and every event is decoded into the *same* internal scratch
/// event, so after warm-up the per-event collection buffers (tracker
/// hits, electrons, jets, …) are reused instead of reallocated.
///
/// This is the hot-path counterpart to [`Encodable::decode_events`]:
/// identical framing, identical validation, identical errors in the same
/// order (both run on the same frame cursor) — but no intermediate
/// `Vec<Event>` and no per-event allocations. Use it when events are
/// consumed one at a time (skimming, filling, scanning); use the batch
/// decoder when the whole file must be materialized anyway.
///
/// The borrow returned by [`EventReader::next`] is only valid until the
/// next call (a lending iterator); clone the event to keep it.
pub struct EventReader<T: Encodable> {
    cursor: FrameCursor,
    scratch: T,
    meter: Option<(daspos_obs::Gauge, daspos_obs::Gauge)>,
}

impl<T: Encodable> EventReader<T> {
    /// Open a DPEF file for streaming decode. Validates the file header
    /// exactly as [`Encodable::decode_events`] does.
    pub fn new(data: &Bytes) -> Result<EventReader<T>, CodecError> {
        Ok(EventReader {
            cursor: FrameCursor::new(data, T::TIER)?,
            scratch: T::scratch(),
            meter: None,
        })
    }

    /// Record decode traffic into `registry`: each decoded frame adds to
    /// the `codec.events_decoded` / `codec.bytes_decoded` gauges. Gauges,
    /// not counters — which codec path runs (streaming vs batch) depends
    /// on the execution engine, so these are measurements, not part of
    /// the deterministic trace.
    pub fn with_metrics(mut self, registry: &daspos_obs::MetricsRegistry) -> Self {
        self.meter = Some((
            registry.gauge("codec.events_decoded"),
            registry.gauge("codec.bytes_decoded"),
        ));
        self
    }

    /// Event count declared in the file header.
    pub fn n_events(&self) -> u32 {
        self.cursor.n_events
    }

    /// Events decoded so far.
    pub fn events_decoded(&self) -> u32 {
        self.cursor.seen
    }

    /// Decode the next event into the internal scratch buffers and
    /// borrow it, or return `None` once the file is exhausted. Errors
    /// match the batch decoder's, at the same event position.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrow ties to &mut self
    pub fn next(&mut self) -> Result<Option<&T>, CodecError> {
        self.next_mut().map(|opt| opt.map(|ev| &*ev))
    }

    /// Like [`EventReader::next`], but the borrow is mutable so the
    /// caller may transform the event in place (the single-pass skim
    /// slims the scratch directly). Any mutation is discarded when the
    /// next event is decoded over it.
    pub fn next_mut(&mut self) -> Result<Option<&mut T>, CodecError> {
        match self.cursor.next_frame()? {
            None => Ok(None),
            Some(mut payload) => {
                let frame_bytes = payload.remaining();
                T::get_into(&mut payload, &mut self.scratch)?;
                finish_payload(&mut payload)?;
                if let Some((events, bytes)) = &self.meter {
                    events.add(1);
                    bytes.add(frame_bytes as i64);
                }
                Ok(Some(&mut self.scratch))
            }
        }
    }
}

/// An incremental DPEF encoder: frames events one at a time while
/// reusing a single payload scratch buffer, then stamps the file header
/// with the final count. Byte-identical to [`Encodable::encode_events`]
/// over the same event sequence — the single-pass skim uses it to write
/// survivors without first materializing them in a vector.
pub struct EventWriter<T: Encodable> {
    body: BytesMut,
    n_events: usize,
    meter: Option<(daspos_obs::Gauge, daspos_obs::Gauge)>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Encodable> EventWriter<T> {
    /// An empty writer.
    pub fn new() -> EventWriter<T> {
        EventWriter {
            body: BytesMut::new(),
            n_events: 0,
            meter: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// An empty writer whose body buffer is pre-sized for `bytes` of
    /// framed payload. Writers on a skim hot path pass the input file
    /// size (the output can never exceed it), trading one allocation
    /// for the ~20 doubling reallocs a multi-MB body would otherwise
    /// copy through.
    pub fn with_capacity(bytes: usize) -> EventWriter<T> {
        EventWriter {
            body: BytesMut::with_capacity(bytes),
            ..EventWriter::new()
        }
    }

    /// Record encode traffic into `registry`'s `codec.events_encoded` /
    /// `codec.bytes_encoded` gauges (framed bytes, excluding the file
    /// header). See [`EventReader::with_metrics`] for why these are
    /// gauges rather than counters.
    pub fn with_metrics(mut self, registry: &daspos_obs::MetricsRegistry) -> Self {
        self.meter = Some((
            registry.gauge("codec.events_encoded"),
            registry.gauge("codec.bytes_encoded"),
        ));
        self
    }

    /// Frame one event.
    pub fn push(&mut self, ev: &T) {
        let before = self.body.len();
        put_frame(&mut self.body, ev, &T::put);
        self.n_events += 1;
        if let Some((events, bytes)) = &self.meter {
            events.add(1);
            bytes.add((self.body.len() - before) as i64);
        }
    }

    /// Events framed so far.
    pub fn len(&self) -> usize {
        self.n_events
    }

    /// True when no event has been framed yet.
    pub fn is_empty(&self) -> bool {
        self.n_events == 0
    }

    /// Assemble the DPEF file: header (with the final event count) then
    /// the framed body.
    pub fn finish(self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.body.len());
        put_file_header(&mut buf, T::TIER, FORMAT_VERSION, self.n_events);
        buf.put_slice(&self.body);
        buf.freeze()
    }
}

impl<T: Encodable> Default for EventWriter<T> {
    fn default() -> Self {
        EventWriter::new()
    }
}

/// Types the codec can frame into files.
pub trait Encodable: Sized {
    /// The tier this type belongs to.
    const TIER: DataTier;
    /// Serialize one event.
    fn put(buf: &mut BytesMut, ev: &Self);
    /// Deserialize one event.
    fn get(b: &mut Bytes) -> Result<Self, CodecError>;
    /// A blank event whose collections the streaming decoder reuses.
    fn scratch() -> Self;
    /// Deserialize one event into `out`, clearing and refilling its
    /// collections while keeping their allocated capacity. On error the
    /// event is partially overwritten and must not be used.
    fn get_into(b: &mut Bytes, out: &mut Self) -> Result<(), CodecError>;

    /// Encode a file of events at the current format version.
    fn encode_events(events: &[Self]) -> Bytes {
        encode_file(Self::TIER, events, Self::put)
    }

    /// Encode a file of events with payloads produced on up to `threads`
    /// worker threads. Byte-identical to [`Encodable::encode_events`];
    /// `threads <= 1` (or a small file) takes the sequential path.
    fn encode_events_parallel(events: &[Self], threads: usize) -> Bytes
    where
        Self: Sync,
    {
        encode_file_parallel(Self::TIER, events, Self::put, FORMAT_VERSION, threads)
    }

    /// Decode a file of events.
    fn decode_events(data: &Bytes) -> Result<Vec<Self>, CodecError> {
        decode_file(data, Self::TIER, |b| Self::get(b))
    }
}

impl Encodable for RawEvent {
    const TIER: DataTier = DataTier::Raw;
    fn put(buf: &mut BytesMut, ev: &Self) {
        put_raw(buf, ev);
    }
    fn get(b: &mut Bytes) -> Result<Self, CodecError> {
        get_raw(b)
    }
    fn scratch() -> Self {
        RawEvent::new(EventHeader::new(0, 0, 0))
    }
    fn get_into(b: &mut Bytes, out: &mut Self) -> Result<(), CodecError> {
        get_raw_into(b, out)
    }
}

impl Encodable for RecoEvent {
    const TIER: DataTier = DataTier::Reco;
    fn put(buf: &mut BytesMut, ev: &Self) {
        put_reco(buf, ev);
    }
    fn get(b: &mut Bytes) -> Result<Self, CodecError> {
        get_reco(b)
    }
    fn scratch() -> Self {
        RecoEvent {
            header: EventHeader::new(0, 0, 0),
            tracks: Vec::new(),
            clusters: Vec::new(),
            muon_segments: Vec::new(),
        }
    }
    fn get_into(b: &mut Bytes, out: &mut Self) -> Result<(), CodecError> {
        get_reco_into(b, out)
    }
}

impl Encodable for AodEvent {
    const TIER: DataTier = DataTier::Aod;
    fn put(buf: &mut BytesMut, ev: &Self) {
        put_aod(buf, ev);
    }
    fn get(b: &mut Bytes) -> Result<Self, CodecError> {
        get_aod(b)
    }
    fn scratch() -> Self {
        AodEvent::new(EventHeader::new(0, 0, 0))
    }
    fn get_into(b: &mut Bytes, out: &mut Self) -> Result<(), CodecError> {
        get_aod_into(b, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daspos_hep::FourVector;

    fn sample_aod() -> AodEvent {
        let mut ev = AodEvent::new(EventHeader::new(3, 7, 99));
        ev.electrons.push(Electron {
            momentum: FourVector::from_pt_eta_phi_m(31.0, 0.4, -1.2, 0.000511),
            charge: -1,
            e_over_p: 1.02,
            isolation: 0.05,
        });
        ev.muons.push(Muon {
            momentum: FourVector::from_pt_eta_phi_m(44.0, -1.7, 2.9, 0.10566),
            charge: 1,
            n_stations: 3,
            isolation: 0.01,
        });
        ev.jets.push(Jet {
            momentum: FourVector::from_pt_eta_phi_m(120.0, 2.2, 0.1, 8.0),
            n_constituents: 14,
            em_fraction: 0.31,
        });
        ev.met = Met {
            mex: -3.2,
            mey: 12.5,
        };
        ev.candidates.push(TwoProngCandidate {
            vertex: FourVector::new(1.0, -0.5, 10.0, 0.0),
            flight_xy: 1.12,
            pt: 6.5,
            eta: 0.9,
            mass_pipi: 0.77,
            mass_ppi: 1.3,
            mass_kpi: 1.866,
            proper_time_d0_ns: 4.2e-4,
            track_indices: (2, 5),
        });
        ev.n_tracks = 17;
        ev
    }

    fn sample_raw() -> RawEvent {
        let mut ev = RawEvent::new(EventHeader::new(1, 2, 3));
        ev.tracker_hits.push(TrackerHit {
            layer: 2,
            x: 33.1,
            y: -12.9,
            z: 110.0,
            stub: 4,
        });
        ev.calo_cells.push(CaloCell {
            ieta: -14,
            iphi: 92,
            em: 21.5,
            had: 0.3,
        });
        ev.muon_hits.push(MuonHit {
            station: 1,
            eta: 1.1,
            phi: -2.2,
            stub: 4,
        });
        ev.truth_links.push(9);
        ev
    }

    #[test]
    fn aod_round_trip() {
        let events = vec![sample_aod(), AodEvent::new(EventHeader::new(1, 1, 2))];
        let data = AodEvent::encode_events(&events);
        let back = AodEvent::decode_events(&data).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn raw_round_trip() {
        let events = vec![sample_raw()];
        let data = RawEvent::encode_events(&events);
        assert_eq!(RawEvent::decode_events(&data).unwrap(), events);
    }

    #[test]
    fn reco_round_trip() {
        let ev = RecoEvent {
            header: EventHeader::new(5, 5, 5),
            tracks: vec![Track {
                pt: 12.0,
                eta: 0.3,
                phi: 1.0,
                charge: -1,
                d0: 0.01,
                z0: -3.0,
                n_hits: 9,
                first_hit_radius: 33.0,
                circle_cx: 100.0,
                circle_cy: -5000.0,
                circle_r: 5001.0,
                cot_theta: 0.3,
            }],
            clusters: vec![CaloCluster {
                energy: 50.0,
                eta: 1.2,
                phi: -0.4,
                em_fraction: 0.9,
                n_towers: 5,
            }],
            muon_segments: vec![MuonSegment {
                eta: 0.3,
                phi: 1.0,
                n_stations: 4,
            }],
        };
        let data = RecoEvent::encode_events(std::slice::from_ref(&ev));
        assert_eq!(RecoEvent::decode_events(&data).unwrap(), vec![ev]);
    }

    #[test]
    fn empty_file_round_trip() {
        let data = AodEvent::encode_events(&[]);
        assert!(AodEvent::decode_events(&data).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = AodEvent::encode_events(&[sample_aod()]).to_vec();
        data[0] = b'X';
        assert_eq!(
            AodEvent::decode_events(&Bytes::from(data)).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn future_version_rejected() {
        let data = encode_file_with_version(DataTier::Aod, &[sample_aod()], 2);
        match AodEvent::decode_events(&data).unwrap_err() {
            CodecError::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 2);
                assert_eq!(supported, 1);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn wrong_tier_rejected() {
        let data = RawEvent::encode_events(&[sample_raw()]);
        assert!(matches!(
            AodEvent::decode_events(&data).unwrap_err(),
            CodecError::WrongTier { .. }
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let data = AodEvent::encode_events(&[sample_aod()]);
        let truncated = data.slice(0..data.len() - 5);
        assert_eq!(
            AodEvent::decode_events(&truncated).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn trailing_garbage_in_payload_rejected() {
        // Craft a file whose payload length is larger than the payload.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(FORMAT_VERSION);
        buf.put_u8(DataTier::Aod.code());
        buf.put_u32_le(1);
        let mut payload = BytesMut::new();
        put_aod(&mut payload, &AodEvent::new(EventHeader::new(1, 1, 1)));
        payload.put_u8(0xFF); // trailing junk
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(&payload);
        assert!(matches!(
            AodEvent::decode_events(&buf.freeze()).unwrap_err(),
            CodecError::Corrupt(_)
        ));
    }

    #[test]
    fn absurd_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(FORMAT_VERSION);
        buf.put_u8(DataTier::Aod.code());
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            AodEvent::decode_events(&buf.freeze()).unwrap_err(),
            CodecError::Corrupt(_)
        ));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(FORMAT_VERSION);
        buf.put_u8(DataTier::Aod.code());
        buf.put_u32_le(1);
        buf.put_u32_le(0); // impossible: payloads always carry a header
        match AodEvent::decode_events(&buf.freeze()).unwrap_err() {
            CodecError::Corrupt(msg) => assert!(msg.contains("zero-length"), "{msg}"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn huge_declared_count_in_tiny_file_errors_without_huge_allocation() {
        // A 30-byte file declaring 10M events: the decoder must fail on
        // the missing data, not reserve 10M slots up front. The same
        // clamp applies inside event payloads.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(FORMAT_VERSION);
        buf.put_u8(DataTier::Raw.code());
        buf.put_u32_le(MAX_COUNT); // declared events: 10M
        while buf.len() < 30 {
            buf.put_u8(0);
        }
        let data = buf.freeze();
        assert_eq!(data.len(), 30);
        // Capacity is bounded by the 19 bytes that remain after the
        // header — at most zero whole frames, never 10M.
        assert_eq!(clamped_capacity(MAX_COUNT, 19, wire::EVENT_FRAME), 0);
        assert!(RawEvent::decode_events(&data).is_err());

        // Same attack one level down: a valid file header, one frame
        // whose payload declares 10M tracker hits but carries none.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(FORMAT_VERSION);
        buf.put_u8(DataTier::Raw.code());
        buf.put_u32_le(1);
        let mut payload = BytesMut::new();
        put_header(&mut payload, &EventHeader::new(1, 1, 1));
        payload.put_u32_le(MAX_COUNT); // declared tracker hits: 10M
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(&payload);
        assert_eq!(
            RawEvent::decode_events(&buf.freeze()).unwrap_err(),
            CodecError::UnexpectedEof
        );
    }

    #[test]
    fn clamped_capacity_bounds() {
        assert_eq!(clamped_capacity(10_000_000, 30, wire::TRACKER_HIT), 1);
        assert_eq!(clamped_capacity(10_000_000, 0, wire::TRUTH_LINK), 0);
        assert_eq!(clamped_capacity(3, 1 << 20, wire::CALO_CELL), 3);
    }

    #[test]
    fn parallel_encode_is_byte_identical() {
        let events: Vec<AodEvent> = (0..300)
            .map(|i| {
                let mut ev = sample_aod();
                ev.header = EventHeader::new(1, 1, i);
                ev.n_tracks = i as u32;
                ev
            })
            .collect();
        let sequential = AodEvent::encode_events(&events);
        for threads in [1, 2, 3, 4, 8] {
            let parallel = AodEvent::encode_events_parallel(&events, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        // Small inputs (sequential fallback) agree too.
        let few = &events[..5];
        assert_eq!(
            AodEvent::encode_events_parallel(few, 4),
            AodEvent::encode_events(few)
        );
    }

    #[test]
    fn seal_round_trip_is_identity() {
        let payload = AodEvent::encode_events(&[sample_aod()]);
        let sealed = seal(&payload);
        assert_eq!(sealed.len(), payload.len() + SEAL_OVERHEAD);
        assert_eq!(&sealed[..4], SEAL_MAGIC);
        assert_eq!(unseal(&sealed).unwrap(), payload);
    }

    #[test]
    fn unseal_is_zero_copy() {
        let payload = AodEvent::encode_events(&[sample_aod()]);
        let sealed = seal(&payload);
        let out = unseal(&sealed).unwrap();
        // The unsealed payload is a window into the sealed allocation,
        // not a copy: same backing bytes, offset past the seal.
        assert_eq!(out.as_ptr(), sealed[SEAL_OVERHEAD..].as_ptr());
    }

    #[test]
    fn event_reader_matches_batch_decode() {
        let events: Vec<AodEvent> = (0..40)
            .map(|i| {
                let mut ev = sample_aod();
                ev.header = EventHeader::new(7, 1, i);
                ev.n_tracks = i as u32;
                ev
            })
            .collect();
        let data = AodEvent::encode_events(&events);
        let batch = AodEvent::decode_events(&data).unwrap();
        let mut reader = EventReader::<AodEvent>::new(&data).unwrap();
        assert_eq!(reader.n_events(), events.len() as u32);
        let mut streamed = Vec::new();
        while let Some(ev) = reader.next().unwrap() {
            streamed.push(ev.clone());
        }
        assert_eq!(streamed, batch);
        assert_eq!(reader.events_decoded(), events.len() as u32);
        // Exhausted readers keep returning None.
        assert!(reader.next().unwrap().is_none());
    }

    #[test]
    fn event_reader_rejects_what_batch_rejects() {
        let data = AodEvent::encode_events(&[sample_aod(), sample_aod()]);
        // Header errors surface at construction.
        let mut bad = data.to_vec();
        bad[0] = b'X';
        assert_eq!(
            EventReader::<AodEvent>::new(&Bytes::from(bad)).err().unwrap(),
            CodecError::BadMagic
        );
        // Truncation surfaces at the same event position with the same
        // error as the batch decoder.
        let truncated = data.slice(0..data.len() - 3);
        let batch_err = AodEvent::decode_events(&truncated).unwrap_err();
        let mut reader = EventReader::<AodEvent>::new(&truncated).unwrap();
        assert!(reader.next().unwrap().is_some());
        assert_eq!(reader.next().unwrap_err(), batch_err);
    }

    #[test]
    fn event_writer_is_byte_identical_to_batch_encode() {
        let events: Vec<AodEvent> = (0..25)
            .map(|i| {
                let mut ev = sample_aod();
                ev.header = EventHeader::new(2, 3, i);
                ev
            })
            .collect();
        let mut writer = EventWriter::<AodEvent>::new();
        assert!(writer.is_empty());
        for ev in &events {
            writer.push(ev);
        }
        assert_eq!(writer.len(), events.len());
        assert_eq!(writer.finish(), AodEvent::encode_events(&events));
        // Empty writer produces the canonical empty file too.
        assert_eq!(
            EventWriter::<AodEvent>::new().finish(),
            AodEvent::encode_events(&[])
        );
    }

    #[test]
    fn get_into_clears_stale_scratch_state() {
        // Decode a populated event into the scratch, then a sparse one:
        // no collections may leak from the first into the second.
        let full = sample_aod();
        let sparse = AodEvent::new(EventHeader::new(9, 9, 9));
        let data = AodEvent::encode_events(&[full.clone(), sparse.clone()]);
        let mut reader = EventReader::<AodEvent>::new(&data).unwrap();
        assert_eq!(reader.next().unwrap().unwrap(), &full);
        assert_eq!(reader.next().unwrap().unwrap(), &sparse);
    }

    #[test]
    fn seal_detects_every_single_byte_flip() {
        // fnv64 is bijective per absorbed byte, so any one-byte change in
        // the payload changes the digest; a flip in the stored digest
        // itself obviously mismatches too. Exhaustive over a small file.
        let payload = AodEvent::encode_events(&[sample_aod()]);
        let sealed = seal(&payload);
        for offset in 0..sealed.len() {
            for bit in 0..8 {
                let mut mutated = sealed.to_vec();
                mutated[offset] ^= 1 << bit;
                let err = unseal(&Bytes::from(mutated))
                    .expect_err(&format!("flip at {offset} bit {bit} undetected"));
                if offset < 4 {
                    assert_eq!(err, CodecError::BadMagic);
                } else {
                    assert!(matches!(err, CodecError::SealMismatch { .. }));
                }
            }
        }
    }

    #[test]
    fn seal_rejects_truncation_and_junk() {
        let sealed = seal(&AodEvent::encode_events(&[sample_aod()]));
        for cut in [0, 5, SEAL_OVERHEAD, sealed.len() - 1] {
            let truncated = Bytes::copy_from_slice(&sealed[..cut]);
            assert!(unseal(&truncated).is_err(), "cut at {cut} accepted");
        }
        assert_eq!(
            unseal(&Bytes::from_static(b"XXXXXXXXXXXXXXXX")).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn error_categories_cover_the_taxonomy() {
        let cases = [
            (CodecError::UnexpectedEof, ErrorCategory::Framing),
            (CodecError::BadMagic, ErrorCategory::Magic),
            (
                CodecError::UnsupportedVersion {
                    found: 2,
                    supported: 1,
                },
                ErrorCategory::Version,
            ),
            (
                CodecError::WrongTier {
                    found: 1,
                    expected: 2,
                },
                ErrorCategory::Tier,
            ),
            (
                CodecError::Corrupt("x".to_string()),
                ErrorCategory::Structure,
            ),
            (
                CodecError::SealMismatch {
                    stored: 1,
                    actual: 2,
                },
                ErrorCategory::Integrity,
            ),
        ];
        for (err, cat) in cases {
            assert_eq!(err.category(), cat, "{err}");
            assert!(!cat.name().is_empty());
        }
    }

    #[test]
    fn sizes_match_estimates_roughly() {
        let ev = sample_aod();
        let data = AodEvent::encode_events(std::slice::from_ref(&ev));
        // Within a factor of two of the byte_size() estimate.
        let est = ev.byte_size();
        assert!(
            data.len() > est / 2 && data.len() < est * 2 + 64,
            "encoded {} vs estimated {est}",
            data.len()
        );
    }
}
