//! Flat ntuples: the final, per-analysis data format.
//!
//! §3.2: *"One or a series of slimming/skimming steps results in a final
//! analysis data format that is usually customized to the needs of a
//! particular individual or analysis group."* An [`Ntuple`] is a columnar
//! table of `f64`s produced from AOD events by a [`ColumnSpec`] — a
//! declarative column description that, like the skim language, can be
//! preserved as text.

use daspos_reco::objects::AodEvent;
use std::fmt;

/// A derivable per-event scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnSpec {
    /// Missing transverse energy.
    Met,
    /// pT of the i-th lepton (NaN when absent).
    LeptonPt(u8),
    /// pT of the i-th jet (NaN when absent).
    JetPt(u8),
    /// pT of the i-th photon (NaN when absent).
    PhotonPt(u8),
    /// Invariant mass of the two leading leptons (NaN when < 2).
    DileptonMass,
    /// Invariant mass of the two leading photons (NaN when < 2).
    DiphotonMass,
    /// Number of jets above 20 GeV.
    NJets20,
    /// Charged track multiplicity.
    NTracks,
    /// (π,π) mass of the first candidate (NaN when none).
    CandMassPiPi,
    /// (K,π) mass of the first candidate (NaN when none).
    CandMassKPi,
    /// D⁰-hypothesis proper time of the first candidate in ps (NaN when
    /// none).
    CandProperTimePs,
    /// Transverse flight distance of the first candidate in mm.
    CandFlightXy,
}

impl ColumnSpec {
    /// Column name for schemas and text serialization.
    pub fn name(&self) -> String {
        match self {
            ColumnSpec::Met => "met".to_string(),
            ColumnSpec::LeptonPt(i) => format!("lep{i}_pt"),
            ColumnSpec::JetPt(i) => format!("jet{i}_pt"),
            ColumnSpec::PhotonPt(i) => format!("pho{i}_pt"),
            ColumnSpec::DileptonMass => "m_ll".to_string(),
            ColumnSpec::DiphotonMass => "m_gg".to_string(),
            ColumnSpec::NJets20 => "njets20".to_string(),
            ColumnSpec::NTracks => "ntracks".to_string(),
            ColumnSpec::CandMassPiPi => "cand_m_pipi".to_string(),
            ColumnSpec::CandMassKPi => "cand_m_kpi".to_string(),
            ColumnSpec::CandProperTimePs => "cand_t_ps".to_string(),
            ColumnSpec::CandFlightXy => "cand_lxy".to_string(),
        }
    }

    /// Parse a column name back to its spec.
    pub fn parse(name: &str) -> Option<ColumnSpec> {
        match name {
            "met" => return Some(ColumnSpec::Met),
            "m_ll" => return Some(ColumnSpec::DileptonMass),
            "m_gg" => return Some(ColumnSpec::DiphotonMass),
            "njets20" => return Some(ColumnSpec::NJets20),
            "ntracks" => return Some(ColumnSpec::NTracks),
            "cand_m_pipi" => return Some(ColumnSpec::CandMassPiPi),
            "cand_m_kpi" => return Some(ColumnSpec::CandMassKPi),
            "cand_t_ps" => return Some(ColumnSpec::CandProperTimePs),
            "cand_lxy" => return Some(ColumnSpec::CandFlightXy),
            _ => {}
        }
        for (prefix, make) in [
            ("lep", ColumnSpec::LeptonPt as fn(u8) -> ColumnSpec),
            ("jet", ColumnSpec::JetPt as fn(u8) -> ColumnSpec),
            ("pho", ColumnSpec::PhotonPt as fn(u8) -> ColumnSpec),
        ] {
            if let Some(rest) = name.strip_prefix(prefix) {
                if let Some(idx) = rest.strip_suffix("_pt") {
                    if let Ok(i) = idx.parse() {
                        return Some(make(i));
                    }
                }
            }
        }
        None
    }

    /// Evaluate the column on an event.
    pub fn evaluate(&self, ev: &AodEvent) -> f64 {
        match self {
            ColumnSpec::Met => ev.met.value(),
            ColumnSpec::LeptonPt(i) => ev
                .leptons()
                .get(*i as usize)
                .map(|(m, _)| m.pt())
                .unwrap_or(f64::NAN),
            ColumnSpec::JetPt(i) => ev
                .jets
                .get(*i as usize)
                .map(|j| j.momentum.pt())
                .unwrap_or(f64::NAN),
            ColumnSpec::PhotonPt(i) => ev
                .photons
                .get(*i as usize)
                .map(|p| p.momentum.pt())
                .unwrap_or(f64::NAN),
            ColumnSpec::DileptonMass => {
                let leps = ev.leptons();
                if leps.len() >= 2 {
                    (leps[0].0 + leps[1].0).mass()
                } else {
                    f64::NAN
                }
            }
            ColumnSpec::DiphotonMass => {
                if ev.photons.len() >= 2 {
                    (ev.photons[0].momentum + ev.photons[1].momentum).mass()
                } else {
                    f64::NAN
                }
            }
            ColumnSpec::NJets20 => ev
                .jets
                .iter()
                .filter(|j| j.momentum.pt() >= 20.0)
                .count() as f64,
            ColumnSpec::NTracks => f64::from(ev.n_tracks),
            ColumnSpec::CandMassPiPi => ev
                .candidates
                .first()
                .map(|c| c.mass_pipi)
                .unwrap_or(f64::NAN),
            ColumnSpec::CandMassKPi => ev
                .candidates
                .first()
                .map(|c| c.mass_kpi)
                .unwrap_or(f64::NAN),
            ColumnSpec::CandProperTimePs => ev
                .candidates
                .first()
                .map(|c| c.proper_time_d0_ns * 1.0e3)
                .unwrap_or(f64::NAN),
            ColumnSpec::CandFlightXy => ev
                .candidates
                .first()
                .map(|c| c.flight_xy)
                .unwrap_or(f64::NAN),
        }
    }
}

/// An ordered set of columns — the ntuple's schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtupleSchema {
    columns: Vec<ColumnSpec>,
}

impl NtupleSchema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<ColumnSpec>) -> Self {
        NtupleSchema { columns }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[ColumnSpec] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Canonical text form: comma-separated column names.
    pub fn to_text(&self) -> String {
        self.columns
            .iter()
            .map(ColumnSpec::name)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse the canonical text form.
    pub fn parse(text: &str) -> Result<NtupleSchema, String> {
        let columns = text
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|name| {
                ColumnSpec::parse(name.trim())
                    .ok_or_else(|| format!("unknown column '{name}'"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if columns.is_empty() {
            return Err("empty schema".to_string());
        }
        Ok(NtupleSchema { columns })
    }
}

impl fmt::Display for NtupleSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// A filled ntuple: row-major table of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ntuple {
    schema: NtupleSchema,
    rows: Vec<f64>,
}

impl Ntuple {
    /// An empty ntuple, ready for incremental [`Ntuple::append`] — the
    /// streaming skim fills one row per surviving event as it decodes.
    pub fn empty(schema: NtupleSchema) -> Ntuple {
        Ntuple {
            schema,
            rows: Vec::new(),
        }
    }

    /// Append one event as a row.
    pub fn append(&mut self, ev: &AodEvent) {
        self.rows.reserve(self.schema.width());
        for col in self.schema.columns() {
            self.rows.push(col.evaluate(ev));
        }
    }

    /// Fill an ntuple from events.
    pub fn fill(schema: NtupleSchema, events: &[AodEvent]) -> Ntuple {
        let mut nt = Ntuple::empty(schema);
        nt.rows.reserve(events.len() * nt.schema.width());
        for ev in events {
            nt.append(ev);
        }
        nt
    }

    /// The schema.
    pub fn schema(&self) -> &NtupleSchema {
        &self.schema
    }

    /// Number of rows (events).
    pub fn n_rows(&self) -> usize {
        if self.schema.width() == 0 {
            0
        } else {
            self.rows.len() / self.schema.width()
        }
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        let w = self.schema.width();
        &self.rows[i * w..(i + 1) * w]
    }

    /// Iterator over a single column by index.
    pub fn column(&self, col: usize) -> impl Iterator<Item = f64> + '_ {
        let w = self.schema.width();
        self.rows.iter().skip(col).step_by(w).copied()
    }

    /// Find a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema
            .columns()
            .iter()
            .position(|c| c.name() == name)
    }

    /// Approximate size in bytes.
    pub fn byte_size(&self) -> usize {
        self.rows.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daspos_hep::{EventHeader, FourVector};
    use daspos_reco::objects::{Jet, Met, Muon};

    fn dimuon_event(pt1: f64, pt2: f64) -> AodEvent {
        let mut ev = AodEvent::new(EventHeader::new(1, 1, 1));
        for (pt, q) in [(pt1, 1i8), (pt2, -1i8)] {
            ev.muons.push(Muon {
                momentum: FourVector::from_pt_eta_phi_m(pt, 0.0, if q > 0 { 0.0 } else { 3.0 }, 0.105),
                charge: q,
                n_stations: 3,
                isolation: 0.0,
            });
        }
        ev.met = Met { mex: 7.0, mey: 0.0 };
        ev.jets.push(Jet {
            momentum: FourVector::from_pt_eta_phi_m(45.0, 1.0, 1.0, 5.0),
            n_constituents: 4,
            em_fraction: 0.4,
        });
        ev.n_tracks = 12;
        ev
    }

    #[test]
    fn schema_text_round_trip() {
        let schema = NtupleSchema::new(vec![
            ColumnSpec::Met,
            ColumnSpec::LeptonPt(0),
            ColumnSpec::LeptonPt(1),
            ColumnSpec::DileptonMass,
            ColumnSpec::JetPt(0),
            ColumnSpec::NJets20,
            ColumnSpec::CandProperTimePs,
        ]);
        let text = schema.to_text();
        assert_eq!(NtupleSchema::parse(&text).unwrap(), schema);
    }

    #[test]
    fn schema_parse_rejects_unknown() {
        assert!(NtupleSchema::parse("met,bogus").is_err());
        assert!(NtupleSchema::parse("").is_err());
    }

    #[test]
    fn fill_and_read_back() {
        let schema = NtupleSchema::new(vec![
            ColumnSpec::Met,
            ColumnSpec::LeptonPt(0),
            ColumnSpec::NTracks,
        ]);
        let events = vec![dimuon_event(40.0, 30.0), dimuon_event(25.0, 10.0)];
        let nt = Ntuple::fill(schema, &events);
        assert_eq!(nt.n_rows(), 2);
        assert_eq!(nt.row(0), &[7.0, 40.0, 12.0]);
        assert_eq!(nt.row(1)[1], 25.0);
        let met_col: Vec<f64> = nt.column(0).collect();
        assert_eq!(met_col, vec![7.0, 7.0]);
        assert_eq!(nt.column_index("lep0_pt"), Some(1));
        assert_eq!(nt.column_index("nope"), None);
    }

    #[test]
    fn missing_objects_are_nan() {
        let schema = NtupleSchema::new(vec![
            ColumnSpec::PhotonPt(0),
            ColumnSpec::DiphotonMass,
            ColumnSpec::CandMassKPi,
            ColumnSpec::JetPt(5),
        ]);
        let nt = Ntuple::fill(schema, &[dimuon_event(40.0, 30.0)]);
        for v in nt.row(0) {
            assert!(v.is_nan(), "expected NaN, got {v}");
        }
    }

    #[test]
    fn dilepton_mass_back_to_back() {
        let schema = NtupleSchema::new(vec![ColumnSpec::DileptonMass]);
        let nt = Ntuple::fill(schema, &[dimuon_event(45.0, 45.0)]);
        // Two 45 GeV muons nearly back to back: mass near 90.
        let m = nt.row(0)[0];
        assert!(m > 85.0 && m < 95.0, "m_ll = {m}");
    }

    #[test]
    fn incremental_append_matches_batch_fill() {
        let schema = NtupleSchema::new(vec![
            ColumnSpec::Met,
            ColumnSpec::LeptonPt(0),
            ColumnSpec::NTracks,
        ]);
        let events = vec![dimuon_event(40.0, 30.0), dimuon_event(25.0, 10.0)];
        let batch = Ntuple::fill(schema.clone(), &events);
        let mut incremental = Ntuple::empty(schema);
        for ev in &events {
            incremental.append(ev);
        }
        assert_eq!(incremental, batch);
    }

    #[test]
    fn ntuple_is_smaller_than_aod() {
        let schema = NtupleSchema::new(vec![ColumnSpec::Met, ColumnSpec::DileptonMass]);
        let events = vec![dimuon_event(40.0, 30.0); 10];
        let nt = Ntuple::fill(schema, &events);
        let aod_bytes: usize = events.iter().map(AodEvent::byte_size).sum();
        assert!(nt.byte_size() < aod_bytes);
    }
}
